"""The thin client library behind ``orpheus remote``.

Connects to a running orpheusd over its Unix socket (or TCP), performs
the ``hello`` handshake, and exposes one method per operation. Errors
map onto exceptions:

* :class:`ServiceBusyError` — the daemon shed the request (bounded
  queue full); the request did **not** run, retry with backoff (or use
  :meth:`ServiceClient.request_with_retry`).
* :class:`ServiceDeniedError` — handshake/access rejection.
* :class:`ServiceShutdownError` — the daemon is draining.
* :class:`ServiceError` — the command raised server-side; carries the
  remote exception type name.

Usage::

    with ServiceClient(root=".", user="alice") as client:
        client.checkout("inter", [1], file="work.csv")
        client.commit("inter", file="work.csv", message="cleaned")
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Sequence

from repro.service import protocol
from repro.service.protocol import LineChannel, Response
from repro.service.tracing import new_trace_context


class ServiceError(RuntimeError):
    """The daemon reported an error executing a request."""

    def __init__(self, message: str, error_type: str | None = None) -> None:
        super().__init__(message)
        self.error_type = error_type


class ServiceBusyError(ServiceError):
    """Load-shed: the request was rejected before execution."""


class ServiceDeniedError(ServiceError):
    """Handshake or access-control rejection."""


class ServiceShutdownError(ServiceError):
    """The daemon is draining and no longer accepts commands."""


class ServiceUnavailableError(ServiceError):
    """No daemon is reachable at the expected socket."""


def read_status_file(root: str | None = None) -> dict | None:
    """The daemon's ``.orpheus/service.json``, or None when absent."""
    path = Path(root or ".") / ".orpheus" / "service.json"
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def daemon_running(root: str | None = None) -> bool:
    """True when service.json names a live pid."""
    status = read_status_file(root)
    return status is not None and _pid_alive(int(status.get("pid") or 0))


class ServiceClient:
    """One session against a running orpheusd."""

    def __init__(
        self,
        socket_path: str | None = None,
        root: str | None = None,
        tcp: tuple[str, int] | None = None,
        user: str = "",
        timeout: float = 30.0,
    ) -> None:
        self.root = root
        self.socket_path = socket_path
        self.tcp = tcp
        self.user = user
        self.timeout = timeout
        self._channel: LineChannel | None = None
        self._next_id = 0
        self.session_id: int | None = None
        #: The server's trace summary for the most recent response
        #: (including BUSY sheds) — trace/span ids + phase timings.
        self.last_trace: dict | None = None

    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._channel is not None:
            return self
        if self.tcp is not None:
            sock = socket.create_connection(self.tcp, timeout=self.timeout)
        else:
            path = self.socket_path
            if path is None:
                status = read_status_file(self.root)
                if status is None:
                    from repro.service.daemon import default_socket_path

                    path = default_socket_path(self.root)
                else:
                    path = status.get("socket")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(path)
            except OSError as error:
                sock.close()
                raise ServiceUnavailableError(
                    f"no orpheusd reachable at {path}: {error}; "
                    f"start one with `orpheus serve`"
                ) from None
        self._channel = LineChannel(sock)
        response = self._roundtrip(
            {"op": "hello", "protocol": protocol.PROTOCOL_VERSION, "user": self.user}
        )
        self.session_id = (response.data or {}).get("session_id")
        return self

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
            self.session_id = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, op: str, **params) -> dict:
        """One request/response cycle; returns the response data dict.

        Every command request carries a trace context; pass ``trace=``
        explicitly to reuse one (retries do) or let this mint a fresh
        context per call.
        """
        if self._channel is None:
            self.connect()
        payload = {"op": op}
        payload.update(
            {k: v for k, v in params.items() if v is not None}
        )
        if "trace" not in payload:
            payload["trace"] = new_trace_context()
        return self._roundtrip(payload).data or {}

    def request_with_retry(
        self,
        op: str,
        retries: int = 5,
        backoff: float = 0.02,
        **params,
    ) -> dict:
        """Like :meth:`request`, but retries ``busy`` shed responses
        with exponential backoff — the polite client under load.

        All attempts share ONE trace id (with a bumped ``attempt``
        counter), so a retried operation stays a single trace on the
        server side instead of fragmenting into lookalikes.
        """
        context = params.pop("trace", None) or new_trace_context()
        attempt = 0
        while True:
            context["attempt"] = attempt
            try:
                return self.request(op, trace=context, **params)
            except ServiceBusyError:
                if attempt >= retries:
                    raise
                time.sleep(backoff * (2**attempt))
                attempt += 1

    def _roundtrip(self, payload: dict) -> Response:
        self._next_id += 1
        payload = dict(payload)
        payload["id"] = self._next_id
        channel = self._channel
        if channel is None:
            raise ServiceUnavailableError("client is not connected")
        try:
            channel.send(payload)
            line = channel.recv_line()
        except OSError as error:
            self.close()
            raise ServiceUnavailableError(
                f"connection to orpheusd lost: {error}"
            ) from None
        if line is None:
            self.close()
            raise ServiceUnavailableError("orpheusd closed the connection")
        response = protocol.decode_response(line)
        # BUSY and error responses carry a terminal trace summary too;
        # record it before raising so callers can correlate sheds.
        if response.trace is not None:
            self.last_trace = response.trace
        if response.status == protocol.OK:
            return response
        message = response.error or response.status
        if response.status == protocol.BUSY:
            raise ServiceBusyError(message, response.error_type)
        if response.status == protocol.DENIED:
            raise ServiceDeniedError(message, response.error_type)
        if response.status == protocol.SHUTDOWN:
            raise ServiceShutdownError(message, response.error_type)
        raise ServiceError(message, response.error_type)

    # ------------------------------------------------------------------
    # Convenience wrappers, one per operation
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def status(self) -> dict:
        return self.request("status")

    def stats(self, recent: int = 0) -> dict:
        """Live daemon observability: counters, latency percentiles,
        queue depths, cache efficiency; ``recent`` > 0 adds that many
        of the newest server-side span trees."""
        return self.request("stats", recent=recent or None)

    def ls(self) -> list[dict]:
        return self.request("ls")["datasets"]

    def log(self, dataset: str | None = None, ops: bool = False) -> dict:
        return self.request("log", dataset=dataset, ops=ops or None)

    def checkout(
        self,
        dataset: str,
        versions: Sequence[int] | int,
        file: str | None = None,
        schema: str | None = None,
        inline: bool = False,
    ) -> dict:
        if isinstance(versions, int):
            versions = [versions]
        return self.request(
            "checkout",
            dataset=dataset,
            versions=list(versions),
            file=file,
            schema=schema,
            inline=inline or None,
        )

    def commit(
        self,
        dataset: str,
        file: str,
        message: str = "",
        schema: str | None = None,
        parents: Sequence[int] | None = None,
    ) -> dict:
        return self.request(
            "commit",
            dataset=dataset,
            file=file,
            message=message,
            schema=schema,
            parents=list(parents) if parents is not None else None,
        )

    def init(
        self,
        dataset: str,
        file: str,
        schema: str,
        model: str = "split_by_rlist",
    ) -> dict:
        return self.request(
            "init", dataset=dataset, file=file, schema=schema, model=model
        )

    def diff(self, dataset: str, a: int, b: int, limit: int = 20) -> dict:
        return self.request("diff", dataset=dataset, a=a, b=b, limit=limit)

    def run(self, sql: str) -> dict:
        return self.request("run", sql=sql)

    def drop(self, dataset: str) -> dict:
        return self.request("drop", dataset=dataset)

    def optimize(self, dataset: str, gamma: float = 2.0, mu: float = 1.5) -> dict:
        return self.request("optimize", dataset=dataset, gamma=gamma, mu=mu)

    def create_user(self, name: str, email: str = "") -> dict:
        return self.request("create_user", name=name, email=email)

    def whoami(self) -> dict:
        return self.request("whoami")

    def doctor(self) -> dict:
        return self.request("doctor")

    def flush_cache(self) -> int:
        return int(self.request("flush_cache").get("dropped", 0))

    def shutdown(self) -> None:
        try:
            self.request("shutdown")
        except (ServiceShutdownError, ServiceUnavailableError):
            pass
