"""The materialized-version LRU cache.

A checkout of a hot version does the same membership walk and row
materialization every time; under a multi-client daemon the same few
versions are requested over and over (the paper's workloads are
exactly that shape: many analysts pulling the latest curated version).
This cache keeps fully materialized checkouts — ``(columns, rows,
parents)`` — keyed by ``(dataset, vids-tuple)`` under a byte budget:

* **LRU** by access order; inserting past the budget evicts from the
  cold end. An entry larger than the whole budget is never admitted.
* **Per-CVD invalidation** — any mutation of a dataset (commit,
  optimize, drop, init) drops every entry for that dataset only;
  other datasets' hot entries survive.
* **Counters** — hits/misses/evictions/invalidations both locally (for
  the daemon's ``status`` payload, which must work even when telemetry
  is disabled) and as ``service.cache.*`` telemetry counters visible in
  ``orpheus stats``.

Thread-safe: the daemon's reader pool probes it concurrently while the
writer thread invalidates.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro import telemetry

#: Default byte budget (64 MiB) — roughly a few hundred mid-sized
#: materialized versions; ``orpheus serve --cache-mb`` overrides.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


@dataclass
class CacheEntry:
    """One materialized checkout."""

    columns: list[str]
    rows: list[tuple]
    parents: tuple[int, ...]
    size_bytes: int = 0
    #: Row count sealed at admission; :meth:`verify` compares against
    #: it so an entry mutated after admission (a bug, or the
    #: ``cache.corrupt_entry`` chaos fault) is caught at read time
    #: instead of being served as version history.
    sealed_rows: int = -1

    def __post_init__(self) -> None:
        if not self.size_bytes:
            self.size_bytes = estimate_entry_bytes(self.columns, self.rows)
        if self.sealed_rows < 0:
            self.sealed_rows = len(self.rows)

    def verify(self) -> bool:
        """True when the entry still matches its admission-time seal."""
        return len(self.rows) == self.sealed_rows


@dataclass
class CacheStats:
    """Counters the daemon reports under ``status.cache``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    bytes: int = 0
    budget_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "bytes": self.bytes,
            "budget_bytes": self.budget_bytes,
            "hit_rate": round(self.hit_rate, 4),
        }


def estimate_entry_bytes(columns: Sequence[str], rows: Sequence[tuple]) -> int:
    """Cheap size estimate: sampled row payload size x row count.

    Sampling keeps admission O(1)-ish for wide versions; the estimate
    only steers the budget, it is not an accounting invariant.
    """
    base = 256 + sum(sys.getsizeof(c) for c in columns)
    if not rows:
        return base
    sample = rows[:: max(1, len(rows) // 32)][:32]
    per_row = sum(
        sys.getsizeof(row) + sum(sys.getsizeof(v) for v in row)
        for row in sample
    ) / len(sample)
    return int(base + per_row * len(rows))


class VersionCache:
    """Byte-budgeted LRU of materialized versions with per-CVD
    invalidation."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        self.budget_bytes = max(0, int(budget_bytes))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, tuple[int, ...]], CacheEntry]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(dataset: str, vids: int | Sequence[int]) -> tuple[str, tuple[int, ...]]:
        if isinstance(vids, int):
            vids = (vids,)
        return (dataset, tuple(int(v) for v in vids))

    def get(self, dataset: str, vids: int | Sequence[int]) -> CacheEntry | None:
        key = self.key(dataset, vids)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                telemetry.count("service.cache.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        telemetry.count("service.cache.hits")
        return entry

    def put(
        self, dataset: str, vids: int | Sequence[int], entry: CacheEntry
    ) -> bool:
        """Admit an entry, evicting LRU entries to fit. Returns False
        when the entry alone exceeds the whole budget (not admitted)."""
        if entry.size_bytes > self.budget_bytes:
            telemetry.count("service.cache.rejected_oversize")
            return False
        key = self.key(dataset, vids)
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size_bytes
            while self._entries and self._bytes + entry.size_bytes > self.budget_bytes:
                _, cold = self._entries.popitem(last=False)
                self._bytes -= cold.size_bytes
                self._evictions += 1
                evicted += 1
            self._entries[key] = entry
            self._bytes += entry.size_bytes
            telemetry.gauge("service.cache.bytes", self._bytes)
        if evicted:
            telemetry.count("service.cache.evictions", evicted)
        return True

    def invalidate_dataset(self, dataset: str) -> int:
        """Drop every entry materialized from ``dataset``."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == dataset]
            for key in doomed:
                self._bytes -= self._entries.pop(key).size_bytes
            if doomed:
                self._invalidations += 1
            telemetry.gauge("service.cache.bytes", self._bytes)
        if doomed:
            telemetry.count("service.cache.invalidated_entries", len(doomed))
        return len(doomed)

    def drop(self, dataset: str, vids: int | Sequence[int]) -> bool:
        """Evict one specific entry (corruption containment path)."""
        key = self.key(dataset, vids)
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.size_bytes
            telemetry.gauge("service.cache.bytes", self._bytes)
        return True

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            telemetry.gauge("service.cache.bytes", 0)
        return count

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                bytes=self._bytes,
                budget_bytes=self.budget_bytes,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries
