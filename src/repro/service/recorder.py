"""The workload flight recorder: what traffic did this daemon serve?

PR 6 made a *single* request observable end to end; this module makes
the *workload* observable. The daemon appends one JSON line per
finished request — including BUSY sheds, which are exactly the
requests a capacity story must not lose — to segmented, size-rotated
files under ``.orpheus/journal/flight/``::

    flight-<boot_id>-000001.jsonl
    flight-<boot_id>-000002.jsonl
    ...

Every segment starts with a **header record** naming the schema
version, the daemon pid, and its boot id (a fresh id per daemon start,
so readers can split a directory into serving epochs and ``orpheus
top`` can detect restarts). After the header, each line is one
**request record**:

    {"kind": "request", "ts": 1723....,   # arrival wall-clock
     "op": "checkout", "dataset": "inter", "session": 2,
     "trace": "9f2c64b01a77d3e8", "attempt": 0,
     "digest": "5ab0c9...",               # normalized-args digest
     "params": {"dataset": "inter", "versions": [3]},
     "status": "ok", "cached": true,
     "phases": {"admission": 1e-05, "queue_wait": 2e-4,
                "execute": 0.013, "serialize": 5e-5},
     "total_s": 0.0133}

``params`` is the normalized argument set (trace context and request
id stripped) — enough for :mod:`repro.service.replay` to re-issue the
workload; ``digest`` is its stable hash, so workload characterization
("how many distinct queries?") never needs to compare dicts.

Sampling (``--flight-sample`` / ``ORPHEUS_FLIGHT_SAMPLE``) is
deterministic per trace id: all BUSY retries of one logical operation
are kept or dropped together, and a replayed comparison stays
apples-to-apples. At ``0`` the record call is a single attribute test
— dialing the recorder down costs nothing measurable on the request
path.

Bounds: segments rotate at ``segment_bytes`` and at most
``max_segments`` are kept (oldest deleted), so an always-on recorder
cannot fill a disk. Appends flush per line but never fsync — the
flight record is observability, not durability; a torn tail from a
crash is skipped by readers the same way the journals tolerate it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid
from pathlib import Path

from repro import telemetry

#: Bumped on incompatible record-shape changes; readers refuse nothing
#: (forward-compatible key lookup) but replay warns on a mismatch.
FLIGHT_SCHEMA_VERSION = 1

FLIGHT_DIR = "flight"

#: Env var: fraction of traces recorded (0 disables, 1 records all).
SAMPLE_ENV = "ORPHEUS_FLIGHT_SAMPLE"
DEFAULT_SAMPLE = 1.0

#: Rotation defaults; ``orpheus serve --flight-segment-mb /
#: --flight-segments`` override.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_MAX_SEGMENTS = 8

#: Request params that are transport envelope, not workload: stripped
#: before hashing and recording.
_ENVELOPE_KEYS = ("trace", "id")


def new_boot_id() -> str:
    """A fresh 8-hex-char id for one daemon serving epoch."""
    return uuid.uuid4().hex[:8]


def flight_sample() -> float:
    """The configured sample fraction, clamped to [0, 1]."""
    raw = os.environ.get(SAMPLE_ENV)
    if raw is None or raw == "":
        return DEFAULT_SAMPLE
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SAMPLE
    return min(1.0, max(0.0, value))


def flight_dir_path(root: str | None = None) -> Path:
    return Path(root or ".") / ".orpheus" / "journal" / FLIGHT_DIR


def normalize_params(params: dict) -> dict:
    """The replayable argument set: request params minus the envelope."""
    return {
        key: value
        for key, value in params.items()
        if key not in _ENVELOPE_KEYS and value is not None
    }


def args_digest(op: str, params: dict) -> str:
    """A stable 16-hex-char digest of (op, normalized args)."""
    payload = json.dumps(
        [op, normalize_params(params)], sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def request_outcome(status: str, error_kind: str | None) -> str | None:
    """The fault-outcome tag a record carries (None for the ordinary
    ok/busy/error-by-the-user cases): ``deadline_exceeded``,
    ``degraded``, or ``worker_error``. Replay comparison reports count
    these so a chaos capture replays apples-to-apples."""
    if status == "deadline_exceeded":
        return "deadline_exceeded"
    if status == "degraded":
        return "degraded"
    if status == "error" and error_kind == "internal":
        return "worker_error"
    return None


def _trace_keep(trace_id: str, sample: float) -> bool:
    """Deterministic per-trace sampling: one logical operation (all its
    BUSY retries share a trace id) is kept or dropped as a unit."""
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    digest = hashlib.sha256(trace_id.encode("utf-8", "replace")).digest()
    return int.from_bytes(digest[:4], "big") / 0xFFFFFFFF < sample


class FlightRecorder:
    """Bounded, size-rotated workload recorder for one daemon.

    One daemon owns the flight directory at a time (the daemon holds
    the repository lock), so the in-memory segment bookkeeping is
    authoritative after construction.
    """

    def __init__(
        self,
        root: str | None = None,
        sample: float | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        boot_id: str | None = None,
        pid: int | None = None,
    ) -> None:
        self.dir = flight_dir_path(root)
        self.sample = (
            flight_sample() if sample is None else min(1.0, max(0.0, sample))
        )
        self.segment_bytes = max(4096, int(segment_bytes))
        self.max_segments = max(1, int(max_segments))
        self.boot_id = boot_id or new_boot_id()
        self.pid = os.getpid() if pid is None else pid
        self.enabled = self.sample > 0.0
        self.records_written = 0
        self.records_sampled_out = 0
        self._lock = threading.Lock()
        self._handle = None
        self._segment_seq = 0
        self._segment_path: Path | None = None
        self._segment_written = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, rtrace, request) -> None:
        """Append one finished request (``RequestTrace`` + its decoded
        ``Request``). The fast path when dialed to 0 is one attribute
        test and a return."""
        if not self.enabled:
            return
        if not _trace_keep(rtrace.trace_id, self.sample):
            self.records_sampled_out += 1
            return
        params = normalize_params(request.params)
        entry: dict = {
            "kind": "request",
            "ts": rtrace.started_ts,
            "op": rtrace.op,
            "trace": rtrace.trace_id,
            # The daemon stamps the digest at dispatch (quarantine keys
            # on it); recompute only for requests that never got there.
            "digest": getattr(rtrace, "digest", None)
            or args_digest(rtrace.op, request.params),
            "params": params,
            "status": rtrace.status,
            "total_s": round(rtrace.total_s, 6),
        }
        outcome = request_outcome(
            rtrace.status, getattr(rtrace, "error_kind", None)
        )
        if outcome is not None:
            entry["outcome"] = outcome
        if rtrace.dataset:
            entry["dataset"] = rtrace.dataset
        if rtrace.session_id is not None:
            entry["session"] = rtrace.session_id
        if rtrace.user:
            entry["user"] = rtrace.user
        if rtrace.attempt:
            entry["attempt"] = rtrace.attempt
        if rtrace.cached is not None:
            entry["cached"] = rtrace.cached
        if rtrace.error_type:
            entry["error_type"] = rtrace.error_type
        if getattr(rtrace, "error_kind", None):
            entry["error_kind"] = rtrace.error_kind
        # Storage-access stamps (additive; absent on requests that
        # never executed): enough for `orpheus heat --from-flight` to
        # rebuild the heat model and for replay's I/O-drift section.
        if getattr(rtrace, "rows_scanned", None) is not None:
            entry["rows_scanned"] = rtrace.rows_scanned
        if getattr(rtrace, "bytes_scanned", None) is not None:
            entry["bytes_scanned"] = rtrace.bytes_scanned
        if getattr(rtrace, "rows_written", None) is not None:
            entry["rows_written"] = rtrace.rows_written
        if getattr(rtrace, "rows_returned", None) is not None:
            entry["rows_returned"] = rtrace.rows_returned
        if getattr(rtrace, "version_ids", None):
            entry["versions"] = list(rtrace.version_ids)
        phases = {
            name: round(value, 6)
            for name, value in rtrace.phase_seconds().items()
        }
        if phases:
            entry["phases"] = phases
        self.append(entry)

    def append(self, entry: dict) -> None:
        """Append one already-shaped record under the writer lock."""
        line = json.dumps(entry, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        try:
            with self._lock:
                handle = self._current_handle(len(data))
                handle.write(data)
                handle.flush()
                self._segment_written += len(data)
                self.records_written += 1
        except OSError:
            # A full disk must not take the request path down with it.
            telemetry.count("service.flight.write_errors")
            return
        telemetry.count("service.flight.records")

    def _current_handle(self, incoming: int):
        """The open segment, rotating first if this write would breach
        the size bound. Called under ``self._lock``."""
        if (
            self._handle is not None
            and self._segment_written + incoming > self.segment_bytes
        ):
            self._close_handle()
        if self._handle is None:
            self._open_segment()
        return self._handle

    def _open_segment(self) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        self._segment_seq += 1
        self._segment_path = self.dir / (
            f"flight-{self.boot_id}-{self._segment_seq:06d}.jsonl"
        )
        self._handle = open(self._segment_path, "ab")
        header = {
            "kind": "header",
            "schema": FLIGHT_SCHEMA_VERSION,
            "boot_id": self.boot_id,
            "pid": self.pid,
            "segment": self._segment_seq,
            "sample": self.sample,
            "ts": telemetry.now(),
        }
        data = (
            json.dumps(header, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        self._handle.write(data)
        self._handle.flush()
        self._segment_written = len(data)
        self._prune()

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def _prune(self) -> None:
        """Keep at most ``max_segments`` files in the directory (all
        epochs counted — the bound is on disk, not per boot)."""
        segments = list_segments(self.dir)
        for stale in segments[: max(0, len(segments) - self.max_segments)]:
            if stale == self._segment_path:
                continue
            try:
                stale.unlink()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The flight line in ``stats``/``status`` payloads."""
        summary = flight_dir_status(self.dir)
        return {
            "enabled": self.enabled,
            "sample": self.sample,
            "boot_id": self.boot_id,
            "records_written": self.records_written,
            "sampled_out": self.records_sampled_out,
            "segment_bytes": self.segment_bytes,
            "max_segments": self.max_segments,
            "segments": summary["segments"],
            "bytes": summary["bytes"],
            "path": str(self.dir),
        }


# ----------------------------------------------------------------------
# Reading (used by replay, the doctor probe, and the status surfaces)
# ----------------------------------------------------------------------
def list_segments(flight_dir: str | Path) -> list[Path]:
    """Segment files oldest-first (the name embeds boot id + sequence;
    mtime breaks ties across boots so epochs stay in serving order)."""
    directory = Path(flight_dir)
    try:
        segments = [
            path
            for path in directory.iterdir()
            if path.name.startswith("flight-")
            and path.name.endswith(".jsonl")
        ]
    except OSError:
        return []
    def _key(path: Path):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        return (mtime, path.name)
    return sorted(segments, key=_key)


def read_segment(path: str | Path) -> tuple[dict | None, list[dict], bool]:
    """One segment -> (header, records, torn_tail).

    Malformed interior lines are skipped; a final line that does not
    parse (or a file not ending in a newline) marks the tail torn —
    expected after a crash, never fatal.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return None, [], False
    torn = bool(raw) and not raw.endswith(b"\n")
    header: dict | None = None
    records: list[dict] = []
    lines = raw.decode("utf-8", errors="replace").splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                torn = True
            continue
        if not isinstance(entry, dict):
            continue
        if entry.get("kind") == "header" and header is None:
            header = entry
        elif entry.get("kind") == "request":
            records.append(entry)
    return header, records, torn


def read_flight(flight_dir: str | Path) -> dict:
    """The whole directory -> {"headers", "records", "torn_segments"}.

    Records come back in captured order (segments oldest-first, lines
    in file order); callers sort by ``ts`` if they need strict arrival
    order across concurrent sessions.
    """
    headers: list[dict] = []
    records: list[dict] = []
    torn: list[str] = []
    for segment in list_segments(flight_dir):
        header, segment_records, segment_torn = read_segment(segment)
        if header is not None:
            headers.append(header)
        records.extend(segment_records)
        if segment_torn:
            torn.append(segment.name)
    return {"headers": headers, "records": records, "torn_segments": torn}


def flight_dir_status(flight_dir: str | Path) -> dict:
    """Cheap on-disk summary: segment count, bytes, torn newest tail.

    Reads only the newest segment's bytes (for the torn check) — safe
    to call from the doctor and the status surfaces while a daemon is
    writing.
    """
    segments = list_segments(flight_dir)
    total = 0
    for segment in segments:
        try:
            total += segment.stat().st_size
        except OSError:
            pass
    newest_torn = False
    if segments:
        _header, _records, newest_torn = read_segment(segments[-1])
    return {
        "segments": len(segments),
        "bytes": total,
        "newest_torn": newest_torn,
    }
