"""``orpheusd``: the daemon behind ``orpheus serve``.

One daemon process owns one repository **exclusively**: it takes the
exclusive :class:`~repro.resilience.lock.RepositoryLock` for its whole
lifetime (concurrent CLI invocations time out with a message naming the
``serve`` holder — use ``orpheus remote`` instead), runs torn-operation
recovery at startup, loads the state once, and then serves every client
from memory. Per request the per-invocation lock/load/save tax becomes:

* **reads** (checkout/diff/log/ls/SQL) — scheduled on the worker pool
  under the in-process shared lock; checkouts are served from the
  materialized-version cache when hot.
* **writes** (init/commit/optimize/drop/create_user) — serialized
  through the writer queue; each one brackets with an intent record,
  appends to the operation journal, and durably saves state before the
  client sees ``ok`` — the same crash-consistency contract as the CLI,
  so ``orpheus recover`` and the doctor probes keep working unchanged.

Durability note for checkouts: a file checkout's staging pin (the
provenance parents a later commit needs) lives in daemon memory and is
persisted by the next mutation or the graceful drain; a daemon crash
between the two loses only the pin, never version history — the same
artifact recovery the CLI already has cleans up the file.

Shutdown (SIGTERM/SIGINT or a ``shutdown`` request): stop accepting,
drain the scheduler, save state, fold telemetry into the repository
accumulator (so ``orpheus stats`` sees the serving counters), remove
the socket and status file, release the lock, exit 0.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.core.csvio import read_csv, read_schema_file, write_csv, write_schema_file
from repro.core.errors import CVDError
from repro.observe.heat import HeatAccountant, build_event
from repro.observe.journal import Journal, make_record
from repro.resilience.intents import IntentLog, has_pending_intents
from repro.resilience.lock import RepositoryLock
from repro.service import faults, protocol
from repro.service.cache import DEFAULT_BUDGET_BYTES, CacheEntry, VersionCache
from repro.service.degrade import (
    DegradeController,
    DegradedError,
    Quarantine,
    QuarantinedRequestError,
)
from repro.service.metrics import RECENT_CAP, ServiceMetrics
from repro.service.protocol import LineChannel, Request, Response
from repro.service.recorder import (
    DEFAULT_MAX_SEGMENTS,
    DEFAULT_SEGMENT_BYTES,
    FlightRecorder,
    args_digest,
    new_boot_id,
)
from repro.service.tracing import RequestTrace, SlowLog
from repro.service.scheduler import (
    DEFAULT_READ_QUEUE_DEPTH,
    DEFAULT_WORKERS,
    DEFAULT_WRITE_QUEUE_DEPTH,
    DeadlineExceededError,
    QueueFullError,
    RequestScheduler,
    SchedulerStoppedError,
)
from repro.service.sessions import (
    DEFAULT_IDLE_TIMEOUT,
    HandshakeError,
    SessionManager,
)

#: Status/pid file the CLI, client, and doctor probe read.
STATUS_FILE = "service.json"
SOCKET_FILE = "service.sock"

#: Unix-domain socket paths are limited to ~108 bytes; repositories in
#: deeply nested directories fall back to an /tmp path keyed by the
#: repository root (recorded in service.json, so clients still find it).
_MAX_SOCKET_PATH = 100

#: How often the housekeeping thread folds telemetry into
#: ``.orpheus/telemetry.json`` (seconds).
FOLD_INTERVAL = 30.0

#: Exceptions the *request* caused (bad version id, missing file, a
#: malformed argument): answered with ``error_kind: user`` and never
#: counted as worker crashes. Everything else is an internal failure —
#: contained, counted, and quarantine-tracked.
_USER_ERRORS = (
    CVDError,
    ValueError,
    KeyError,
    TypeError,
    FileNotFoundError,
    PermissionError,
)


def default_socket_path(root: str | None = None) -> str:
    path = str(Path(root or ".").resolve() / ".orpheus" / SOCKET_FILE)
    if len(path.encode()) <= _MAX_SOCKET_PATH:
        return path
    digest = hashlib.sha256(path.encode()).hexdigest()[:16]
    return f"/tmp/orpheusd-{digest}.sock"


def status_file_path(root: str | None = None) -> Path:
    return Path(root or ".") / ".orpheus" / STATUS_FILE


@dataclass
class ServiceConfig:
    """Everything tunable about one daemon."""

    root: str | None = None
    socket_path: str | None = None
    tcp: tuple[str, int] | None = None
    workers: int = DEFAULT_WORKERS
    cache_bytes: int = DEFAULT_BUDGET_BYTES
    read_queue_depth: int = DEFAULT_READ_QUEUE_DEPTH
    write_queue_depth: int = DEFAULT_WRITE_QUEUE_DEPTH
    per_cvd_depth: int | None = None
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT
    drain_timeout: float = 30.0
    request_timeout: float = 120.0
    fold_interval: float = FOLD_INTERVAL
    #: None disables the HTTP monitoring sidecar; 0 binds an ephemeral
    #: port (recorded in service.json for scrapers to discover).
    metrics_port: int | None = None
    metrics_host: str = "127.0.0.1"
    #: Slow-request threshold in ms; None reads ``ORPHEUS_SLOW_MS``.
    slow_ms: float | None = None
    #: Span trees kept in the in-memory recent ring for ``stats``.
    recent_traces: int = RECENT_CAP
    #: Flight-recorder sample fraction; None reads
    #: ``ORPHEUS_FLIGHT_SAMPLE`` (default 1.0 — always on), 0 disables.
    flight_sample: float | None = None
    flight_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    flight_max_segments: int = DEFAULT_MAX_SEGMENTS

    def resolved_socket(self) -> str:
        return self.socket_path or default_socket_path(self.root)


class ServiceDaemon:
    """One running orpheusd instance."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.root = self.config.root
        self.orpheus = None
        self.cache = VersionCache(self.config.cache_bytes)
        self.scheduler = RequestScheduler(
            workers=self.config.workers,
            read_queue_depth=self.config.read_queue_depth,
            write_queue_depth=self.config.write_queue_depth,
            per_cvd_depth=self.config.per_cvd_depth,
        )
        self.sessions = SessionManager(self.config.idle_timeout)
        self.journal = Journal(self.root)
        self.intents = IntentLog(self.root)
        self._lock: RepositoryLock | None = None
        self._listeners: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        self._channels: set[LineChannel] = set()
        self._channels_lock = threading.Lock()
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_mutex = threading.Lock()
        self.started_ts: float | None = None
        self.requests_total = 0
        self.requests_by_op: dict[str, int] = {}
        self.busy_responses = 0
        #: Fault-tolerance surfaces: degraded read-only mode, the
        #: poison-request quarantine, and lifetime failure counters.
        self.degrade = DegradeController()
        self.quarantine = Quarantine()
        self.worker_errors_total = 0
        self.deadline_exceeded_total = 0
        self.degraded_refused_total = 0
        self._was_telemetry_enabled = False
        self.metrics = ServiceMetrics(recent_cap=self.config.recent_traces)
        self.slow_log = SlowLog(self.root, threshold_ms=self.config.slow_ms)
        #: One serving epoch: fresh per start, stamped on every flight
        #: segment and status payload so readers (and `orpheus top`)
        #: can tell a restart from a counter glitch.
        self.boot_id = new_boot_id()
        self.recorder = FlightRecorder(
            self.root,
            sample=self.config.flight_sample,
            segment_bytes=self.config.flight_segment_bytes,
            max_segments=self.config.flight_max_segments,
            boot_id=self.boot_id,
        )
        #: The storage access observatory: reloaded under the lock at
        #: start, folded per request, persisted with every telemetry
        #: fold and at drain.
        self.heat = HeatAccountant()
        self._metrics_server = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceDaemon":
        """Acquire ownership, recover, load state, bind, go."""
        from repro.cli import load_state

        self._was_telemetry_enabled = telemetry.is_enabled()
        telemetry.reset()
        telemetry.enable()
        self._lock = RepositoryLock(
            self.root, shared=False, command="serve"
        ).acquire()
        try:
            if has_pending_intents(self.root):
                from repro.resilience.recovery import run_recovery

                report = run_recovery(self.root, dry_run=False)
                if report.actions:
                    sys.stderr.write(
                        f"orpheusd: recovered {len(report.actions)} torn "
                        f"operation(s) from a previous crash at startup\n"
                    )
            self.orpheus = load_state(self.root)
            self.heat = HeatAccountant.load(self.root)
            self._bind()
            if self.config.metrics_port is not None:
                from repro.service.httpmon import MetricsServer

                self._metrics_server = MetricsServer(
                    self,
                    host=self.config.metrics_host,
                    port=self.config.metrics_port,
                )
                self._metrics_server.start()
            self.started_ts = telemetry.now()
            self._write_status_file()
            self.scheduler.start()
            for listener in self._listeners:
                thread = threading.Thread(
                    target=self._accept_loop,
                    args=(listener,),
                    name="orpheusd-accept",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
            housekeeper = threading.Thread(
                target=self._housekeeping_loop,
                name="orpheusd-housekeeping",
                daemon=True,
            )
            housekeeper.start()
            self._threads.append(housekeeper)
            telemetry.count("service.daemon.starts")
        except BaseException:
            self._release_lock()
            raise
        return self

    def serve_forever(self) -> None:
        """Block until a shutdown is requested, then drain."""
        self._stop.wait()
        self.shutdown()

    def request_shutdown(self) -> None:
        """Signal-handler-safe: ask the daemon to drain and exit."""
        self._stop.set()

    def shutdown(self) -> None:
        """Graceful drain; idempotent and safe to race from two threads."""
        with self._shutdown_mutex:
            if self._stopped.is_set():
                return
            self._do_shutdown()

    def _do_shutdown(self) -> None:
        self._stop.set()
        self.sessions.begin_drain()
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self._metrics_server is not None:
            try:
                self._metrics_server.stop()
            except Exception:
                pass
            self._metrics_server = None
        self.scheduler.stop(timeout=self.config.drain_timeout)
        with self._channels_lock:
            channels = list(self._channels)
        for channel in channels:
            channel.close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()
        if self.orpheus is not None:
            try:
                self._save_state_guarded()
            except Exception:
                # Best-effort on the way out: a still-failing save must
                # not block socket/lock cleanup (the state on disk is
                # the last durable one; nothing acked depends on this).
                pass
        self.recorder.close()
        self._fold_telemetry(final=True)
        socket_path = self.config.resolved_socket()
        try:
            os.unlink(socket_path)
        except OSError:
            pass
        try:
            status_file_path(self.root).unlink()
        except OSError:
            pass
        self._release_lock()
        if not self._was_telemetry_enabled:
            telemetry.disable()
        self._stopped.set()

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    # ------------------------------------------------------------------
    # Sockets
    # ------------------------------------------------------------------
    def _bind(self) -> None:
        socket_path = self.config.resolved_socket()
        Path(socket_path).parent.mkdir(parents=True, exist_ok=True)
        try:
            os.unlink(socket_path)
        except OSError:
            pass
        unix = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        unix.bind(socket_path)
        unix.listen(64)
        unix.settimeout(0.25)
        self._listeners.append(unix)
        if self.config.tcp is not None:
            host, port = self.config.tcp
            tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            tcp.bind((host, port))
            tcp.listen(64)
            tcp.settimeout(0.25)
            self._listeners.append(tcp)
            # Rebind may have picked an ephemeral port; record reality.
            self.config.tcp = tcp.getsockname()[:2]

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                sock, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            peer = f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else "unix"
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock, peer),
                name="orpheusd-conn",
                daemon=True,
            )
            thread.start()

    def _housekeeping_loop(self) -> None:
        while not self._stop.wait(self.config.fold_interval):
            self._fold_telemetry()
            self._probe_degraded()

    def _probe_degraded(self) -> None:
        """While degraded, periodically probe the save path; the first
        success auto-exits read-only mode. Writes are refused while
        degraded, so without this probe nothing would ever retry the
        save and the daemon could never heal."""
        if not self.degrade.degraded:
            return
        with self.scheduler.lock.write_locked():
            if not self.degrade.degraded:
                return
            try:
                self._save_state_guarded()
            except Exception:
                return  # still degraded; the next interval retries

    def _fold_telemetry(self, final: bool = False) -> None:
        """Merge this process's telemetry into the repository
        accumulator and reset the registry so the next fold is a delta.
        Keeps ``orpheus stats`` meaningful while the daemon runs."""
        from repro.cli import load_telemetry, save_telemetry

        try:
            self.heat.save(self.root)
        except OSError:
            if final:
                raise
        try:
            save_telemetry(
                load_telemetry(self.root).merged(telemetry.snapshot()),
                self.root,
            )
        except OSError:
            if final:
                raise
            return
        telemetry.reset()

    # ------------------------------------------------------------------
    # Connections and dispatch
    # ------------------------------------------------------------------
    def _serve_connection(self, sock: socket.socket, peer: str) -> None:
        sock.settimeout(self.config.idle_timeout)
        channel = LineChannel(sock)
        with self._channels_lock:
            self._channels.add(channel)
        session = None
        try:
            session = self._handshake(channel, peer)
            if session is None:
                return
            while not self._stop.is_set():
                try:
                    line = channel.recv_line()
                except socket.timeout:
                    if self.sessions.idle_expired(session):
                        self.sessions.note_idle_close()
                        return
                    continue
                except (protocol.ProtocolError, OSError):
                    return
                if line is None:
                    return
                try:
                    request = protocol.decode_request(line)
                except protocol.ProtocolError as error:
                    channel.send(
                        Response(
                            id=0,
                            status=protocol.ERROR,
                            error=str(error),
                            error_type="ProtocolError",
                        ).to_dict()
                    )
                    continue
                try:
                    kind = faults.take("conn.after_recv")
                except faults.InjectedFaultError as error:
                    channel.send(
                        Response(
                            id=request.id,
                            status=protocol.ERROR,
                            error=str(error),
                            error_type="InjectedFaultError",
                            error_kind="internal",
                        ).to_dict()
                    )
                    continue
                if kind in ("reset", "torn"):
                    # Connection-level fault after the request arrived:
                    # the client sees a reset, never a torn response.
                    channel.abort()
                    return
                session.touch()
                rtrace = RequestTrace.from_request(request, session)
                response = self._handle_request(session, request, rtrace)
                if response.status not in (protocol.OK, protocol.SHUTDOWN):
                    session.errors += 1
                send_failed = False
                try:
                    kind = faults.take("conn.before_send")
                except faults.InjectedFaultError:
                    # The 'error' action at the send site behaves like a
                    # failed write: drop the connection, keep the daemon.
                    kind = "reset"
                if kind == "reset":
                    channel.abort()
                    send_failed = True
                elif kind == "torn":
                    channel.send_torn(response.to_dict())
                    send_failed = True
                else:
                    try:
                        channel.send(response.to_dict())
                    except OSError:
                        send_failed = True
                # The serialize phase closes only once the bytes are on
                # the wire (or the send failed); finalize regardless so
                # even a request whose client vanished leaves a span.
                rtrace.mark_sent()
                self._finalize_request(rtrace, request)
                if send_failed:
                    return
                if getattr(session, "wants_shutdown", False):
                    self.request_shutdown()
                    return
        finally:
            if session is not None:
                self.sessions.close(session)
            with self._channels_lock:
                self._channels.discard(channel)
            channel.close()

    def _handshake(self, channel: LineChannel, peer: str):
        try:
            line = channel.recv_line()
        except (socket.timeout, protocol.ProtocolError, OSError):
            return None
        if line is None:
            return None
        request = None
        try:
            request = protocol.decode_request(line)
            if request.op != "hello":
                raise HandshakeError(
                    f"first request must be 'hello', got {request.op!r}"
                )
            session = self.sessions.open(
                request.params, self.orpheus.access._users, peer=peer
            )
        except (HandshakeError, protocol.ProtocolError) as error:
            try:
                channel.send(
                    Response(
                        id=request.id if request is not None else 0,
                        status=protocol.DENIED,
                        error=str(error),
                        error_type=type(error).__name__,
                    ).to_dict()
                )
            except OSError:
                pass
            return None
        channel.send(
            Response(
                id=request.id,
                status=protocol.OK,
                data={
                    "session_id": session.session_id,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "server": "orpheusd",
                    "pid": os.getpid(),
                    "boot_id": self.boot_id,
                    "user": session.user,
                },
            ).to_dict()
        )
        return session

    def _handle_request(
        self, session, request: Request, rtrace: RequestTrace
    ) -> Response:
        response = self._dispatch_request(session, request, rtrace)
        rtrace.finish(
            "ok" if response.ok else response.status,
            response.error_type,
            error_kind=response.error_kind,
        )
        response.trace = rtrace.wire_trace()
        return response

    def _dispatch_request(
        self, session, request: Request, rtrace: RequestTrace
    ) -> Response:
        self.requests_total += 1
        self.requests_by_op[request.op] = (
            self.requests_by_op.get(request.op, 0) + 1
        )
        telemetry.count("service.requests")
        telemetry.count(f"service.requests.{request.op}")
        if self.sessions.draining and request.op != "shutdown":
            return Response(
                id=request.id,
                status=protocol.SHUTDOWN,
                error="daemon is draining",
            )
        try:
            if request.op in protocol.CONTROL_OPS:
                # Control ops run inline: admission and queue wait are
                # zero by construction, execution is the handler.
                rtrace.mark_admitted()
                rtrace.mark_started()
                try:
                    return self._handle_control(session, request)
                finally:
                    rtrace.mark_executed()
            # One digest per scheduled request: the quarantine keys on
            # it, the flight recorder reuses it.
            rtrace.digest = args_digest(request.op, request.params)
            if rtrace.expired():
                # Dead on arrival: the client's budget expired before
                # admission (e.g. burned by earlier busy retries).
                rtrace.mark_admitted()
                return self._deadline_response(request, "at admission")
            self.quarantine.check(rtrace.digest, request.op)
            if request.op in protocol.READ_OPS:
                job = self.scheduler.submit_read(
                    lambda: self._execute_read(session, request, rtrace),
                    deadline=rtrace.deadline_at,
                )
            elif request.op in protocol.WRITE_OPS:
                # Degraded read-only mode refuses mutations up front —
                # before they occupy writer-queue capacity.
                self.degrade.check_writable()
                job = self.scheduler.submit_write(
                    lambda: self._execute_write(session, request, rtrace),
                    dataset=request.get("dataset"),
                    deadline=rtrace.deadline_at,
                )
            else:
                rtrace.mark_admitted()
                return Response(
                    id=request.id,
                    status=protocol.ERROR,
                    error=f"unknown op {request.op!r}",
                    error_type="ProtocolError",
                    error_kind="user",
                )
            # The job's own submission stamp avoids a race with a worker
            # that started before this thread resumed.
            rtrace.t_admitted = job.submitted_at
            data = job.wait(self.config.request_timeout)
            return Response(id=request.id, status=protocol.OK, data=data)
        except QueueFullError as error:
            # Shed before it ever queued: admission is the terminal
            # phase of this trace, and the client still gets the ids.
            rtrace.mark_admitted()
            self.busy_responses += 1
            telemetry.count("service.busy")
            return Response(
                id=request.id,
                status=protocol.BUSY,
                error=str(error),
                error_type="QueueFullError",
            )
        except SchedulerStoppedError as error:
            return Response(
                id=request.id, status=protocol.SHUTDOWN, error=str(error)
            )
        except DeadlineExceededError as error:
            return self._deadline_response(request, str(error))
        except DegradedError as error:
            rtrace.mark_admitted()
            self.degraded_refused_total += 1
            telemetry.count("service.request.degraded_refused")
            return Response(
                id=request.id,
                status=protocol.DEGRADED,
                error=str(error),
                error_type="DegradedError",
            )
        except QuarantinedRequestError as error:
            rtrace.mark_admitted()
            return Response(
                id=request.id,
                status=protocol.ERROR,
                error=str(error),
                error_type="QuarantinedRequestError",
                error_kind="user",
            )
        except Exception as error:
            return self._error_response(request, rtrace, error)

    def _deadline_response(self, request: Request, where: str) -> Response:
        self.deadline_exceeded_total += 1
        telemetry.count("service.request.deadline_exceeded")
        return Response(
            id=request.id,
            status=protocol.DEADLINE_EXCEEDED,
            error=f"deadline exceeded: {where}",
            error_type="DeadlineExceededError",
        )

    def _error_response(
        self, request: Request, rtrace: RequestTrace, error: BaseException
    ) -> Response:
        """Classify a worker exception: user errors answer the client
        and stop there; internal errors additionally count as worker
        crashes, feed the quarantine, and are flagged on the wire so
        clients know the server — not the request — failed. Either way
        the daemon survives."""
        kind = "user" if isinstance(error, _USER_ERRORS) else "internal"
        if kind == "internal":
            self.worker_errors_total += 1
            telemetry.count("service.request.worker_errors")
            if rtrace.digest:
                self.quarantine.note_crash(rtrace.digest, request.op, error)
        return Response(
            id=request.id,
            status=protocol.ERROR,
            error=str(error),
            error_type=type(error).__name__,
            error_kind=kind,
        )

    def _handle_control(self, session, request: Request) -> Response:
        if request.op == "ping":
            return Response(
                id=request.id, status=protocol.OK, data={"pong": True}
            )
        if request.op == "hello":
            return Response(
                id=request.id,
                status=protocol.ERROR,
                error="already shook hands",
                error_type="ProtocolError",
            )
        if request.op == "stats":
            recent = request.get("recent") or 0
            try:
                recent = max(0, int(recent))
            except (TypeError, ValueError):
                recent = 0
            return Response(
                id=request.id,
                status=protocol.OK,
                data=self.stats_payload(recent=recent),
            )
        if request.op == "flush_cache":
            dropped = self.cache.clear()
            return Response(
                id=request.id, status=protocol.OK, data={"dropped": dropped}
            )
        if request.op == "flush_quarantine":
            dropped = self.quarantine.flush()
            return Response(
                id=request.id, status=protocol.OK, data={"dropped": dropped}
            )
        if request.op == "shutdown":
            # Deferred: the connection loop triggers the drain only after
            # this acknowledgement has been flushed to the client.
            session.wants_shutdown = True
            return Response(
                id=request.id, status=protocol.OK, data={"stopping": True}
            )
        raise AssertionError(request.op)

    # ------------------------------------------------------------------
    # Read handlers (shared lock, worker pool)
    # ------------------------------------------------------------------
    def _execute_read(
        self, session, request: Request, rtrace: RequestTrace
    ) -> dict:
        rtrace.mark_started()
        faults.take("worker.before_execute")
        handler = getattr(self, f"_op_{request.op}")
        span_ctx = telemetry.span(
            f"service.{request.op}",
            dataset=request.get("dataset") or "",
            user=session.user,
            trace_id=rtrace.trace_id,
        )
        before = self._cost_snapshot()
        try:
            with span_ctx:
                data = handler(session, request)
                faults.take("worker.mid_execute")
        finally:
            # Graft the worker's live span subtree (cache lookup,
            # materialization, ...) under the request's execute phase.
            rtrace.exec_node = getattr(span_ctx, "node", None)
            rtrace.mark_executed()
            self._stamp_io(rtrace, before)
        if request.op == "checkout":
            rtrace.cached = bool(data.get("cached"))
            rtrace.rows_returned = int(data.get("rows") or 0)
            rtrace.version_ids = tuple(
                int(v) for v in request.get("versions") or ()
            )
        elif request.op == "diff":
            rtrace.rows_returned = int(
                data.get("only_a_count", 0) + data.get("only_b_count", 0)
            )
            rtrace.version_ids = tuple(
                int(v)
                for v in (request.get("a"), request.get("b"))
                if v is not None
            )
        elif request.op == "run":
            rtrace.rows_returned = int(data.get("row_count") or 0)
        if request.op in ("diff", "run") or (
            request.op == "checkout" and request.get("file")
        ):
            self._journal_read_op(session, request, data, rtrace)
        return data

    def _cost_snapshot(self):
        """The shared accountant's counters before a handler runs (None
        when no state is loaded yet)."""
        if self.orpheus is None:
            return None
        return self.orpheus.database.accountant.snapshot()

    def _stamp_io(self, rtrace: RequestTrace, before) -> None:
        """Stamp the handler's storage-access delta onto the trace.

        Concurrent readers share one accountant, so under a busy worker
        pool a delta can include a neighbor's rows — the stamps are a
        workload-accounting signal, not an exactness proof; totals
        across the workload are exact.
        """
        if before is None or self.orpheus is None:
            return
        delta = self.orpheus.database.accountant.snapshot() - before
        rtrace.rows_scanned = delta.seq_rows + delta.random_rows
        rtrace.bytes_scanned = delta.bytes_read
        rtrace.rows_written = delta.rows_written

    def _journal_read_op(
        self, session, request: Request, data: dict, rtrace: RequestTrace
    ) -> None:
        """Uniform observability: remote diff/run/file-checkout land in
        the operation journal exactly like their CLI counterparts —
        under the *client's* trace id, so `orpheus log --ops`
        correlates remote work end to end."""
        record = make_record(
            rtrace.trace_id, request.op, user=session.user
        )
        record.session_id = rtrace.session_id
        record.dataset = request.get("dataset")
        if request.op == "checkout":
            record.input_versions = [int(v) for v in request.get("versions", [])]
            record.rows = data.get("rows")
        elif request.op == "diff":
            record.input_versions = [
                int(request.get("a")), int(request.get("b"))
            ]
            record.rows = data.get("only_a_count", 0) + data.get(
                "only_b_count", 0
            )
        elif request.op == "run":
            record.rows = data.get("row_count")
        self.journal.append(record)

    def _op_status(self, session, request: Request) -> dict:
        return self.status()

    def _op_whoami(self, session, request: Request) -> dict:
        return {"user": session.user or "", "anonymous": not session.user}

    def _op_ls(self, session, request: Request) -> dict:
        return {"datasets": self.orpheus.ls_info()}

    def _op_log(self, session, request: Request) -> dict:
        if request.get("ops"):
            return {"records": self.journal.read()}
        dataset = request.get("dataset")
        if not dataset:
            raise ValueError("log requires 'dataset' (or ops=true)")
        return self.orpheus.log_info(dataset)

    def _op_checkout(self, session, request: Request) -> dict:
        dataset = request.get("dataset")
        vids = [int(v) for v in request.get("versions") or ()]
        if not dataset or not vids:
            raise ValueError("checkout requires 'dataset' and 'versions'")
        self.orpheus.access.check_cvd_access(dataset, user=session.user or None)
        cvd = self.orpheus.cvd(dataset)
        with telemetry.span(
            "service.checkout.cache_lookup", dataset=dataset
        ) as lookup:
            entry = self.cache.get(dataset, vids)
            if entry is not None:
                if faults.take("cache.corrupt_entry") == "corrupt":
                    entry.rows.append(("__corrupt__",))
                if not entry.verify():
                    # Integrity seal mismatch: contain the rot — drop
                    # the entry and rematerialize from version storage
                    # rather than serving corrupted history.
                    self.cache.drop(dataset, vids)
                    telemetry.count("service.cache.corruption_detected")
                    entry = None
            cached = entry is not None
            if lookup is not None:
                lookup.set_attr("hit", cached)
        if entry is None:
            with telemetry.span("service.checkout.materialize", dataset=dataset):
                result = cvd.checkout(vids if len(vids) > 1 else vids[0])
            entry = CacheEntry(
                columns=list(result.columns),
                rows=list(result.rows),
                parents=tuple(result.parents),
            )
            self.cache.put(dataset, vids, entry)
        telemetry.count("command.checkout.rows_materialized", len(entry.rows))
        data: dict = {
            "rows": len(entry.rows),
            "columns": entry.columns,
            "parents": list(entry.parents),
            "cached": cached,
        }
        file_path = request.get("file")
        if file_path:
            write_csv(file_path, entry.columns, entry.rows)
            if request.get("schema"):
                write_schema_file(request.get("schema"), cvd.schema)
            # Provenance pin so a later commit of this file knows its
            # parents (persisted with the next state save).
            from repro.core.commands import _csv_staged

            self.orpheus.staging._staged[file_path] = _csv_staged(
                file_path, dataset, entry.parents, session.user
            )
            data["file"] = file_path
        if request.get("inline"):
            data["data"] = [list(row) for row in entry.rows]
        return data

    def _op_diff(self, session, request: Request) -> dict:
        dataset = request.get("dataset")
        vid_a, vid_b = int(request.get("a")), int(request.get("b"))
        only_a, only_b = self.orpheus.diff(dataset, vid_a, vid_b)
        limit = request.get("limit", 20)
        data = {
            "a": vid_a,
            "b": vid_b,
            "only_a_count": len(only_a),
            "only_b_count": len(only_b),
            "only_a": [list(r) for r in only_a[:limit]],
            "only_b": [list(r) for r in only_b[:limit]],
        }
        return data

    def _op_run(self, session, request: Request) -> dict:
        sql = request.get("sql")
        if not sql:
            raise ValueError("run requires 'sql'")
        result = self.orpheus.run(sql)
        return {
            "columns": list(result.columns),
            "data": [list(row) for row in result.rows],
            "row_count": len(result.rows),
        }

    def _op_doctor(self, session, request: Request) -> dict:
        from repro.observe.doctor import run_doctor

        return run_doctor(self.orpheus, self.root).to_dict()

    # ------------------------------------------------------------------
    # State persistence (guarded by the degrade controller)
    # ------------------------------------------------------------------
    def _save_state_guarded(self) -> None:
        """One durable state save, feeding the degrade controller: a
        failure (including the ``state.before_save`` chaos site) counts
        toward the degraded-mode threshold, a success resets it — and,
        when degraded, flips the daemon back to read-write."""
        from repro.cli import save_state

        try:
            faults.take("state.before_save")
            save_state(self.orpheus, self.root)
        except Exception as error:
            self.degrade.record_save_failure(error)
            raise
        self.degrade.record_save_success()

    def _reload_state(self, dataset: str | None = None) -> None:
        """Re-anchor in-memory state to the last durable save (called
        with the exclusive writer lock already held). Cached entries
        for the touched dataset go with it — they may describe
        in-memory versions that just ceased to exist."""
        from repro.cli import load_state

        try:
            self.orpheus = load_state(self.root)
        except Exception:
            # Disk worse than memory (e.g. the volume is gone): keep
            # serving reads from memory rather than dying here.
            telemetry.count("service.state.reload_failures")
            return
        telemetry.count("service.state.reloads")
        if dataset:
            self.cache.invalidate_dataset(dataset)

    # ------------------------------------------------------------------
    # Write handlers (exclusive lock, writer thread)
    # ------------------------------------------------------------------
    def _execute_write(
        self, session, request: Request, rtrace: RequestTrace
    ) -> dict:
        """One mutation with the CLI's full durability bracket:
        intent begin -> execute -> state save -> journal -> intent done,
        then cache invalidation. The journal record and intent carry
        the *client's* trace id (and session id) so remote mutations
        correlate end to end."""
        rtrace.mark_started()
        faults.take("worker.before_execute")
        trace_id = rtrace.trace_id
        dataset = request.get("dataset")
        journaled = request.op in ("init", "commit", "drop", "optimize")
        if journaled:
            self.intents.begin(
                trace_id,
                request.op,
                dataset=dataset,
                file=request.get("file"),
            )
        record = (
            make_record(trace_id, request.op, user=session.user)
            if journaled
            else None
        )
        if record is not None:
            record.session_id = rtrace.session_id
            record.dataset = dataset
        span_ctx = telemetry.span(
            f"service.{request.op}",
            dataset=dataset or "",
            user=session.user,
            trace_id=trace_id,
        )
        before = self._cost_snapshot()
        try:
            try:
                with span_ctx as span:
                    if span is not None:
                        span.set_attr("trace_id", trace_id)
                    handler = getattr(self, f"_op_{request.op}")
                    data = handler(session, request, record)
                    faults.take("worker.mid_execute")
                self._save_state_guarded()
            except Exception as error:
                if record is not None:
                    record.status = "error"
                    record.error_type = type(error).__name__
                    record.error_message = str(error)
                    self.journal.append(record)
                if journaled:
                    self.intents.done(trace_id, status="error")
                if not isinstance(error, _USER_ERRORS):
                    # Internal failure (worker crash mid-mutation, or a
                    # save that left memory ahead of disk): re-anchor
                    # the in-memory state to the last durable save so a
                    # NACKed mutation can never be observed by later
                    # reads or built on by later commits. User errors
                    # skip this — their handlers failed before mutating,
                    # and a reload would drop live staging pins.
                    self._reload_state(dataset)
                raise
            if record is not None:
                self.journal.append(record)
                if record.output_version is not None:
                    rtrace.version_ids = (record.output_version,)
                if record.rows is not None:
                    rtrace.rows_returned = record.rows
            if journaled:
                self.intents.done(trace_id)
            if dataset:
                invalidated = self.cache.invalidate_dataset(dataset)
                data.setdefault("cache_invalidated", invalidated)
            return data
        finally:
            rtrace.exec_node = getattr(span_ctx, "node", None)
            rtrace.mark_executed()
            self._stamp_io(rtrace, before)

    def _op_init(self, session, request: Request, record) -> dict:
        dataset = request.get("dataset")
        vid = self.orpheus.init_from_csv(
            dataset,
            request.get("file"),
            request.get("schema"),
            model=request.get("model", "split_by_rlist"),
        )
        if record is not None:
            record.output_version = vid
            record.rows = self.orpheus.cvd(dataset).versions.get(vid).record_count
        return {"dataset": dataset, "version": vid}

    def _op_commit(self, session, request: Request, record) -> dict:
        dataset = request.get("dataset")
        file_path = request.get("file")
        if not dataset or not file_path:
            raise ValueError("commit requires 'dataset' and 'file'")
        cvd = self.orpheus.cvd(dataset)
        schema = (
            read_schema_file(request.get("schema"))
            if request.get("schema")
            else cvd.schema
        )
        rows = read_csv(file_path, schema)
        explicit = request.get("parents")
        if explicit is not None:
            parents = tuple(int(p) for p in explicit)
        else:
            info = self.orpheus.staging._staged.get(file_path)
            parents = tuple(info.parents) if info is not None else ()
        vid = cvd.commit(
            rows,
            parents=parents,
            message=request.get("message", ""),
            author=session.user,
            columns=schema.column_names,
            column_types={c.name: c.dtype for c in schema.columns},
        )
        self.orpheus.staging._staged.pop(file_path, None)
        if record is not None:
            record.input_versions = list(parents)
            record.output_version = vid
            record.rows = len(rows)
        return {"dataset": dataset, "version": vid, "rows": len(rows)}

    def _op_drop(self, session, request: Request, record) -> dict:
        dataset = request.get("dataset")
        self.orpheus.drop(dataset)
        return {"dataset": dataset, "dropped": True}

    def _op_optimize(self, session, request: Request, record) -> dict:
        dataset = request.get("dataset")
        partitioning = self.orpheus.optimize(
            dataset,
            storage_threshold_factor=request.get("gamma", 2.0),
            tolerance=request.get("mu", 1.5),
        )
        return {
            "dataset": dataset,
            "partitions": partitioning.num_partitions,
        }

    def _op_create_user(self, session, request: Request, record) -> dict:
        name = request.get("name")
        if not name:
            raise ValueError("create_user requires 'name'")
        self.orpheus.create_user(name, request.get("email", ""))
        return {"user": name}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _finalize_request(
        self, rtrace: RequestTrace, request: Request
    ) -> None:
        """Fold one finished request into every observability surface:
        metrics rollups, the flight recorder, slow log, and the
        fold-file counters the bench runner reads for the
        queue-wait/exec split."""
        try:
            slow = self.slow_log.consider(rtrace)
        except Exception:
            slow = False  # a full disk must not kill the connection
        try:
            self.recorder.record(rtrace, request)
        except Exception:
            pass  # same contract: recording never kills the connection
        self.metrics.record(rtrace, slow=slow)
        self._fold_heat(rtrace)
        telemetry.count("service.request.count")
        for name, value in rtrace.phase_seconds().items():
            telemetry.count(f"service.request.{name}_seconds_total", value)
        telemetry.count(
            "service.request.total_seconds_total", rtrace.total_s
        )

    def _fold_heat(self, rtrace: RequestTrace) -> None:
        """Fold a successful dataset access into the heat model and the
        per-dataset I/O rollups (never fatal to the connection)."""
        if rtrace.status != "ok" or not rtrace.dataset:
            return
        try:
            event = build_event(
                self.orpheus,
                ts=rtrace.started_ts,
                command=rtrace.op,
                dataset=rtrace.dataset,
                versions=rtrace.version_ids or (),
                rows_returned=rtrace.rows_returned or 0,
                rows_scanned=rtrace.rows_scanned or 0,
                bytes_scanned=rtrace.bytes_scanned or 0,
                rows_written=rtrace.rows_written or 0,
            )
            self.heat.record(event)
            entry = self.heat.datasets.get(rtrace.dataset)
            sample = self.heat.samples.get(f"{event.model}|checkout")
            self.metrics.record_io(
                rtrace.dataset,
                rows_scanned=event.rows_scanned,
                bytes_scanned=event.bytes_scanned,
                rows_written=event.rows_written,
                partition_touches=len(event.partitions),
                heat=(
                    self.heat.current_heat(entry, rtrace.started_ts)
                    if entry
                    else None
                ),
                read_amplification=(
                    sample["rows_scanned"] / sample["rows_requested"]
                    if sample and sample["rows_requested"] > 0
                    else None
                ),
            )
            telemetry.count(
                "service.heat.partition_touches", len(event.partitions)
            )
            # Re-aim the buffer pool's pins at whatever just got hot, so
            # the hottest partitions stay resident across cold churn.
            from repro.pagestore.bufferpool import (
                get_pool,
                refresh_pins_from_heat,
            )

            refresh_pins_from_heat(get_pool(), self.heat, rtrace.started_ts)
        except Exception:
            telemetry.count("service.heat.fold_errors")

    def stats_payload(self, recent: int = 0) -> dict:
        """The ``stats`` op response: daemon-lifetime request metrics
        plus live scheduler/cache/session state."""
        payload = self.metrics.to_dict(recent=recent)
        payload["server"] = {
            "pid": os.getpid(),
            "boot_id": self.boot_id,
            "started_ts": self.started_ts,
            "draining": self.sessions.draining,
        }
        payload["scheduler"] = self.scheduler.status()
        payload["cache"] = self.cache.stats().to_dict()
        payload["sessions"] = self.sessions.status()
        payload["slow"] = self.slow_log.stats()
        payload["flight"] = self.recorder.status()
        payload["degrade"] = self.degrade.status()
        payload["quarantine"] = self.quarantine.status()
        payload["faults"] = faults.stats()
        payload["failures"] = self.failure_counters()
        payload["heat"] = self.heat_summary()
        payload["buffer_pool"] = self.buffer_pool_stats()
        return payload

    def buffer_pool_stats(self) -> dict:
        """The shared page-cache stats for ``stats``/``top``/metrics
        ({} when the pagestore has never been touched)."""
        try:
            from repro.pagestore.bufferpool import get_pool

            return get_pool().stats()
        except Exception:
            return {}

    def heat_summary(self, top: int = 5) -> dict:
        """The inline heat rollup for ``stats``: hottest datasets and
        partitions plus daemon-lifetime scan totals."""
        now = telemetry.now()
        return {
            "half_life_s": self.heat.half_life_s,
            "events_total": self.heat.events_total,
            "rows_scanned_total": self.metrics.rows_scanned_total,
            "bytes_scanned_total": self.metrics.bytes_scanned_total,
            "partition_touches_total": (
                self.metrics.partition_touches_total
            ),
            "hot_datasets": [
                {
                    "dataset": key,
                    "heat": round(heat, 4),
                    "touches": entry["touches"],
                }
                for key, entry, heat in self.heat.ranked(
                    self.heat.datasets, now
                )[:top]
            ],
            "hot_partitions": [
                {
                    "partition": key,
                    "heat": round(heat, 4),
                    "touches": entry["touches"],
                }
                for key, entry, heat in self.heat.ranked(
                    self.heat.partitions, now
                )[:top]
            ],
        }

    def failure_counters(self) -> dict:
        return {
            "worker_errors": self.worker_errors_total,
            "deadline_exceeded": self.deadline_exceeded_total,
            "deadline_shed": self.scheduler.deadline_shed,
            "degraded_refused": self.degraded_refused_total,
        }

    def render_metrics(self) -> str:
        """Prometheus exposition for the ``/metrics`` endpoint."""
        scheduler = self.scheduler.status()
        cache = self.cache.stats().to_dict()
        sessions = self.sessions.status()
        pool = self.buffer_pool_stats()
        return self.metrics.render_prometheus(
            extra_counters={
                "cache_hits_total": cache.get("hits", 0),
                "cache_misses_total": cache.get("misses", 0),
                "cache_evictions_total": cache.get("evictions", 0),
                "cache_invalidations_total": cache.get("invalidations", 0),
                "scheduler_shed_reads_total": scheduler.get("shed_reads", 0),
                "scheduler_shed_writes_total": scheduler.get(
                    "shed_writes", 0
                ),
                "scheduler_deadline_shed_total": scheduler.get(
                    "deadline_shed", 0
                ),
                "sessions_opened_total": sessions.get("total_opened", 0),
                "worker_errors_total": self.worker_errors_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "degraded_refused_total": self.degraded_refused_total,
                "degraded_entries_total": self.degrade.entries_total,
                "partition_touch_total": (
                    self.metrics.partition_touches_total
                ),
                "scanned_rows_total": self.metrics.rows_scanned_total,
                "scanned_bytes_total": self.metrics.bytes_scanned_total,
                "page_faults_total": pool.get("faults", 0),
                "page_evictions_total": pool.get("evictions", 0),
                "page_writebacks_total": pool.get("writebacks", 0),
            },
            extra_gauges={
                "read_queue_depth": scheduler.get("read_queue_depth", 0),
                "write_queue_depth": scheduler.get("write_queue_depth", 0),
                "cache_entries": cache.get("entries", 0),
                "cache_bytes": cache.get("bytes", 0),
                "sessions_active": sessions.get("active", 0),
                "draining": 1 if self.sessions.draining else 0,
                "degraded": 1 if self.degrade.degraded else 0,
                "quarantined_digests": self.quarantine.status()[
                    "quarantined"
                ],
                "buffer_pool_resident_bytes": pool.get("resident_bytes", 0),
                "buffer_pool_resident_pages": pool.get("resident_pages", 0),
                "buffer_pool_dirty_bytes": pool.get("dirty_bytes", 0),
                "buffer_pool_budget_bytes": pool.get("budget_bytes", 0),
                "buffer_pool_pinned_bytes": pool.get("pinned_bytes", 0),
            },
        )

    @property
    def draining(self) -> bool:
        return self.sessions.draining

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        uptime = (
            telemetry.now() - self.started_ts
            if self.started_ts is not None
            else 0.0
        )
        return {
            "server": "orpheusd",
            "pid": os.getpid(),
            "boot_id": self.boot_id,
            "protocol": protocol.PROTOCOL_VERSION,
            "root": str(Path(self.root or ".").resolve()),
            "socket": self.config.resolved_socket(),
            "tcp": list(self.config.tcp) if self.config.tcp else None,
            "started_ts": self.started_ts,
            "uptime_s": round(uptime, 3),
            "draining": self.sessions.draining,
            "datasets": len(self.orpheus.ls()) if self.orpheus else 0,
            "requests": {
                "total": self.requests_total,
                "busy": self.busy_responses,
                "by_op": dict(sorted(self.requests_by_op.items())),
                **self.failure_counters(),
            },
            "scheduler": self.scheduler.status(),
            "cache": self.cache.stats().to_dict(),
            "sessions": self.sessions.status(),
            "degrade": self.degrade.status(),
            "quarantine": self.quarantine.status(),
            "faults": faults.stats(),
            "metrics": (
                self._metrics_server.address
                if self._metrics_server is not None
                else None
            ),
            "slow": self.slow_log.stats(),
            "flight": self.recorder.status(),
        }

    def _write_status_file(self) -> None:
        path = status_file_path(self.root)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "pid": os.getpid(),
            "boot_id": self.boot_id,
            "socket": self.config.resolved_socket(),
            "tcp": list(self.config.tcp) if self.config.tcp else None,
            "protocol": protocol.PROTOCOL_VERSION,
            "started_ts": self.started_ts,
            "root": str(Path(self.root or ".").resolve()),
            "metrics": (
                self._metrics_server.address
                if self._metrics_server is not None
                else None
            ),
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
