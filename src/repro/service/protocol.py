"""The orpheusd wire protocol: newline-delimited JSON over a stream.

One request or response per line, UTF-8, ``\\n``-terminated, no framing
beyond the newline — greppable on the wire, trivially implementable
from any language, and torn-tail tolerant the same way the journals
are. A connection carries exactly one session: the first request must
be a ``hello`` handshake carrying the protocol version and (optionally)
a registered user identity; every later request is a command.

Requests::

    {"id": 3, "op": "checkout", "dataset": "inter", "versions": [1, 2],
     "trace": {"trace_id": "9f2c64b01a77d3e8",
               "parent_span_id": "41ab09c2f1d6b573", "attempt": 0}}

The optional ``trace`` object is a W3C-style trace context: the daemon
adopts its ``trace_id`` for the server-side span tree and every journal
record the request produces, so one id follows the operation end to
end. Retries of a shed request re-send the same context with a bumped
``attempt``.

Responses echo the id, carry a status, and (for scheduled operations)
a ``trace`` summary with the request's span ids and phase timings::

    {"id": 3, "status": "ok", "data": {...},
     "trace": {"trace_id": "9f2c64b01a77d3e8", "span_id": "c01d...",
               "queue_wait_s": 0.0002, "execute_s": 0.0131}}
    {"id": 7, "status": "busy", "error": "writer queue full ..."}

Statuses:

* ``ok`` — the command ran; ``data`` holds its result.
* ``error`` — the command raised; ``error`` has the message,
  ``error_type`` the exception class name.
* ``busy`` — load-shedding: the scheduler's queue was full. The
  request was **not** executed; clients retry with backoff.
* ``denied`` — handshake or access-control rejection.
* ``shutdown`` — the daemon is draining; reconnect later.
* ``deadline_exceeded`` — the request's propagated ``deadline_ms``
  expired before execution; the daemon shed it without running it
  (answering late would be work the client already gave up on).
* ``degraded`` — the daemon is in degraded read-only mode (state
  saves are failing); the mutation was refused up front, reads still
  flow.

Error responses additionally carry ``error_kind``: ``"user"`` for
errors the request caused (bad version id, unknown dataset — fix the
request), ``"internal"`` for errors in the daemon (a worker crashed
mid-execute — the request may be fine, the server is not).
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field

#: Bumped on incompatible wire changes; the handshake rejects mismatches.
PROTOCOL_VERSION = 1

#: A line longer than this is a protocol violation (guards the daemon
#: against unbounded memory from a garbage or hostile peer).
MAX_LINE_BYTES = 32 * 1024 * 1024

OK = "ok"
ERROR = "error"
BUSY = "busy"
DENIED = "denied"
SHUTDOWN = "shutdown"
DEADLINE_EXCEEDED = "deadline_exceeded"
DEGRADED = "degraded"

#: Read-only operations: run concurrently on the scheduler's worker
#: pool under the shared lock. ``checkout`` is read-only in the service
#: model — materialization never changes version history.
READ_OPS = frozenset(
    {"checkout", "diff", "log", "ls", "run", "whoami", "doctor", "status"}
)

#: Mutations: serialized through the writer queue, journaled, and
#: followed by a durable state save.
WRITE_OPS = frozenset(
    {"init", "commit", "drop", "optimize", "create_user"}
)

#: Session/admin operations handled outside the scheduler. ``stats``
#: reads the daemon's in-memory observability state only — no
#: repository access — so it stays live even when the queues are full.
CONTROL_OPS = frozenset(
    {"hello", "ping", "stats", "flush_cache", "flush_quarantine", "shutdown"}
)

ALL_OPS = READ_OPS | WRITE_OPS | CONTROL_OPS


class ProtocolError(ValueError):
    """Malformed frame: not JSON, not an object, or oversized."""


@dataclass
class Request:
    """One decoded client request."""

    op: str
    id: int = 0
    params: dict = field(default_factory=dict)

    def get(self, key: str, default=None):
        return self.params.get(key, default)

    def to_dict(self) -> dict:
        payload = {"id": self.id, "op": self.op}
        payload.update(self.params)
        return payload


@dataclass
class Response:
    """One server response, correlated to a request by id."""

    id: int
    status: str
    data: dict | None = None
    error: str | None = None
    error_type: str | None = None
    #: "user" (fix the request) vs "internal" (the server failed).
    error_kind: str | None = None
    #: Server-side trace summary (trace/span ids + phase timings).
    trace: dict | None = None

    def to_dict(self) -> dict:
        payload: dict = {"id": self.id, "status": self.status}
        if self.data is not None:
            payload["data"] = self.data
        if self.error is not None:
            payload["error"] = self.error
        if self.error_type is not None:
            payload["error_type"] = self.error_type
        if self.error_kind is not None:
            payload["error_kind"] = self.error_kind
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @property
    def ok(self) -> bool:
        return self.status == OK


def encode(payload: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (
        json.dumps(payload, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_request(line: bytes | str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    payload = _decode_object(line)
    op = payload.pop("op", None)
    if not isinstance(op, str) or not op:
        raise ProtocolError("request lacks an 'op' field")
    request_id = payload.pop("id", 0)
    if not isinstance(request_id, int):
        raise ProtocolError("request 'id' must be an integer")
    return Request(op=op, id=request_id, params=payload)


def decode_response(line: bytes | str) -> Response:
    payload = _decode_object(line)
    status = payload.get("status")
    if not isinstance(status, str):
        raise ProtocolError("response lacks a 'status' field")
    trace = payload.get("trace")
    return Response(
        id=int(payload.get("id", 0)),
        status=status,
        data=payload.get("data"),
        error=payload.get("error"),
        error_type=payload.get("error_type"),
        error_kind=payload.get("error_kind"),
        trace=trace if isinstance(trace, dict) else None,
    )


def _decode_object(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


class LineChannel:
    """Blocking line-oriented reader/writer over a connected socket.

    Owns a receive buffer so partial TCP segments reassemble into
    complete frames; oversized frames abort the connection rather than
    buffering without bound.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = bytearray()

    def send(self, payload: dict) -> None:
        self.sock.sendall(encode(payload))

    def send_torn(self, payload: dict) -> None:
        """Chaos-testing only: send roughly half the frame, then close.

        Simulates a server dying mid-write; the peer must treat the
        unterminated partial line as EOF (the torn-tail drop in
        :meth:`recv_line`), never parse it as a response.
        """
        data = encode(payload)
        try:
            self.sock.sendall(data[: max(1, len(data) // 2)])
        except OSError:
            pass
        self.close()

    def abort(self) -> None:
        """Hard-close with RST (SO_LINGER 0) — the peer sees a
        connection reset instead of a clean EOF. Chaos-testing only."""
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def recv_line(self) -> bytes | None:
        """The next complete line (without the newline), or None on EOF.

        Raises ``socket.timeout`` if the socket has a timeout and the
        peer goes quiet (the daemon's idle-session reaper relies on it).
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"peer sent more than {MAX_LINE_BYTES} bytes without "
                    f"a newline"
                )
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    # torn tail: drop it, same policy as the journals
                    self._buffer.clear()
                return None
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
