"""Daemon-lifetime service metrics: the data behind the `stats` op.

The daemon periodically folds the process-global telemetry registry
into ``.orpheus/telemetry.json`` and *resets* it, which makes the
registry a rolling delta — fine for the fold file, useless for a
Prometheus scraper that needs monotonic counters or for ``orpheus top``
which wants daemon-lifetime aggregates. :class:`ServiceMetrics` is the
complement: it accumulates every finished :class:`RequestTrace` for the
daemon's whole lifetime, independent of the telemetry enabled flag and
its fold/reset cycle.

It keeps, under one lock:

* global request/error/BUSY totals;
* per-op latency and per-phase (admission/queue-wait/execute/serialize)
  histograms with p50/p95/p99;
* per-session and per-dataset (CVD) rollups;
* a bounded ring of recent span trees, so ``stats {"recent": n}`` can
  hand back whole traces without a log file round-trip.

Rendering reuses the telemetry layer's exposition-format helpers so the
``/metrics`` endpoint and ``orpheus stats --prometheus`` agree on
escaping rules; service families are prefixed ``orpheusd_`` to keep
them distinct from the folded ``repro_*`` telemetry families.
"""

from __future__ import annotations

import re
import threading
from collections import deque

from repro import telemetry
from repro.telemetry.registry import Histogram
from repro.telemetry.snapshot import _prom_label_value, _prom_value

from repro.service.tracing import PHASES, RequestTrace

#: Span trees kept in the in-memory recent ring.
RECENT_CAP = 64


def _hist_summary(histogram: Histogram) -> dict:
    """Compact JSON summary (no reservoir) for stats payloads."""
    if histogram.count == 0:
        return {"count": 0}
    return {
        "count": histogram.count,
        "total_s": round(histogram.total, 6),
        "min_s": round(histogram.min, 6),
        "max_s": round(histogram.max, 6),
        "p50_s": _round(histogram.percentile(0.50)),
        "p95_s": _round(histogram.percentile(0.95)),
        "p99_s": _round(histogram.percentile(0.99)),
    }


def _round(value: float | None) -> float | None:
    return None if value is None else round(value, 6)


class _OpStats:
    """Per-operation rollup: outcome counts + phase distributions."""

    __slots__ = (
        "count", "errors", "busy", "deadline", "degraded",
        "latency", "phases",
    )

    def __init__(self, op: str) -> None:
        self.count = 0
        self.errors = 0
        self.busy = 0
        self.deadline = 0
        self.degraded = 0
        self.latency = Histogram(op)
        self.phases = {name: Histogram(f"{op}.{name}") for name in PHASES}

    def record(self, rtrace: RequestTrace) -> None:
        self.count += 1
        if rtrace.status == "busy":
            self.busy += 1
        elif rtrace.status == "deadline_exceeded":
            self.deadline += 1
        elif rtrace.status == "degraded":
            self.degraded += 1
        elif rtrace.status not in ("ok", "shutdown"):
            self.errors += 1
        self.latency.add(rtrace.total_s)
        for name, value in rtrace.phase_seconds().items():
            self.phases[name].add(value)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "busy": self.busy,
            "deadline_exceeded": self.deadline,
            "degraded": self.degraded,
            "latency": _hist_summary(self.latency),
            "phases": {
                name: _hist_summary(h)
                for name, h in self.phases.items()
                if h.count
            },
        }


class ServiceMetrics:
    """Thread-safe daemon-lifetime aggregation of request traces."""

    def __init__(self, recent_cap: int = RECENT_CAP) -> None:
        self._lock = threading.Lock()
        self.started_ts = telemetry.now()
        self.requests_total = 0
        self.errors_total = 0
        self.busy_total = 0
        #: Deadline sheds and degraded-mode refusals are *load policy*,
        #: not failures — they get their own counters so an error-rate
        #: alert never fires because clients ran polite budgets.
        self.deadline_total = 0
        self.degraded_total = 0
        self.slow_total = 0
        #: Storage-access totals (from the per-request cost-accountant
        #: stamps) — the Prometheus sidecar's
        #: ``orpheusd_scanned_bytes_total`` / ``_partition_touch_total``.
        self.rows_scanned_total = 0
        self.bytes_scanned_total = 0
        self.rows_written_total = 0
        self.partition_touches_total = 0
        self.by_op: dict[str, _OpStats] = {}
        self.by_session: dict[int, dict] = {}
        self.by_dataset: dict[str, dict] = {}
        self.recent: deque = deque(maxlen=max(1, recent_cap))

    def record(self, rtrace: RequestTrace, slow: bool = False) -> None:
        """Fold one finished request into every rollup."""
        tree = rtrace.to_span_tree()
        with self._lock:
            self.requests_total += 1
            if rtrace.status == "busy":
                self.busy_total += 1
            elif rtrace.status == "deadline_exceeded":
                self.deadline_total += 1
            elif rtrace.status == "degraded":
                self.degraded_total += 1
            elif rtrace.status not in ("ok", "shutdown"):
                self.errors_total += 1
            if slow:
                self.slow_total += 1
            op_stats = self.by_op.get(rtrace.op)
            if op_stats is None:
                op_stats = self.by_op[rtrace.op] = _OpStats(rtrace.op)
            op_stats.record(rtrace)
            if rtrace.session_id is not None:
                self._roll(
                    self.by_session, rtrace.session_id, rtrace,
                    user=rtrace.user,
                )
            if rtrace.dataset:
                self._roll(self.by_dataset, rtrace.dataset, rtrace)
            self.recent.append(tree)

    def record_io(
        self,
        dataset: str | None,
        rows_scanned: int = 0,
        bytes_scanned: int = 0,
        rows_written: int = 0,
        partition_touches: int = 0,
        heat: float | None = None,
        read_amplification: float | None = None,
    ) -> None:
        """Fold one request's storage-access footprint: daemon-lifetime
        totals plus the per-dataset heat/amplification rollup the
        ``stats`` op and ``orpheus top`` render."""
        with self._lock:
            self.rows_scanned_total += rows_scanned
            self.bytes_scanned_total += bytes_scanned
            self.rows_written_total += rows_written
            self.partition_touches_total += partition_touches
            if not dataset:
                return
            entry = self.by_dataset.get(dataset)
            if entry is None:
                entry = self.by_dataset[dataset] = {
                    "count": 0, "errors": 0, "busy": 0, "total_s": 0.0,
                }
            entry["rows_scanned"] = (
                entry.get("rows_scanned", 0) + rows_scanned
            )
            entry["bytes_scanned"] = (
                entry.get("bytes_scanned", 0) + bytes_scanned
            )
            entry["rows_written"] = (
                entry.get("rows_written", 0) + rows_written
            )
            entry["partition_touches"] = (
                entry.get("partition_touches", 0) + partition_touches
            )
            if heat is not None:
                entry["heat"] = round(heat, 4)
            if read_amplification is not None:
                entry["read_amplification"] = round(read_amplification, 4)

    def _roll(self, table: dict, key, rtrace: RequestTrace, **extra) -> None:
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {
                "count": 0, "errors": 0, "busy": 0, "total_s": 0.0,
            }
            entry.update(extra)
        entry["count"] += 1
        if rtrace.status == "busy":
            entry["busy"] += 1
        elif rtrace.status not in ("ok", "shutdown"):
            entry["errors"] += 1
        entry["total_s"] = round(entry["total_s"] + rtrace.total_s, 6)
        entry["last_op"] = rtrace.op
        entry["last_ts"] = rtrace.started_ts

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def to_dict(self, recent: int = 0) -> dict:
        """The ``stats`` op payload (request up to ``recent`` traces)."""
        with self._lock:
            payload = {
                "started_ts": self.started_ts,
                "uptime_s": round(
                    max(0.0, telemetry.now() - self.started_ts), 3
                ),
                "requests": {
                    "total": self.requests_total,
                    "errors": self.errors_total,
                    "busy": self.busy_total,
                    "deadline_exceeded": self.deadline_total,
                    "degraded": self.degraded_total,
                    "slow": self.slow_total,
                },
                "by_op": {
                    op: stats.to_dict()
                    for op, stats in sorted(self.by_op.items())
                },
                "by_session": {
                    str(sid): dict(entry)
                    for sid, entry in sorted(self.by_session.items())
                },
                "by_dataset": {
                    name: dict(entry)
                    for name, entry in sorted(self.by_dataset.items())
                },
            }
            if recent > 0:
                payload["recent"] = list(self.recent)[-recent:]
            return payload

    def render_prometheus(
        self,
        extra_counters: dict[str, float] | None = None,
        extra_gauges: dict[str, float] | None = None,
    ) -> str:
        """Exposition-format text for the ``/metrics`` endpoint.

        ``extra_counters``/``extra_gauges`` let the daemon fold in
        cache and scheduler state (monotonic for its lifetime) without
        this module knowing their shape.
        """
        with self._lock:
            lines: list[str] = []
            _counter(lines, "orpheusd_requests_total", self.requests_total)
            _counter(lines, "orpheusd_errors_total", self.errors_total)
            _counter(lines, "orpheusd_busy_total", self.busy_total)
            _counter(
                lines,
                "orpheusd_deadline_exceeded_responses_total",
                self.deadline_total,
            )
            _counter(
                lines,
                "orpheusd_degraded_responses_total",
                self.degraded_total,
            )
            _counter(
                lines, "orpheusd_slow_requests_total", self.slow_total
            )
            for name, value in sorted((extra_counters or {}).items()):
                _counter(lines, _family(name), value)
            for name, value in sorted((extra_gauges or {}).items()):
                _gauge(lines, _family(name), value)

            ops = sorted(self.by_op.items())
            if ops:
                lines.append("# TYPE orpheusd_op_requests_total counter")
                for op, stats in ops:
                    lines.append(
                        f'orpheusd_op_requests_total{{op="'
                        f'{_prom_label_value(op)}"}} {stats.count}'
                    )
                lines.append("# TYPE orpheusd_op_errors_total counter")
                for op, stats in ops:
                    lines.append(
                        f'orpheusd_op_errors_total{{op="'
                        f'{_prom_label_value(op)}"}} {stats.errors}'
                    )
                lines.append("# TYPE orpheusd_request_seconds summary")
                for op, stats in ops:
                    lines.extend(
                        _labeled_summary(
                            "orpheusd_request_seconds",
                            {"op": op},
                            stats.latency,
                        )
                    )
                lines.append("# TYPE orpheusd_phase_seconds summary")
                for op, stats in ops:
                    for phase in PHASES:
                        histogram = stats.phases[phase]
                        if histogram.count:
                            lines.extend(
                                _labeled_summary(
                                    "orpheusd_phase_seconds",
                                    {"op": op, "phase": phase},
                                    histogram,
                                )
                            )
            return "\n".join(lines) + "\n"


def _family(name: str) -> str:
    """A legal ``orpheusd_*`` family name from a dotted stats key."""
    return "orpheusd_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _counter(lines: list[str], family: str, value: float) -> None:
    lines.append(f"# TYPE {family} counter")
    lines.append(f"{family} {_prom_value(float(value))}")


def _gauge(lines: list[str], family: str, value: float) -> None:
    lines.append(f"# TYPE {family} gauge")
    lines.append(f"{family} {_prom_value(float(value))}")


def _labeled_summary(
    family: str, labels: dict[str, str], histogram: Histogram
) -> list[str]:
    """Summary sample lines for one labeled series (no TYPE header —
    the caller declares the family type once)."""
    base = ",".join(
        f'{name}="{_prom_label_value(value)}"'
        for name, value in labels.items()
    )
    lines = []
    for quantile, fraction in (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)):
        value = histogram.percentile(fraction)
        if value is not None:
            lines.append(
                f'{family}{{{base},quantile="{quantile}"}} {value}'
            )
    lines.append(f"{family}_sum{{{base}}} {histogram.total}")
    lines.append(f"{family}_count{{{base}}} {histogram.count}")
    return lines
