"""Open-loop synthetic load generator for orpheusd.

ROADMAP items 2 and 3 ask what the daemon does at "10x the 8-client
workload" and beyond — that needs *offered* load, not closed-loop
clients that politely wait for each response before sending the next.
This module simulates an open-loop population: every simulated client
fires requests on a fixed schedule (``client_rps``) whether or not the
previous one has completed, so when the daemon slows down the queue
pressure is real and BUSY shedding becomes measurable instead of being
masked by client backoff.

Traffic shape follows the DataHub hosted-platform model: dataset
popularity is Zipf-skewed (``zipf_s``), so a few hot datasets absorb
most reads — exactly the shape the materialized-version cache exists
for — while the read/write mix (``read_ratio``) sends the remainder
through the serialized writer queue. The client count ramps through
``ramp`` steps (e.g. 8 → 64), and every step reports offered vs
completed requests, goodput, shed rate, and wall-latency percentiles,
giving ``BENCH_<sha>.json`` a service-scale trajectory per commit.

Reads are inline checkouts of a Zipf-picked dataset; writes are
commits of ``write_file`` into ``write_dataset`` (always branching
from version 1, so concurrent writers never conflict). When no write
file is configured the mix degrades to read-only and the report says
so.
"""

from __future__ import annotations

import random
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field

LOADGEN_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Zipf popularity
# ----------------------------------------------------------------------
def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf popularity for ranks 1..n: weight(k) ∝ 1/k^s."""
    if n <= 0:
        return []
    raw = [1.0 / (k ** s) for k in range(1, n + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def cumulative(weights: list[float]) -> list[float]:
    """Prefix sums for bisect-based sampling; last entry forced to 1."""
    acc, out = 0.0, []
    for weight in weights:
        acc += weight
        out.append(acc)
    if out:
        out[-1] = 1.0
    return out


def pick(rng: random.Random, cumulative_weights: list[float]) -> int:
    """Sample a rank index (0-based) from the cumulative distribution."""
    return bisect_left(cumulative_weights, rng.random())


# ----------------------------------------------------------------------
# Config and accounting
# ----------------------------------------------------------------------
@dataclass
class LoadConfig:
    """One load run: which daemon, what traffic, how hard."""

    datasets: list[str]
    versions: int = 1  # checkout targets: version 1..versions, uniform
    #: Optional per-dataset override of ``versions`` (datasets with a
    #: shorter history than the hot one must not 404 their checkouts).
    versions_by_dataset: dict | None = None
    zipf_s: float = 1.1
    read_ratio: float = 0.95
    ramp: tuple = (8, 16, 32, 64)
    step_seconds: float = 2.0
    client_rps: float = 20.0  # per-client open-loop arrival rate
    write_dataset: str | None = None
    write_file: str | None = None
    root: str | None = None
    socket_path: str | None = None
    user: str = ""
    timeout: float = 30.0
    #: Per-request latency budget propagated in the trace context; the
    #: daemon sheds expired requests with ``deadline_exceeded``, which
    #: the step accounting reports separately from busy sheds.
    deadline_ms: float | None = None
    seed: int = 1234


@dataclass
class Outcome:
    """One issued request, as the accounting sees it."""

    op: str
    status: str  # "ok" | "busy" | "deadline_exceeded" | "error"
    wall_s: float
    dataset: str | None = None
    cached: bool | None = None


@dataclass
class StepStats:
    """Mutable per-step accumulator; ``summary()`` is the report row."""

    clients: int
    planned: int  # offered load: what the open loop scheduled
    outcomes: list[Outcome] = field(default_factory=list)
    duration_s: float = 0.0

    def summary(self) -> dict:
        ok = [o for o in self.outcomes if o.status == "ok"]
        busy = sum(1 for o in self.outcomes if o.status == "busy")
        # Deadline sheds are counted apart from busy: busy means the
        # queue was full, deadline_exceeded means the queue was slow —
        # different capacity stories, different remediations.
        deadline = sum(
            1 for o in self.outcomes if o.status == "deadline_exceeded"
        )
        errors = sum(1 for o in self.outcomes if o.status == "error")
        issued = len(self.outcomes)
        latencies = sorted(o.wall_s for o in ok)
        hits = sum(1 for o in ok if o.cached)
        lookups = sum(1 for o in ok if o.cached is not None)
        return {
            "clients": self.clients,
            "offered": self.planned,
            "issued": issued,
            "ok": len(ok),
            "busy": busy,
            "deadline_exceeded": deadline,
            "errors": errors,
            # Shed rate is busy-over-issued: the fraction of requests
            # that reached the daemon and were turned away.
            "shed_rate": round(busy / issued, 4) if issued else 0.0,
            "duration_s": round(self.duration_s, 4),
            "goodput_rps": (
                round(len(ok) / self.duration_s, 2)
                if self.duration_s > 0
                else 0.0
            ),
            "p50_s": _pct(latencies, 0.50),
            "p95_s": _pct(latencies, 0.95),
            "p99_s": _pct(latencies, 0.99),
            "cache_hit_rate": (
                round(hits / lookups, 4) if lookups else None
            ),
        }


def _pct(sorted_values: list[float], fraction: float) -> float | None:
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return round(sorted_values[index], 6)


# ----------------------------------------------------------------------
# The open loop
# ----------------------------------------------------------------------
class _LoadClient(threading.Thread):
    """One simulated client: its own connection, its own schedule."""

    def __init__(self, config: LoadConfig, rng: random.Random,
                 planned: int, start_at: float) -> None:
        super().__init__(daemon=True)
        self.config = config
        self.rng = rng
        self.planned = planned
        self.start_at = start_at
        self.outcomes: list[Outcome] = []
        self._cumulative = cumulative(
            zipf_weights(len(config.datasets), config.zipf_s)
        )

    def run(self) -> None:
        from repro.service.client import (
            ServiceBusyError,
            ServiceClient,
            ServiceDeadlineError,
            ServiceError,
            ServiceUnavailableError,
        )

        config = self.config
        try:
            client = ServiceClient(
                socket_path=config.socket_path,
                root=config.root,
                user=config.user,
                timeout=config.timeout,
                deadline_ms=config.deadline_ms,
            ).connect()
        except Exception:
            return  # daemon gone: the step's issued count shows it
        interval = 1.0 / max(1e-6, config.client_rps)
        try:
            for i in range(self.planned):
                # Open loop: the schedule never stretches. If the
                # previous request ran long we are already late and
                # fire immediately — that lateness IS the load.
                delay = self.start_at + i * interval - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                writes_on = (
                    config.write_dataset and config.write_file
                    and config.read_ratio < 1.0
                )
                is_read = (
                    not writes_on
                    or self.rng.random() < config.read_ratio
                )
                status, cached, dataset = "ok", None, None
                wall0 = time.monotonic()
                try:
                    if is_read:
                        dataset = config.datasets[
                            pick(self.rng, self._cumulative)
                        ]
                        cap = (config.versions_by_dataset or {}).get(
                            dataset, config.versions
                        )
                        version = self.rng.randint(1, max(1, cap))
                        data = client.checkout(
                            dataset, [version], inline=True
                        )
                        if isinstance(data.get("cached"), bool):
                            cached = data["cached"]
                    else:
                        dataset = config.write_dataset
                        client.request(
                            "commit",
                            dataset=config.write_dataset,
                            file=config.write_file,
                            message="loadgen",
                            parents=[1],
                        )
                except ServiceBusyError:
                    status = "busy"
                except ServiceDeadlineError:
                    # Must precede ServiceError: it is a subclass.
                    status = "deadline_exceeded"
                except ServiceUnavailableError:
                    return
                except ServiceError:
                    status = "error"
                self.outcomes.append(
                    Outcome(
                        op="checkout" if is_read else "commit",
                        status=status,
                        wall_s=time.monotonic() - wall0,
                        dataset=dataset,
                        cached=cached,
                    )
                )
        finally:
            try:
                client.close()
            except Exception:
                pass


def run_step(config: LoadConfig, clients: int, step_index: int) -> dict:
    """One ramp step: ``clients`` open-loop threads for
    ``step_seconds``, joined, summarized."""
    planned_each = max(1, int(config.step_seconds * config.client_rps))
    start_at = time.monotonic() + 0.05
    threads = [
        _LoadClient(
            config,
            random.Random(config.seed + step_index * 10_000 + i),
            planned_each,
            start_at,
        )
        for i in range(clients)
    ]
    wall0 = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = StepStats(clients=clients, planned=planned_each * clients)
    stats.duration_s = time.monotonic() - wall0
    for thread in threads:
        stats.outcomes.extend(thread.outcomes)
    return stats.summary()


def run_load(config: LoadConfig) -> dict:
    """Run the full ramp and return the service-scale report."""
    steps = [
        run_step(config, clients, index)
        for index, clients in enumerate(config.ramp)
    ]
    report = {
        "kind": "orpheus-loadgen",
        "schema_version": LOADGEN_SCHEMA_VERSION,
        "zipf_s": config.zipf_s,
        "read_ratio": config.read_ratio,
        "client_rps": config.client_rps,
        "datasets": list(config.datasets),
        "writes_enabled": bool(
            config.write_dataset and config.write_file
            and config.read_ratio < 1.0
        ),
        "max_clients": max(config.ramp) if config.ramp else 0,
        "steps": steps,
    }
    peaks = [s["p99_s"] for s in steps if s["p99_s"] is not None]
    report["peak_p99_s"] = max(peaks) if peaks else None
    report["peak_shed_rate"] = (
        max(s["shed_rate"] for s in steps) if steps else 0.0
    )
    report["deadline_ms"] = config.deadline_ms
    report["total_deadline_exceeded"] = sum(
        s["deadline_exceeded"] for s in steps
    )
    return report
