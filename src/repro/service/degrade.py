"""Graceful degradation: keep serving reads when writes cannot land.

Two containment mechanisms for orpheusd, both designed around the same
principle — a partial failure should shrink the service surface, not
take the daemon down:

**Degraded read-only mode** (:class:`DegradeController`). A mutation
is only acknowledged after a durable state save; when saves start
failing (full disk, yanked volume, permission flip), retrying writes
forever would burn the writer thread and lie to clients. After
``threshold`` *consecutive* save failures the daemon flips to degraded
mode: every write is refused up front with the ``degraded`` wire
status carrying the underlying cause, while reads and cache hits keep
flowing — the repository is still consistent in memory and on disk
(the failed save rolled back to the last durable state). The
housekeeping loop probes the save path while degraded; the first
success flips the daemon back automatically. Mode + cause are
surfaced in ``stats``, ``serve --status``, and ``/healthz``.

**Worker-crash quarantine** (:class:`Quarantine`). A request that
raises an *internal* error (not a user error like a bad version id)
answers that one client with a typed error and never kills the daemon
— but a poisonous request that keeps crashing its worker should not
get unlimited swings. Crashes are counted per normalized-params
digest (the flight recorder's ``args_digest``); after ``strikes``
crashes the digest is quarantined and further identical requests are
refused immediately with a hint naming the digest, until an operator
clears it with ``orpheus remote -- flush-quarantine``.
"""

from __future__ import annotations

import threading

from repro import telemetry

#: Consecutive failed state saves before the daemon turns read-only.
DEFAULT_SAVE_FAILURE_THRESHOLD = 3

#: Internal-error strikes per params digest before refusal.
DEFAULT_QUARANTINE_STRIKES = 2

#: At most this many digests tracked; oldest evicted past the bound so
#: a high-cardinality error storm cannot grow memory without limit.
MAX_TRACKED_DIGESTS = 1024


class DegradedError(RuntimeError):
    """A write refused because the daemon is in degraded read-only mode."""

    def __init__(self, cause: str) -> None:
        super().__init__(
            f"daemon is in degraded read-only mode (state saves are "
            f"failing: {cause}); reads still work, retry writes after "
            f"the storage fault clears"
        )
        self.cause = cause


class QuarantinedRequestError(RuntimeError):
    """A request refused because identical requests crashed workers."""

    def __init__(self, digest: str, op: str, crashes: int) -> None:
        super().__init__(
            f"request quarantined: {op} with params digest {digest} "
            f"crashed its worker {crashes} time(s); fix the request or "
            f"clear the quarantine with `orpheus remote -- "
            f"flush-quarantine`"
        )
        self.digest = digest


class DegradeController:
    """Tracks state-save health and owns the degraded-mode flip.

    Thread-safe: the writer thread records failures/successes, the
    housekeeping thread probes, connection threads check. The flip is
    deliberately based on *consecutive* failures — one transient EIO
    among successes never degrades the daemon.
    """

    def __init__(
        self, threshold: int = DEFAULT_SAVE_FAILURE_THRESHOLD
    ) -> None:
        self.threshold = max(1, threshold)
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._degraded = False
        self._cause: str | None = None
        self._entered_ts: float | None = None
        self.save_failures_total = 0
        self.entries_total = 0
        self.exits_total = 0

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def cause(self) -> str | None:
        return self._cause

    def record_save_failure(self, error: BaseException) -> bool:
        """One failed state save; returns True when this failure
        flipped the daemon into degraded mode."""
        with self._lock:
            self.save_failures_total += 1
            self._consecutive_failures += 1
            telemetry.count("service.degrade.save_failures")
            if self._degraded or self._consecutive_failures < self.threshold:
                return False
            self._degraded = True
            self._cause = f"{type(error).__name__}: {error}"
            self._entered_ts = telemetry.now()
            self.entries_total += 1
            telemetry.count("service.degrade.entered")
            return True

    def record_save_success(self) -> bool:
        """One durable save; returns True when it exited degraded mode."""
        with self._lock:
            self._consecutive_failures = 0
            if not self._degraded:
                return False
            self._degraded = False
            self._cause = None
            self._entered_ts = None
            self.exits_total += 1
            telemetry.count("service.degrade.exited")
            return True

    def check_writable(self) -> None:
        """Raise :class:`DegradedError` when writes must be refused."""
        with self._lock:
            if self._degraded:
                raise DegradedError(self._cause or "unknown")

    def status(self) -> dict:
        with self._lock:
            return {
                "degraded": self._degraded,
                "cause": self._cause,
                "entered_ts": self._entered_ts,
                "threshold": self.threshold,
                "consecutive_save_failures": self._consecutive_failures,
                "save_failures_total": self.save_failures_total,
                "entries_total": self.entries_total,
                "exits_total": self.exits_total,
            }


class Quarantine:
    """Per-params-digest crash accounting with bounded memory."""

    def __init__(self, strikes: int = DEFAULT_QUARANTINE_STRIKES) -> None:
        self.strikes = max(1, strikes)
        self._lock = threading.Lock()
        #: digest -> {"op", "crashes", "last_error"}; insertion order
        #: doubles as the eviction order.
        self._crashes: dict[str, dict] = {}
        self.refused_total = 0

    def note_crash(self, digest: str, op: str, error: BaseException) -> int:
        """One internal error for this digest; returns the new count."""
        with self._lock:
            entry = self._crashes.get(digest)
            if entry is None:
                while len(self._crashes) >= MAX_TRACKED_DIGESTS:
                    self._crashes.pop(next(iter(self._crashes)))
                entry = self._crashes[digest] = {"op": op, "crashes": 0}
            entry["crashes"] += 1
            entry["last_error"] = f"{type(error).__name__}: {error}"
            if entry["crashes"] == self.strikes:
                telemetry.count("service.quarantine.added")
            return entry["crashes"]

    def check(self, digest: str, op: str) -> None:
        """Raise :class:`QuarantinedRequestError` for a poisoned digest."""
        with self._lock:
            entry = self._crashes.get(digest)
            if entry is None or entry["crashes"] < self.strikes:
                return
            self.refused_total += 1
            crashes = entry["crashes"]
        telemetry.count("service.quarantine.refused")
        raise QuarantinedRequestError(digest, op, crashes)

    def flush(self) -> int:
        """Clear all tracked digests; returns how many were quarantined."""
        with self._lock:
            quarantined = sum(
                1
                for entry in self._crashes.values()
                if entry["crashes"] >= self.strikes
            )
            self._crashes.clear()
            return quarantined

    def status(self) -> dict:
        with self._lock:
            quarantined = {
                digest: dict(entry)
                for digest, entry in self._crashes.items()
                if entry["crashes"] >= self.strikes
            }
            return {
                "strikes": self.strikes,
                "tracked": len(self._crashes),
                "quarantined": len(quarantined),
                "refused_total": self.refused_total,
                "entries": quarantined,
            }
