"""Storage-access heat accounting (the storage access observatory).

The paper's partitioning story (Chapter 5) is an argument about *access
patterns*: LyreSplit keeps the average checkout within a provable bound
of optimal **for the workload the version graph implies**. This module
makes the actual workload observable at the same granularity the
partitioner reasons about — which datasets, versions, and partitions a
deployment really touches, and how many rows/bytes each touch scanned —
so the upcoming paged column store (ROADMAP item 1) can place its
buffer pool on evidence instead of intuition.

The unit of accounting is an :class:`AccessEvent` — one finished
command (CLI invocation or daemon request) against one dataset. Every
live execution path reduces to an event through the same helpers
(:func:`resolve_access`, :func:`partition_of`), and the offline miner
(:func:`mine_events`) rebuilds the *same* events from the flight
recorder and the ops journal, so a heat model mined after the fact
matches the one accumulated live (given full flight sampling).

Heat itself is an exponentially-decayed touch count::

    heat(t) = heat(t_last) * 0.5 ** ((t - t_last) / half_life) + 1

per touch, with the half-life tunable via ``ORPHEUS_HEAT_HALFLIFE_S``.
All timestamps flow through :func:`repro.telemetry.now`, so decay is
deterministic under the injectable clock. Raw (undecayed) touch and
scan totals ride alongside for amplification math
(:mod:`repro.observe.amplification`).

The model persists as ``.orpheus/telemetry/heat.json`` — a *directory*
``telemetry/`` next to the flat ``telemetry.json`` accumulator, leaving
room for future per-surface observability files. Writers always hold
the repository lock (the CLI folds under its invocation lock; the
daemon owns the exclusive lock for its whole life), so load-fold-save
is race-free.

:func:`advise` is the workload-driven partition advisor: observed heat
joined with the existing page cost model (``current_checkout_cost`` /
``best_partitioning`` on partitioned stores, scanned-vs-requested rows
everywhere else) into ranked repartition/migration recommendations
with estimated checkout-cost deltas.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry

HEAT_SCHEMA_VERSION = 1

#: ``.orpheus/telemetry/`` — the observatory's directory (the flat
#: ``.orpheus/telemetry.json`` accumulator predates it and stays put).
TELEMETRY_DIR = "telemetry"
HEAT_FILE = "heat.json"

#: EWMA half-life in seconds; one hour by default so "hot" means
#: "touched this session", not "touched ever".
DEFAULT_HALF_LIFE_S = 3600.0
HALF_LIFE_ENV = "ORPHEUS_HEAT_HALFLIFE_S"

#: Decayed heat below this counts as cold in the cold-fraction and
#: cold-table renderings.
COLD_HEAT = 0.05

#: Read-amplification budget (scanned rows per requested row) the
#: advisor and the ``io_amplification`` doctor probe compare against.
AMP_BUDGET = 10.0
AMP_BUDGET_ENV = "ORPHEUS_AMP_BUDGET"

#: Partition-heat skew (max/mean) budget for the ``heat_skew`` probe.
HEAT_SKEW_FACTOR = 4.0
HEAT_SKEW_ENV = "ORPHEUS_HEAT_SKEW_FACTOR"

#: Commands whose journal/flight records describe dataset access worth
#: folding into the heat model (reads and writes both count as touches).
HEAT_COMMANDS = ("init", "checkout", "commit", "diff", "run", "optimize")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def amp_budget() -> float:
    """The configured read-amplification budget (``ORPHEUS_AMP_BUDGET``)."""
    return max(1.0, _env_float(AMP_BUDGET_ENV, AMP_BUDGET))


def heat_half_life() -> float:
    return max(1.0, _env_float(HALF_LIFE_ENV, DEFAULT_HALF_LIFE_S))


def heat_path(root: str | None = None) -> Path:
    return Path(root or ".") / ".orpheus" / TELEMETRY_DIR / HEAT_FILE


@dataclass
class AccessEvent:
    """One finished command's storage-access footprint.

    ``rows_requested`` is the denominator of read amplification: the
    record count of the requested version(s) — what a perfect storage
    layout would scan. ``rows_scanned``/``bytes_scanned`` are what the
    cost accountant says was actually touched.
    """

    ts: float
    command: str
    dataset: str
    versions: tuple[int, ...] = ()
    model: str = ""
    partitions: tuple[int, ...] = ()
    rows_requested: int = 0
    rows_returned: int = 0
    rows_scanned: int = 0
    bytes_scanned: int = 0
    rows_written: int = 0
    bytes_written: int = 0


def partition_of(cvd, vid: int) -> int:
    """The partition a version's checkout touches.

    Partitioned stores know exactly (``_partition_of``); every other
    data model is a single physical unit, reported as partition 0 — so
    partition-touch accounting is total over all models, and a CVD on
    a monolithic model shows up as one (necessarily 100%-hot)
    partition.
    """
    mapping = getattr(cvd.model, "_partition_of", None)
    if mapping is not None:
        index = mapping.get(vid)
        if index is not None:
            return int(index)
    return 0


def resolve_access(orpheus, dataset: str, versions) -> dict:
    """Model name, requested-rows denominator, and partitions touched
    for one access — shared by the CLI fold, the daemon fold, and the
    offline miner so all three produce identical events."""
    info = {"model": "", "rows_requested": 0, "partitions": ()}
    if orpheus is None or not dataset:
        return info
    from repro.core.errors import CVDError

    try:
        cvd = orpheus.cvd(dataset)
    except (KeyError, ValueError, CVDError):
        return info  # dropped since the event was recorded
    info["model"] = cvd.model.model_name
    rows = 0
    touched: list[int] = []
    for vid in versions or ():
        try:
            rows += cvd.versions.get(int(vid)).record_count
        except (KeyError, ValueError, TypeError):
            continue
        index = partition_of(cvd, int(vid))
        if index not in touched:
            touched.append(index)
    if not touched and (versions or ()) == ():
        # Dataset-level touch (drop/optimize/run): charge partition 0
        # so partition-touch totals still count the access.
        touched = [0]
    info["rows_requested"] = rows
    info["partitions"] = tuple(touched)
    return info


def build_event(
    orpheus,
    ts: float,
    command: str,
    dataset: str,
    versions=(),
    rows_returned: int = 0,
    rows_scanned: int = 0,
    bytes_scanned: int = 0,
    rows_written: int = 0,
    bytes_written: int = 0,
) -> AccessEvent:
    """One :class:`AccessEvent` with model/partition/denominator fields
    resolved against live state."""
    vids = tuple(int(v) for v in versions or ())
    info = resolve_access(orpheus, dataset, vids)
    return AccessEvent(
        ts=float(ts),
        command=command,
        dataset=dataset,
        versions=vids,
        model=info["model"],
        partitions=info["partitions"],
        rows_requested=info["rows_requested"],
        rows_returned=int(rows_returned or 0),
        rows_scanned=int(rows_scanned or 0),
        bytes_scanned=int(bytes_scanned or 0),
        rows_written=int(rows_written or 0),
        bytes_written=int(bytes_written or 0),
    )


def _new_entry() -> dict:
    return {
        "touches": 0,
        "heat": 0.0,
        "last_ts": 0.0,
        "rows_scanned": 0,
        "bytes_scanned": 0,
    }


def _new_sample() -> dict:
    return {
        "events": 0,
        "rows_requested": 0,
        "rows_returned": 0,
        "rows_scanned": 0,
        "bytes_scanned": 0,
        "rows_written": 0,
        "bytes_written": 0,
    }


class HeatAccountant:
    """The decayed heat model plus raw amplification sums.

    Three heat tables — ``datasets`` (key: dataset name), ``versions``
    (key: ``dataset:vid``), ``partitions`` (key: ``dataset:pN``) — and
    one amplification table ``samples`` (key: ``model|command``).
    Thread-safe: the daemon records from worker threads and persists
    from the housekeeping thread.
    """

    def __init__(self, half_life_s: float | None = None) -> None:
        self.half_life_s = (
            heat_half_life() if half_life_s is None else max(1.0, half_life_s)
        )
        self.datasets: dict[str, dict] = {}
        self.versions: dict[str, dict] = {}
        self.partitions: dict[str, dict] = {}
        self.samples: dict[str, dict] = {}
        self.events_total = 0
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------
    def _bump(
        self, table: dict, key: str, ts: float, rows: int, nbytes: int
    ) -> None:
        entry = table.get(key)
        if entry is None:
            entry = table[key] = _new_entry()
        age = max(0.0, ts - entry["last_ts"]) if entry["touches"] else 0.0
        entry["heat"] = entry["heat"] * 0.5 ** (age / self.half_life_s) + 1.0
        entry["last_ts"] = max(entry["last_ts"], ts)
        entry["touches"] += 1
        entry["rows_scanned"] += rows
        entry["bytes_scanned"] += nbytes

    def record(self, event: AccessEvent) -> None:
        """Fold one access event into every table."""
        if not event.dataset:
            return
        with self._lock:
            self.events_total += 1
            self._bump(
                self.datasets,
                event.dataset,
                event.ts,
                event.rows_scanned,
                event.bytes_scanned,
            )
            for vid in event.versions:
                self._bump(
                    self.versions,
                    f"{event.dataset}:{vid}",
                    event.ts,
                    event.rows_scanned,
                    event.bytes_scanned,
                )
            for index in event.partitions:
                self._bump(
                    self.partitions,
                    f"{event.dataset}:p{index}",
                    event.ts,
                    event.rows_scanned,
                    event.bytes_scanned,
                )
            key = f"{event.model or '(unknown)'}|{event.command}"
            sample = self.samples.get(key)
            if sample is None:
                sample = self.samples[key] = _new_sample()
            sample["events"] += 1
            sample["rows_requested"] += event.rows_requested
            sample["rows_returned"] += event.rows_returned
            sample["rows_scanned"] += event.rows_scanned
            sample["bytes_scanned"] += event.bytes_scanned
            sample["rows_written"] += event.rows_written
            sample["bytes_written"] += event.bytes_written

    # -- derived ---------------------------------------------------------
    def current_heat(self, entry: dict, now: float | None = None) -> float:
        """An entry's heat decayed to ``now`` (default: the clock)."""
        at = telemetry.now() if now is None else now
        age = max(0.0, at - entry["last_ts"])
        return entry["heat"] * 0.5 ** (age / self.half_life_s)

    def ranked(
        self, table: dict, now: float | None = None, reverse: bool = True
    ) -> list[tuple[str, dict, float]]:
        """(key, entry, decayed heat) sorted hottest-first (or coldest)."""
        at = telemetry.now() if now is None else now
        rows = [
            (key, entry, self.current_heat(entry, at))
            for key, entry in table.items()
        ]
        rows.sort(key=lambda item: (-item[2] if reverse else item[2], item[0]))
        return rows

    def cold_fraction(
        self, orpheus=None, now: float | None = None
    ) -> float | None:
        """Fraction of known versions whose heat has decayed below
        :data:`COLD_HEAT` (never-touched versions count as cold when
        live state is available to enumerate them)."""
        at = telemetry.now() if now is None else now
        total = 0
        cold = 0
        if orpheus is not None:
            for name in orpheus.ls():
                cvd = orpheus.cvd(name)
                for vid in cvd.versions.vids():
                    total += 1
                    entry = self.versions.get(f"{name}:{vid}")
                    if entry is None or self.current_heat(entry, at) < COLD_HEAT:
                        cold += 1
        else:
            for entry in self.versions.values():
                total += 1
                if self.current_heat(entry, at) < COLD_HEAT:
                    cold += 1
        if not total:
            return None
        return cold / total

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "schema_version": HEAT_SCHEMA_VERSION,
                "half_life_s": self.half_life_s,
                "events_total": self.events_total,
                "datasets": {k: dict(v) for k, v in self.datasets.items()},
                "versions": {k: dict(v) for k, v in self.versions.items()},
                "partitions": {
                    k: dict(v) for k, v in self.partitions.items()
                },
                "samples": {k: dict(v) for k, v in self.samples.items()},
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "HeatAccountant":
        accountant = cls(
            half_life_s=float(payload.get("half_life_s") or 0) or None
        )
        accountant.events_total = int(payload.get("events_total") or 0)
        for name in ("datasets", "versions", "partitions"):
            table = payload.get(name)
            if isinstance(table, dict):
                target = getattr(accountant, name)
                for key, entry in table.items():
                    if isinstance(entry, dict):
                        merged = _new_entry()
                        merged.update(
                            {
                                k: entry[k]
                                for k in merged
                                if isinstance(entry.get(k), (int, float))
                            }
                        )
                        target[key] = merged
        samples = payload.get("samples")
        if isinstance(samples, dict):
            for key, sample in samples.items():
                if isinstance(sample, dict):
                    merged = _new_sample()
                    merged.update(
                        {
                            k: int(sample[k])
                            for k in merged
                            if isinstance(sample.get(k), (int, float))
                        }
                    )
                    accountant.samples[key] = merged
        return accountant

    @classmethod
    def load(cls, root: str | None = None) -> "HeatAccountant":
        """The persisted model (fresh when absent or corrupt)."""
        path = heat_path(root)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        if not isinstance(payload, dict):
            return cls()
        return cls.from_dict(payload)

    def save(self, root: str | None = None) -> None:
        """Atomic replace (temp + ``os.replace``), crash-safe like
        every other accumulator file under ``.orpheus/``."""
        path = heat_path(root)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Offline mining (`orpheus heat --from-flight`)
# ----------------------------------------------------------------------
def mine_events(root: str | None, orpheus=None) -> list[AccessEvent]:
    """Reconstruct access events from the flight recorder and the ops
    journal.

    Flight records carry full scan stamps (``rows_scanned`` /
    ``bytes_scanned`` / ``rows_written`` / ``rows_returned`` /
    ``versions``); journal records that have *no* flight twin (CLI
    invocations — matched by trace id) contribute touch counts and
    returned rows but scanned counts of zero, since the journal
    predates scan stamping. Events come back in timestamp order so the
    mined EWMA equals the live one.
    """
    from repro.observe.journal import Journal
    from repro.service.recorder import flight_dir_path, read_flight

    events: list[AccessEvent] = []
    flight_traces: set[str] = set()
    flight = read_flight(flight_dir_path(root))
    for record in flight["records"]:
        trace = record.get("trace")
        if trace:
            flight_traces.add(str(trace))
        if record.get("status") != "ok":
            continue
        dataset = record.get("dataset")
        op = record.get("op")
        if not dataset or op not in HEAT_COMMANDS:
            continue
        versions = record.get("versions")
        if versions is None:
            params = record.get("params") or {}
            versions = params.get("versions") or ()
        events.append(
            build_event(
                orpheus,
                ts=float(record.get("ts") or 0.0),
                command=str(op),
                dataset=str(dataset),
                versions=versions,
                rows_returned=record.get("rows_returned") or 0,
                rows_scanned=record.get("rows_scanned") or 0,
                bytes_scanned=record.get("bytes_scanned") or 0,
                rows_written=record.get("rows_written") or 0,
            )
        )
    for record in Journal(root).read():
        if record.get("trace_id") in flight_traces:
            continue  # the daemon journaled it *and* flight-recorded it
        if record.get("status") != "ok":
            continue
        dataset = record.get("dataset")
        command = record.get("command")
        if not dataset or command not in HEAT_COMMANDS:
            continue
        # Same "requested version" rule as the live folds: the output
        # version when the command produced one, else the inputs.
        output = record.get("output_version")
        if output is not None:
            versions = [output]
        else:
            versions = list(record.get("input_versions") or ())
        events.append(
            build_event(
                orpheus,
                ts=float(record.get("ts") or 0.0),
                command=str(command),
                dataset=str(dataset),
                versions=versions,
                rows_returned=record.get("rows") or 0,
            )
        )
    events.sort(key=lambda e: e.ts)
    return events


def mine(root: str | None, orpheus=None) -> HeatAccountant:
    """A fresh heat model rebuilt offline from recorded history."""
    accountant = HeatAccountant()
    for event in mine_events(root, orpheus):
        accountant.record(event)
    return accountant


# ----------------------------------------------------------------------
# The workload-driven partition advisor
# ----------------------------------------------------------------------
def advise(
    orpheus, heat: HeatAccountant, now: float | None = None
) -> list[dict]:
    """Ranked repartition/migration recommendations from observed heat
    joined with the page cost model.

    Every touched dataset gets exactly one recommendation:

    * ``repartition`` — a partitioned store whose *heat-weighted* live
      checkout cost exceeds µ·C*_avg (LyreSplit rerun under the
      current budget): the workload concentrates on partitions the
      static layout made expensive → ``orpheus optimize``.
    * ``migrate`` — a monolithic model whose observed checkout read
      amplification breaches ``ORPHEUS_AMP_BUDGET``: checkouts scan
      many times the rows they return → move to ``partitioned_rlist``.
    * ``keep`` — the observed workload is served within budget.

    Ranked by estimated checkout-cost delta × dataset heat, largest
    saving first, so position 0 is always the advisor's best move.
    """
    from repro.core.errors import CVDError

    at = telemetry.now() if now is None else now
    budget = amp_budget()
    recommendations: list[dict] = []
    for dataset, entry in sorted(heat.datasets.items()):
        if orpheus is None:
            continue
        try:
            cvd = orpheus.cvd(dataset)
        except (KeyError, ValueError, CVDError):
            continue
        dataset_heat = heat.current_heat(entry, at)
        model = cvd.model.model_name
        rec = {
            "dataset": dataset,
            "model": model,
            "kind": "keep",
            "heat": round(dataset_heat, 4),
            "touches": entry["touches"],
            "estimated_checkout_cost_delta": 0.0,
            "reason": "observed workload served within budget",
        }
        store = cvd.model
        if hasattr(store, "current_checkout_cost") and hasattr(
            store, "best_partitioning"
        ):
            weighted = _heat_weighted_checkout_cost(cvd, heat, dataset, at)
            live = store.current_checkout_cost()
            observed = weighted if weighted is not None else live
            try:
                _target, best = store.best_partitioning()
            except Exception:
                best = 0.0
            tolerance = getattr(store, "tolerance", 1.5)
            rec["observed_checkout_cost"] = round(observed, 2)
            rec["optimal_checkout_cost"] = round(best, 2)
            if best > 0 and observed > tolerance * best:
                rec["kind"] = "repartition"
                rec["estimated_checkout_cost_delta"] = round(
                    (observed - best) * max(dataset_heat, 1.0), 2
                )
                rec["reason"] = (
                    f"heat-weighted checkout cost {observed:.1f} exceeds "
                    f"µ={tolerance:g} × C*_avg={best:.1f}; run "
                    f"`orpheus optimize -d {dataset}`"
                )
        else:
            sample = heat.samples.get(f"{model}|checkout")
            if sample and sample["rows_requested"] > 0:
                amp = sample["rows_scanned"] / sample["rows_requested"]
                rec["read_amplification"] = round(amp, 3)
                if amp > budget:
                    per_checkout = (
                        sample["rows_scanned"] - sample["rows_requested"]
                    ) / max(1, sample["events"])
                    rec["kind"] = "migrate"
                    rec["estimated_checkout_cost_delta"] = round(
                        per_checkout * max(dataset_heat, 1.0), 2
                    )
                    rec["reason"] = (
                        f"checkout scans {amp:.1f}× the requested rows on "
                        f"model {model} (budget {budget:g}); migrate to "
                        f"partitioned_rlist"
                    )
        recommendations.append(rec)
    recommendations.sort(
        key=lambda r: (-r["estimated_checkout_cost_delta"], r["dataset"])
    )
    for rank, rec in enumerate(recommendations, start=1):
        rec["rank"] = rank
    return recommendations


def _heat_weighted_checkout_cost(
    cvd, heat: HeatAccountant, dataset: str, at: float
) -> float | None:
    """Average records scanned per checkout when versions are drawn by
    observed heat instead of uniformly — the live C_avg reweighted by
    what the workload actually asks for."""
    store = cvd.model
    records = getattr(store, "_partition_records", None)
    if records is None:
        return None
    total_weight = 0.0
    total_cost = 0.0
    for vid in cvd.versions.vids():
        entry = heat.versions.get(f"{dataset}:{vid}")
        if entry is None:
            continue
        weight = heat.current_heat(entry, at)
        if weight <= 0:
            continue
        index = partition_of(cvd, vid)
        if index >= len(records):
            continue
        total_weight += weight
        total_cost += weight * len(records[index])
    if total_weight <= 0:
        return None
    return total_cost / total_weight
