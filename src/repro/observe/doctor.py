"""``orpheus doctor`` — storage-health probes with remediation hints.

Each probe inspects one aspect of a repository and returns a severity
(``ok``/``warn``/``fail``), a one-line summary, a concrete remediation,
and machine-readable data. The probes:

* **checkout-cost ratio** — for partitioned CVDs, the live C_avg against
  the LyreSplit optimum C*_avg; drifting past the migration tolerance µ
  (and the (1+δ) guarantee Chapter 5 proves) means checkouts are paying
  for records they do not need → ``orpheus optimize``.
* **partition imbalance** — one partition holding most of the records
  defeats the point of partitioning.
* **delta-chain length** — delta-based models recreate a version by
  walking its base chain; long chains make checkout O(chain).
* **orphaned versions** — version-graph metadata and physical membership
  must cover the same vids.
* **stale staging** — staged checkouts whose backing file vanished or
  that have sat uncommitted for a long time.
* **telemetry accumulator** — ``.orpheus/telemetry.json`` growing without
  bound or corrupt.
* **journal integrity** — replay-verify the operation journal against
  the version graph.
* **state integrity** — checksum-verify ``state.pkl`` and every backup
  generation; stray temp files from interrupted writes.
* **backup freshness** — backup generations must exist (and track the
  live file) once the repository has history.
* **lock health** — last-holder liveness for the repository lock, and
  stale fallback-lock detection.
* **pending intents** — torn operations (intent begun, never completed)
  fail the probe and point at ``orpheus recover``.
* **service faults** — a running daemon's fault-tolerance posture:
  degraded read-only mode, quarantined poison requests, and
  worker-error / deadline-shed rates against the fault budget.
* **heat skew** — decayed partition heat from the access observatory
  (:mod:`repro.observe.heat`): one partition soaking up most of a
  dataset's heat means the static split no longer matches the
  workload → see the ``orpheus heat`` advisor.
* **I/O amplification** — observed checkout rows-scanned over
  rows-requested per data model against ``ORPHEUS_AMP_BUDGET``.
* **page store health** — paged-layout invariants: every referenced
  page file present, checksum spot-check, no orphans/stray temps, a
  readable page directory.
* **buffer pool** — budget pressure on the page cache: thrash (eviction
  rate rivaling fault rate) and leaked dirty pages.
* **perf baselines** — inside a source checkout, the benchmark
  regression baseline must exist, match the runner's schema version,
  and cover the registered quick tier.

``run_doctor`` executes all probes; the report's exit code is non-zero
when any probe fails, so CI can gate on ``orpheus doctor --json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry

OK = "ok"
WARN = "warn"
FAIL = "fail"

_RANK = {OK: 0, WARN: 1, FAIL: 2}

#: Delta chains longer than this warn; four times it fails.
CHAIN_WARN = 8
#: A partition holding more than this multiple of the mean warns.
IMBALANCE_FACTOR = 4.0
#: Staged checkouts older than this many seconds warn.
STALE_STAGING_SECONDS = 7 * 24 * 3600.0
#: Accumulated telemetry beyond this many bytes warns.
TELEMETRY_WARN_BYTES = 4 * 1024 * 1024
#: A slow-request log holding at least this many entries warns.
SLOW_LOG_WARN_ENTRIES = 50
#: Env var: p99 latency budget (ms) for the slow_requests probe; the
#: probe warns when the slow log's p99 breaches it.
SLOW_P99_BUDGET_ENV = "ORPHEUS_SLOW_P99_BUDGET_MS"

#: Flight-recorder on-disk budget before the doctor warns (override
#: via the environment; rotation should keep well under this).
FLIGHT_BUDGET_BYTES = 64 * 1024 * 1024
FLIGHT_BUDGET_ENV = "ORPHEUS_FLIGHT_BUDGET_BYTES"

#: Fault budget for the service_faults probe: worker errors or deadline
#: sheds above this percentage of total requests warn. Override via the
#: environment (e.g. a chaos CI job that *expects* a high fault rate).
FAULT_BUDGET_PCT = 1.0
FAULT_BUDGET_ENV = "ORPHEUS_FAULT_BUDGET_PCT"


@dataclass
class ProbeResult:
    """Outcome of one probe."""

    probe: str
    severity: str
    summary: str
    remediation: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {
            "probe": self.probe,
            "severity": self.severity,
            "summary": self.summary,
        }
        if self.remediation:
            record["remediation"] = self.remediation
        if self.data:
            record["data"] = self.data
        return record


@dataclass
class DoctorReport:
    """All probe results plus the aggregate verdict."""

    results: list[ProbeResult] = field(default_factory=list)

    @property
    def severity(self) -> str:
        worst = OK
        for result in self.results:
            if _RANK[result.severity] > _RANK[worst]:
                worst = result.severity
        return worst

    @property
    def exit_code(self) -> int:
        return 1 if self.severity == FAIL else 0

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "probes": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        lines = []
        for result in self.results:
            lines.append(
                f"[{result.severity.upper():<4}] {result.probe:<24} "
                f"{result.summary}"
            )
            if result.remediation and result.severity != OK:
                lines.append(f"       -> {result.remediation}")
        lines.append(f"overall: {self.severity}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
def probe_checkout_cost(orpheus) -> list[ProbeResult]:
    """Live checkout cost vs. the LyreSplit optimum, per partitioned CVD."""
    from repro.partition.partitioned_store import PartitionedRlistStore

    results: list[ProbeResult] = []
    for name in orpheus.ls():
        model = orpheus.cvd(name).model
        if not isinstance(model, PartitionedRlistStore):
            continue
        if not model._order:
            continue
        current = model.current_checkout_cost()
        _target, best = model.best_partitioning()
        delta_bound = 1.0 + model._delta_star
        if best <= 0:
            continue
        ratio = current / best
        bound = max(delta_bound, model.tolerance)
        if ratio > bound:
            severity = FAIL
        elif ratio > delta_bound:
            severity = WARN
        else:
            severity = OK
        results.append(
            ProbeResult(
                probe=f"checkout_cost[{name}]",
                severity=severity,
                summary=(
                    f"cost ratio {ratio:.2f} vs bound "
                    f"1+δ={delta_bound:.2f} (µ={model.tolerance:.2f})"
                ),
                remediation=(
                    f"re-run `orpheus optimize -d {name}`: checkout cost "
                    f"ratio {ratio:.2f} exceeds 1+δ={delta_bound:.2f}"
                    if severity != OK
                    else ""
                ),
                data={
                    "dataset": name,
                    "current_cost": current,
                    "optimal_cost": best,
                    "ratio": round(ratio, 4),
                    "delta_bound": round(delta_bound, 4),
                    "tolerance": model.tolerance,
                },
            )
        )
    if not results:
        results.append(
            ProbeResult(
                probe="checkout_cost",
                severity=OK,
                summary="no partitioned CVDs to check",
            )
        )
    return results


def probe_partition_imbalance(orpheus) -> list[ProbeResult]:
    from repro.partition.partitioned_store import PartitionedRlistStore

    results: list[ProbeResult] = []
    for name in orpheus.ls():
        model = orpheus.cvd(name).model
        if not isinstance(model, PartitionedRlistStore):
            continue
        sizes = [len(r) for r in model._partition_records if r]
        if len(sizes) < 2:
            continue
        mean = sum(sizes) / len(sizes)
        largest = max(sizes)
        imbalanced = mean > 0 and largest > IMBALANCE_FACTOR * mean
        results.append(
            ProbeResult(
                probe=f"partition_imbalance[{name}]",
                severity=WARN if imbalanced else OK,
                summary=(
                    f"{len(sizes)} partitions, sizes "
                    f"min={min(sizes)} mean={mean:.0f} max={largest}"
                ),
                remediation=(
                    f"re-run `orpheus optimize -d {name}` to rebalance"
                    if imbalanced
                    else ""
                ),
                data={"dataset": name, "partition_sizes": sorted(sizes)},
            )
        )
    if not results:
        results.append(
            ProbeResult(
                probe="partition_imbalance",
                severity=OK,
                summary="no partitioned CVDs to check",
            )
        )
    return results


def probe_delta_chains(orpheus) -> list[ProbeResult]:
    """Delta-chain length distribution for delta-based CVDs."""
    from repro.core.models.delta_based import DeltaBasedModel

    results: list[ProbeResult] = []
    for name in orpheus.ls():
        cvd = orpheus.cvd(name)
        if not isinstance(cvd.model, DeltaBasedModel):
            continue
        histogram: dict[int, int] = {}
        longest = 0
        for vid in cvd.versions.vids():
            length = len(cvd.model.chain_of(vid)) - 1
            histogram[length] = histogram.get(length, 0) + 1
            longest = max(longest, length)
        if longest > 4 * CHAIN_WARN:
            severity = FAIL
        elif longest > CHAIN_WARN:
            severity = WARN
        else:
            severity = OK
        results.append(
            ProbeResult(
                probe=f"delta_chains[{name}]",
                severity=severity,
                summary=f"longest delta chain {longest} (threshold {CHAIN_WARN})",
                remediation=(
                    "re-commit hot versions against a nearer base, or "
                    "migrate the CVD to split_by_rlist"
                    if severity != OK
                    else ""
                ),
                data={
                    "dataset": name,
                    "chain_histogram": {
                        str(k): v for k, v in sorted(histogram.items())
                    },
                },
            )
        )
    if not results:
        results.append(
            ProbeResult(
                probe="delta_chains",
                severity=OK,
                summary="no delta-based CVDs to check",
            )
        )
    return results


def probe_storage_plan_chains(store) -> ProbeResult:
    """Chain-length distribution of a Chapter-7 storage plan.

    Library-level probe: takes a ``VersionedStore`` (or anything with a
    ``plan()`` returning a :class:`~repro.storage.graph.StoragePlan`).
    """
    plan = store.plan() if callable(getattr(store, "plan", None)) else store
    histogram = plan.depth_histogram()
    longest = max(histogram, default=0)
    if longest > 4 * CHAIN_WARN:
        severity = FAIL
    elif longest > CHAIN_WARN:
        severity = WARN
    else:
        severity = OK
    return ProbeResult(
        probe="storage_plan_chains",
        severity=severity,
        summary=f"longest materialization chain {longest}",
        remediation=(
            "re-solve the storage plan with a tighter recreation bound"
            if severity != OK
            else ""
        ),
        data={"chain_histogram": {str(k): v for k, v in sorted(histogram.items())}},
    )


def probe_orphaned_versions(orpheus) -> list[ProbeResult]:
    """Version-graph metadata and physical membership must agree."""
    results: list[ProbeResult] = []
    for name in orpheus.ls():
        cvd = orpheus.cvd(name)
        graph_vids = set(cvd.versions.vids())
        member_vids = set(cvd._membership)
        missing_physical = sorted(graph_vids - member_vids)
        missing_metadata = sorted(member_vids - graph_vids)
        if missing_physical or missing_metadata:
            results.append(
                ProbeResult(
                    probe=f"orphaned_versions[{name}]",
                    severity=FAIL,
                    summary=(
                        f"{len(missing_physical)} versions lack physical "
                        f"membership, {len(missing_metadata)} lack metadata"
                    ),
                    remediation=(
                        "state is corrupt; restore .orpheus/state.pkl from "
                        "backup or re-init from the journal"
                    ),
                    data={
                        "dataset": name,
                        "missing_physical": missing_physical[:20],
                        "missing_metadata": missing_metadata[:20],
                    },
                )
            )
    if not results:
        results.append(
            ProbeResult(
                probe="orphaned_versions",
                severity=OK,
                summary="version graph and physical membership agree",
            )
        )
    return results


def probe_stale_staging(orpheus) -> ProbeResult:
    """Staged checkouts whose file vanished or that sat too long."""
    now = telemetry.now()
    vanished: list[str] = []
    stale: list[str] = []
    for name, info in orpheus.staging._staged.items():
        looks_like_path = name.endswith(".csv") or os.sep in name
        if looks_like_path and not os.path.exists(name):
            vanished.append(name)
        elif now - info.checkout_time > STALE_STAGING_SECONDS:
            stale.append(name)
    if vanished:
        severity = WARN
        summary = f"{len(vanished)} staged file(s) no longer exist on disk"
    elif stale:
        severity = WARN
        summary = f"{len(stale)} staged checkout(s) uncommitted for >7 days"
    else:
        severity = OK
        summary = f"{len(orpheus.staging._staged)} staged checkout(s), all live"
    return ProbeResult(
        probe="stale_staging",
        severity=severity,
        summary=summary,
        remediation=(
            "commit or release the staged checkouts (they hold parent "
            "pins for provenance)"
            if severity != OK
            else ""
        ),
        data={"vanished": vanished[:20], "stale": stale[:20]},
    )


def probe_telemetry_accumulator(root: str | None = None) -> ProbeResult:
    """``.orpheus/telemetry.json`` must stay parseable and bounded."""
    path = Path(root or ".") / ".orpheus" / "telemetry.json"
    if not path.exists():
        return ProbeResult(
            probe="telemetry_accumulator",
            severity=OK,
            summary="no accumulated telemetry",
        )
    size = path.stat().st_size
    try:
        json.loads(path.read_text())
        parseable = True
    except ValueError:
        parseable = False
    if not parseable:
        return ProbeResult(
            probe="telemetry_accumulator",
            severity=WARN,
            summary=f"telemetry.json is corrupt ({size} bytes)",
            remediation="run `orpheus stats --reset` to start a fresh history",
            data={"bytes": size},
        )
    severity = WARN if size > TELEMETRY_WARN_BYTES else OK
    return ProbeResult(
        probe="telemetry_accumulator",
        severity=severity,
        summary=f"telemetry.json is {size} bytes",
        remediation=(
            "run `orpheus stats --reset` after exporting the history"
            if severity != OK
            else ""
        ),
        data={"bytes": size},
    )


def probe_state_integrity(root: str | None = None) -> ProbeResult:
    """Checksum-verify ``state.pkl`` and every backup generation."""
    from repro.resilience.statestore import StateStore

    store = StateStore(root)
    report = store.integrity()
    status = report["status"]
    stray = report["stray_temps"]
    if status == "missing":
        return ProbeResult(
            probe="state_integrity",
            severity=OK,
            summary="no state file yet (fresh repository)",
            data=report,
        )
    if status == "corrupt":
        fallback_ok = any(b["ok"] for b in report["backups"])
        return ProbeResult(
            probe="state_integrity",
            severity=WARN if fallback_ok else FAIL,
            summary=(
                f"state.pkl is corrupt ({report['detail']}); "
                + (
                    "a verified backup will serve loads"
                    if fallback_ok
                    else "no verified backup exists"
                )
            ),
            remediation=(
                "run `orpheus recover` (any mutating command also "
                "rewrites state from the backup)"
                if fallback_ok
                else "restore .orpheus/state.pkl from an external copy "
                "or re-init from the operation journal"
            ),
            data=report,
        )
    severity = WARN if (status == "legacy" or stray) else OK
    bits = [f"{report['bytes']} bytes, checksum ok"]
    if status == "legacy":
        bits = [f"{report['bytes']} bytes, legacy pre-checksum format"]
    if stray:
        bits.append(f"{len(stray)} interrupted write temp(s)")
    return ProbeResult(
        probe="state_integrity",
        severity=severity,
        summary="; ".join(bits),
        remediation=(
            "run `orpheus recover` to clean up (legacy files upgrade on "
            "the next mutating command)"
            if severity != OK
            else ""
        ),
        data=report,
    )


def probe_backup_freshness(root: str | None = None) -> ProbeResult:
    """Backup generations must exist once the repository has history."""
    from repro.observe.journal import Journal
    from repro.resilience.statestore import StateStore

    store = StateStore(root)
    if not store.path.exists():
        return ProbeResult(
            probe="backup_freshness",
            severity=OK,
            summary="no state file yet, nothing to back up",
        )
    backups = [p for p in store.backup_paths if p.exists()]
    ops = len(Journal(root).read())
    if not backups:
        severity = WARN if ops >= 2 else OK
        return ProbeResult(
            probe="backup_freshness",
            severity=severity,
            summary=(
                f"no backup generation yet ({ops} journaled operation(s))"
            ),
            remediation=(
                "backups rotate on every state save; investigate why "
                "none exists despite repeated operations"
                if severity != OK
                else ""
            ),
            data={"ops": ops},
        )
    state_mtime = store.path.stat().st_mtime
    newest = max(p.stat().st_mtime for p in backups)
    lag = state_mtime - newest
    stale = lag > STALE_STAGING_SECONDS
    return ProbeResult(
        probe="backup_freshness",
        severity=WARN if stale else OK,
        summary=(
            f"{len(backups)} backup generation(s), newest "
            f"{max(lag, 0):.0f}s behind the live state"
        ),
        remediation=(
            "backups have not rotated in over a week of state writes; "
            "check filesystem permissions on .orpheus/"
            if stale
            else ""
        ),
        data={
            "backups": [p.name for p in backups],
            "lag_seconds": round(lag, 1),
        },
    )


def probe_lock_health(root: str | None = None) -> ProbeResult:
    """Repository lock file state and last-holder liveness."""
    from repro.resilience.lock import LOCK_FILE, _pid_alive, holder_info

    lock_dir = Path(root or ".") / ".orpheus"
    path = lock_dir / LOCK_FILE
    if not path.exists():
        return ProbeResult(
            probe="lock_health",
            severity=OK,
            summary="no lock activity yet",
        )
    holder = holder_info(root) or {}
    pid = int(holder.get("pid") or 0)
    fallback = lock_dir / (LOCK_FILE + ".excl")
    if fallback.exists():
        fallback_holder: dict = {}
        try:
            fallback_holder = json.loads(fallback.read_text())
        except (OSError, ValueError):
            pass
        fallback_pid = int(fallback_holder.get("pid") or 0)
        if not _pid_alive(fallback_pid):
            return ProbeResult(
                probe="lock_health",
                severity=WARN,
                summary=(
                    f"stale fallback lock: holder pid {fallback_pid} is dead"
                ),
                remediation=(
                    f"remove {fallback} (the next lock attempt also breaks "
                    f"it automatically)"
                ),
                data={"fallback_pid": fallback_pid},
            )
    if pid and _pid_alive(pid):
        summary = (
            f"last exclusive holder pid {pid} "
            f"({holder.get('command') or '?'}) is alive"
        )
    else:
        summary = "lock file present; no live holder (flock auto-released)"
    return ProbeResult(
        probe="lock_health",
        severity=OK,
        summary=summary,
        data={"holder": holder},
    )


def probe_pending_intents(root: str | None = None) -> ProbeResult:
    """Torn operations (intent begun, never completed) demand recovery."""
    from repro.resilience.intents import IntentLog

    log = IntentLog(root)
    records = log.read()
    pending = log.pending()
    if pending:
        return ProbeResult(
            probe="pending_intents",
            severity=FAIL,
            summary=(
                f"{len(pending)} torn operation(s): a process died "
                f"mid-command"
            ),
            remediation="run `orpheus recover` (any command auto-recovers)",
            data={
                "pending": [
                    {
                        "trace_id": r.get("trace_id"),
                        "command": r.get("command"),
                        "dataset": r.get("dataset"),
                    }
                    for r in pending[:20]
                ]
            },
        )
    return ProbeResult(
        probe="pending_intents",
        severity=OK,
        summary=f"{len(records)} intent record(s), none pending",
    )


def probe_perf_baselines(root: str | None = None) -> ProbeResult:
    """The performance-gating baseline must exist and track the bench
    suite.

    Only meaningful inside a source checkout where the ``benchmarks``
    package is importable; a deployed repository (the usual ``--root``)
    reports OK/not-applicable. Warns when ``benchmarks/baselines.json``
    is missing, schema-version mismatched, or stale relative to the
    registered quick tier (benches with no baseline entry, or entries
    whose bench no longer exists).
    """
    try:
        from benchmarks import runner
        from benchmarks.registry import QUICK, benches
    except ImportError:
        return ProbeResult(
            probe="perf_baselines",
            severity=OK,
            summary="bench suite not importable here (not a source "
            "checkout); nothing to gate",
        )
    from repro.observe import regress

    remediation = (
        "run `orpheus bench --quick --update-baseline` and commit "
        "benchmarks/baselines.json"
    )
    baseline_path = runner.DEFAULT_BASELINE
    try:
        baseline = regress.load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError) as error:
        return ProbeResult(
            probe="perf_baselines",
            severity=WARN,
            summary=f"baseline unreadable: {error}",
            remediation=remediation,
            data={"path": str(baseline_path)},
        )
    if baseline is None:
        return ProbeResult(
            probe="perf_baselines",
            severity=WARN,
            summary="no benchmark baseline: regressions in the quick "
            "tier would ship silently",
            remediation=remediation,
            data={"path": str(baseline_path)},
        )
    if baseline.get("schema_version") != runner.BENCH_SCHEMA_VERSION:
        return ProbeResult(
            probe="perf_baselines",
            severity=WARN,
            summary=(
                f"baseline schema_version "
                f"{baseline.get('schema_version')!r} != runner's "
                f"{runner.BENCH_SCHEMA_VERSION}"
            ),
            remediation=remediation,
            data={"path": str(baseline_path)},
        )
    try:
        runner.discover()
    except Exception as error:  # a broken bench module is suite damage
        return ProbeResult(
            probe="perf_baselines",
            severity=WARN,
            summary=f"bench discovery failed: {error}",
            remediation="fix the failing bench module import",
        )
    registered = {spec.name for spec in benches(QUICK)}
    in_baseline = set(baseline.get("benches", {}))
    unbaselined = sorted(registered - in_baseline)
    orphaned = sorted(in_baseline - registered)
    if unbaselined or orphaned:
        return ProbeResult(
            probe="perf_baselines",
            severity=WARN,
            summary=(
                f"baseline is stale: {len(unbaselined)} bench(es) "
                f"unbaselined, {len(orphaned)} orphaned entr(ies)"
            ),
            remediation=remediation,
            data={
                "unbaselined": unbaselined[:20],
                "orphaned": orphaned[:20],
            },
        )
    return ProbeResult(
        probe="perf_baselines",
        severity=OK,
        summary=(
            f"baseline covers all {len(registered)} quick bench(es) "
            f"(sha {baseline.get('git_sha', '?')})"
        ),
        data={"benches": len(registered)},
    )


def probe_service_health(root: str | None = None) -> ProbeResult:
    """The version-service daemon, when one claims this repository.

    Reads ``.orpheus/service.json``: a live pid gets a status query over
    the daemon's socket (queue pressure and cache hit rate surface
    here); a dead pid means a crashed daemon left its status file (and
    possibly socket) behind — warn and point at cleanup. No status file
    at all is OK: serving is optional.
    """
    from repro.service.client import (
        ServiceClient,
        ServiceError,
        _pid_alive,
        read_status_file,
    )

    status = read_status_file(root)
    if status is None:
        return ProbeResult(
            probe="service_health",
            severity=OK,
            summary="no daemon registered (orpheus serve not running)",
        )
    pid = int(status.get("pid") or 0)
    if pid == os.getpid():
        # We *are* the daemon (remote doctor runs on a read worker);
        # querying our own socket would tie up a second worker — the
        # status op already reports the live scheduler/cache numbers.
        return ProbeResult(
            probe="service_health",
            severity=OK,
            summary=f"this process is the daemon (pid {pid})",
            data={"pid": pid, "socket": status.get("socket")},
        )
    if not _pid_alive(pid):
        return ProbeResult(
            probe="service_health",
            severity=WARN,
            summary=f"stale service.json: daemon pid {pid} is dead",
            remediation=(
                "remove .orpheus/service.json and the stale socket, then "
                "restart with `orpheus serve` (startup also recovers any "
                "torn operations)"
            ),
            data={"pid": pid, "socket": status.get("socket")},
        )
    try:
        with ServiceClient(
            socket_path=status.get("socket"), root=root
        ) as client:
            live = client.status()
    except ServiceError as error:
        return ProbeResult(
            probe="service_health",
            severity=WARN,
            summary=(
                f"daemon pid {pid} is alive but unresponsive: {error}"
            ),
            remediation=(
                "the daemon may be wedged; check its stderr, then "
                "SIGTERM it (graceful drain) and restart"
            ),
            data={"pid": pid, "socket": status.get("socket")},
        )
    scheduler = live.get("scheduler", {})
    cache = live.get("cache", {})
    requests = live.get("requests", {})
    write_pressure = scheduler.get("write_queue_depth", 0) >= max(
        1, scheduler.get("write_queue_capacity", 1)
    )
    shed = scheduler.get("shed_reads", 0) + scheduler.get("shed_writes", 0)
    draining = live.get("draining", False)
    if draining:
        severity, note = WARN, "daemon is draining"
    elif write_pressure:
        severity, note = WARN, "writer queue is saturated"
    else:
        severity, note = OK, "daemon healthy"
    return ProbeResult(
        probe="service_health",
        severity=severity,
        summary=(
            f"{note}: pid {pid}, uptime {live.get('uptime_s', 0):.0f}s, "
            f"{requests.get('total', 0)} requests "
            f"({requests.get('busy', 0)} shed busy), cache hit rate "
            f"{cache.get('hit_rate', 0.0):.0%}"
        ),
        remediation=(
            "raise `orpheus serve --queue-depth`/--workers or slow the "
            "writers; shed requests surface as BUSY to clients"
            if severity != OK and not draining
            else ""
        ),
        data={
            "pid": pid,
            "uptime_s": live.get("uptime_s"),
            "requests": requests,
            "shed": shed,
            "scheduler": scheduler,
            "cache": cache,
            "sessions": live.get("sessions", {}).get("active"),
        },
    )


def probe_service_faults(root: str | None = None) -> ProbeResult:
    """Fault-tolerance posture of a running daemon.

    Queries the daemon's status for the degraded/quarantine machinery
    added by the service fault-injection work: warns when the daemon is
    in degraded read-only mode (writes are bouncing), when poisoned
    requests sit quarantined, or when the worker-error / deadline-shed
    rate exceeds the fault budget (``ORPHEUS_FAULT_BUDGET_PCT`` percent
    of total requests, default 1%). No daemon — or a daemon we cannot
    reach — is OK here; liveness is ``service_health``'s job.
    """
    from repro.service.client import (
        ServiceClient,
        ServiceError,
        _pid_alive,
        read_status_file,
    )

    status = read_status_file(root)
    if status is None:
        return ProbeResult(
            probe="service_faults",
            severity=OK,
            summary="no daemon registered (nothing to degrade)",
        )
    pid = int(status.get("pid") or 0)
    if pid == os.getpid():
        # Remote doctor runs on a read worker inside the daemon; the
        # status op already reports the degrade/quarantine numbers.
        return ProbeResult(
            probe="service_faults",
            severity=OK,
            summary=f"this process is the daemon (pid {pid})",
            data={"pid": pid},
        )
    if not _pid_alive(pid):
        return ProbeResult(
            probe="service_faults",
            severity=OK,
            summary=f"daemon pid {pid} is dead (see service_health)",
            data={"pid": pid},
        )
    try:
        with ServiceClient(
            socket_path=status.get("socket"), root=root
        ) as client:
            live = client.status()
    except ServiceError:
        return ProbeResult(
            probe="service_faults",
            severity=OK,
            summary=(
                f"daemon pid {pid} unreachable (see service_health)"
            ),
            data={"pid": pid},
        )
    requests = live.get("requests", {})
    degrade = requests.get("degrade", {}) or live.get("degrade", {})
    quarantine = (
        requests.get("quarantine", {}) or live.get("quarantine", {})
    )
    total = max(1, int(requests.get("total", 0) or 0))
    worker_errors = int(requests.get("worker_errors", 0) or 0)
    deadline_exceeded = int(
        requests.get("deadline_exceeded", 0) or 0
    ) + int(requests.get("deadline_shed", 0) or 0)
    budget_raw = os.environ.get(FAULT_BUDGET_ENV)
    try:
        budget_pct = float(budget_raw) if budget_raw else FAULT_BUDGET_PCT
    except ValueError:
        budget_pct = FAULT_BUDGET_PCT
    worker_pct = 100.0 * worker_errors / total
    deadline_pct = 100.0 * deadline_exceeded / total
    quarantined = int(quarantine.get("quarantined", 0) or 0)
    problems: list[str] = []
    remediation: list[str] = []
    if degrade.get("degraded"):
        cause = degrade.get("cause") or "unknown"
        problems.append(f"degraded read-only mode ({cause})")
        remediation.append(
            "fix the storage fault behind the failing saves (disk "
            "full? permissions?); the daemon probes a save each "
            "housekeeping tick and exits degraded mode on success"
        )
    if quarantined:
        problems.append(f"{quarantined} request digest(s) quarantined")
        remediation.append(
            "inspect the quarantine entries in `orpheus serve "
            "--status`, fix or stop the offending request, then "
            "`orpheus remote -- flush-quarantine`"
        )
    if worker_pct > budget_pct:
        problems.append(
            f"worker-error rate {worker_pct:.1f}% exceeds the "
            f"{budget_pct:.1f}% budget"
        )
        remediation.append(
            "check the daemon stderr and the journal for the failing "
            "op; repeated crashers quarantine automatically"
        )
    if deadline_pct > budget_pct:
        problems.append(
            f"deadline-shed rate {deadline_pct:.1f}% exceeds the "
            f"{budget_pct:.1f}% budget"
        )
        remediation.append(
            "the queue is slow, not full: raise client deadlines "
            "(ORPHEUS_CLIENT_DEADLINE_MS), add workers, or shed load"
        )
    data = {
        "pid": pid,
        "total": requests.get("total", 0),
        "worker_errors": worker_errors,
        "deadline_exceeded": deadline_exceeded,
        "budget_pct": budget_pct,
        "degrade": degrade,
        "quarantine": {
            key: value
            for key, value in quarantine.items()
            if key != "entries"
        },
    }
    if problems:
        return ProbeResult(
            probe="service_faults",
            severity=WARN,
            summary="; ".join(problems),
            remediation="; ".join(remediation),
            data=data,
        )
    return ProbeResult(
        probe="service_faults",
        severity=OK,
        summary=(
            f"daemon pid {pid} healthy: {worker_errors} worker "
            f"error(s), {deadline_exceeded} deadline shed(s), "
            f"quarantine empty"
        ),
        data=data,
    )


def probe_slow_requests(root: str | None = None) -> ProbeResult:
    """The daemon's slow-request log must stay small and under budget.

    Warns when the log has accumulated :data:`SLOW_LOG_WARN_ENTRIES`
    outliers, or when its p99 breaches the optional latency budget in
    ``ORPHEUS_SLOW_P99_BUDGET_MS``. No log is healthy — it only exists
    once a daemon has seen requests past ``ORPHEUS_SLOW_MS``.
    """
    from repro.service.tracing import SlowLog

    log = SlowLog(root)
    stats = log.stats()
    count = stats["count"]
    p99_ms = stats["p99_ms"]
    if count == 0:
        return ProbeResult(
            probe="slow_requests",
            severity=OK,
            summary="no slow requests logged",
        )
    budget_raw = os.environ.get(SLOW_P99_BUDGET_ENV)
    budget_ms: float | None = None
    if budget_raw:
        try:
            budget_ms = float(budget_raw)
        except ValueError:
            budget_ms = None
    over_budget = (
        budget_ms is not None and p99_ms is not None and p99_ms > budget_ms
    )
    growing = count >= SLOW_LOG_WARN_ENTRIES
    if over_budget:
        severity = WARN
        summary = (
            f"slow-request p99 {p99_ms:.0f}ms breaches the "
            f"{budget_ms:.0f}ms budget ({count} logged)"
        )
    elif growing:
        severity = WARN
        summary = (
            f"slow-request log is growing: {count} entries over "
            f"{stats['threshold_ms']:.0f}ms"
        )
    else:
        severity = OK
        summary = (
            f"{count} slow request(s) logged"
            + (f", p99 {p99_ms:.0f}ms" if p99_ms is not None else "")
        )
    return ProbeResult(
        probe="slow_requests",
        severity=severity,
        summary=summary,
        remediation=(
            "watch the live breakdown with `orpheus top` and profile "
            "the hot phase with `orpheus profile`; the span trees in "
            ".orpheus/journal/slow.jsonl name the slow phase per request"
            if severity != OK
            else ""
        ),
        data={
            "count": count,
            "p99_ms": p99_ms,
            "threshold_ms": stats["threshold_ms"],
            "budget_ms": budget_ms,
            "path": stats["path"],
        },
    )


def probe_flight_recorder(root: str | None = None) -> ProbeResult:
    """Flight segments must stay within their byte budget and end
    cleanly.

    Warns when the recorder's on-disk footprint exceeds
    ``ORPHEUS_FLIGHT_BUDGET_BYTES`` (default 64 MiB) — rotation is
    misconfigured or pruning is failing — or when the newest segment
    has a torn tail while no daemon is running, meaning the last
    daemon died mid-write and the final records of the capture are
    lost to `orpheus replay`.
    """
    from repro.service.client import daemon_running
    from repro.service.recorder import flight_dir_path, flight_dir_status

    flight_dir = flight_dir_path(root)
    status = flight_dir_status(flight_dir)
    if not status["segments"]:
        return ProbeResult(
            probe="flight_recorder",
            severity=OK,
            summary="no flight segments recorded",
        )
    budget_raw = os.environ.get(FLIGHT_BUDGET_ENV)
    try:
        budget = int(budget_raw) if budget_raw else FLIGHT_BUDGET_BYTES
    except ValueError:
        budget = FLIGHT_BUDGET_BYTES
    over_budget = status["bytes"] > budget
    # A torn tail is expected while a daemon is appending; it only
    # signals data loss once nothing is writing.
    torn = status["newest_torn"] and not daemon_running(root)
    if over_budget:
        severity = WARN
        summary = (
            f"flight segments use {status['bytes']} bytes "
            f"(budget {budget})"
        )
    elif torn:
        severity = WARN
        summary = (
            "newest flight segment has a torn tail and no daemon is "
            "writing — the last capture lost its final records"
        )
    else:
        severity = OK
        summary = (
            f"{status['segments']} flight segment(s), "
            f"{status['bytes']} bytes"
        )
    return ProbeResult(
        probe="flight_recorder",
        severity=severity,
        summary=summary,
        remediation=(
            "tune rotation with `orpheus serve --flight-segment-mb/"
            "--flight-segments` (or dial sampling down with "
            "--flight-sample); torn tails are tolerated by "
            "`orpheus replay`, which skips the unparseable final line"
            if severity != OK
            else ""
        ),
        data={
            "segments": status["segments"],
            "bytes": status["bytes"],
            "budget_bytes": budget,
            "newest_torn": status["newest_torn"],
            "path": str(flight_dir),
        },
    )


def probe_journal(orpheus, root: str | None = None) -> ProbeResult:
    """Replay-verify the operation journal against the version graph."""
    from repro.observe.journal import Journal, verify_journal

    journal = Journal(root)
    records = journal.read()
    if not records:
        return ProbeResult(
            probe="journal",
            severity=OK,
            summary="no operations journaled",
        )
    divergences = verify_journal(orpheus, records)
    return ProbeResult(
        probe="journal",
        severity=FAIL if divergences else OK,
        summary=(
            f"{len(records)} records, {len(divergences)} divergence(s)"
        ),
        remediation=(
            "the store was mutated outside the CLI or state was lost; "
            "inspect `orpheus log --ops --verify`"
            if divergences
            else ""
        ),
        data={"divergences": divergences[:20]},
    )


def probe_heat_skew(orpheus, root: str | None = None) -> ProbeResult:
    """Partition heat concentration from the access observatory.

    A partitioned layout only pays off when the workload spreads across
    partitions; one partition soaking up most of the decayed heat means
    the static split no longer matches the access pattern. Skew is the
    hottest partition's heat over the per-dataset mean; breaching
    ``ORPHEUS_HEAT_SKEW_FACTOR`` warns and points at the advisor.
    """
    from repro.observe.heat import (
        HEAT_SKEW_ENV,
        HEAT_SKEW_FACTOR,
        HeatAccountant,
    )

    try:
        factor = float(os.environ.get(HEAT_SKEW_ENV, HEAT_SKEW_FACTOR))
    except ValueError:
        factor = HEAT_SKEW_FACTOR
    heat = HeatAccountant.load(root)
    if not heat.events_total or not heat.partitions:
        return ProbeResult(
            probe="heat_skew",
            severity=OK,
            summary="no heat recorded",
        )
    now = telemetry.now()
    by_dataset: dict[str, list[float]] = {}
    for key, entry in heat.partitions.items():
        dataset, _, _part = key.rpartition(":")
        by_dataset.setdefault(dataset, []).append(
            heat.current_heat(entry, now)
        )
    skews: dict[str, float] = {}
    for dataset, heats in by_dataset.items():
        if len(heats) < 2:
            continue  # one partition: skew is undefined, not a finding
        mean = sum(heats) / len(heats)
        if mean > 0:
            skews[dataset] = round(max(heats) / mean, 3)
    cold = heat.cold_fraction(orpheus, now)
    data = {
        "skew_factor_budget": factor,
        "skew_by_dataset": skews,
        "cold_fraction": None if cold is None else round(cold, 4),
    }
    worst = max(skews.values(), default=0.0)
    if worst > factor:
        hot = max(skews, key=skews.get)
        return ProbeResult(
            probe="heat_skew",
            severity=WARN,
            summary=(
                f"partition heat skew {worst:.1f}x on {hot!r} "
                f"(budget {factor:g}x)"
            ),
            remediation=(
                "the workload concentrates on few partitions; see "
                "`orpheus heat` advisor and consider `orpheus optimize`"
            ),
            data=data,
        )
    return ProbeResult(
        probe="heat_skew",
        severity=OK,
        summary=(
            f"heat spread ok across {len(by_dataset)} dataset(s) "
            f"(worst skew {worst:.1f}x, budget {factor:g}x)"
        ),
        data=data,
    )


def probe_io_amplification(orpheus, root: str | None = None) -> ProbeResult:
    """Observed checkout read amplification vs. ``ORPHEUS_AMP_BUDGET``.

    Rows scanned per requested row, per data model, from the heat
    model's samples. Above the budget warns; above four times the
    budget fails — checkouts are paying for almost nothing but waste.
    """
    from repro.observe.amplification import amplification_report
    from repro.observe.heat import HeatAccountant, amp_budget

    heat = HeatAccountant.load(root)
    report = amplification_report(heat)
    amps = {
        model: commands["checkout"]["read_amplification"]
        for model, commands in report.items()
        if commands.get("checkout", {}).get("read_amplification")
        is not None
    }
    if not amps:
        return ProbeResult(
            probe="io_amplification",
            severity=OK,
            summary="no checkouts observed",
        )
    budget = amp_budget()
    worst_model = max(amps, key=amps.get)
    worst = amps[worst_model]
    data = {"amp_budget": budget, "checkout_read_amplification": amps}
    if worst > budget:
        severity = FAIL if worst > 4 * budget else WARN
        return ProbeResult(
            probe="io_amplification",
            severity=severity,
            summary=(
                f"checkout reads {worst:.1f}x the requested rows on "
                f"{worst_model} (budget {budget:g}x)"
            ),
            remediation=(
                "the layout scans far more than it returns; see "
                "`orpheus heat` for the amplification table and the "
                "advisor's migration recommendation"
            ),
            data=data,
        )
    return ProbeResult(
        probe="io_amplification",
        severity=OK,
        summary=(
            f"worst checkout read amplification {worst:.2f}x "
            f"({worst_model}, budget {budget:g}x)"
        ),
        data=data,
    )


# ----------------------------------------------------------------------
# Page store health (paged ORPHSTA2 layout)
# ----------------------------------------------------------------------
#: How many page files the doctor checksum-verifies per run.
PAGE_SPOT_CHECK = 8


def probe_page_store(root: str | None = None) -> ProbeResult:
    """Verify the paged layout's on-disk invariants: every referenced
    page present, a readable page directory, no orphans or stray temps,
    and a checksum spot-check over the page files."""
    from repro.pagestore import pages as pagefiles
    from repro.pagestore.store import (
        orphan_pages,
        read_directory,
        referenced_pages,
    )
    from repro.resilience.statestore import StateStore

    layout = StateStore(root).integrity().get("layout")
    directory = pagefiles.pages_dir(root)
    if layout != "paged" and not directory.is_dir():
        return ProbeResult(
            probe="page_store_health",
            severity=OK,
            summary="pickle layout; page store not in use",
            data={"layout": layout or "missing"},
        )

    files = pagefiles.list_page_files(directory)
    on_disk = {path.name[: -len(pagefiles.PAGE_SUFFIX)] for path in files}
    referenced = referenced_pages(root)
    data: dict = {
        "layout": layout,
        "pages_on_disk": len(files),
        "pages_referenced": len(referenced),
        "bytes_on_disk": sum(
            path.stat().st_size for path in files if path.exists()
        ),
    }

    missing = sorted(referenced - on_disk)
    if missing:
        data["missing_pages"] = missing[:8]
        return ProbeResult(
            probe="page_store_health",
            severity=FAIL,
            summary=(
                f"{len(missing)} referenced page file(s) missing from "
                f"{directory}"
            ),
            remediation=(
                "the live state references pages that are gone; load will "
                "fall back to a backup generation — run `orpheus recover` "
                "and check `orpheus log --ops` for lost operations"
            ),
            data=data,
        )

    corrupt = []
    for path in files[:PAGE_SPOT_CHECK]:
        try:
            pagefiles.read_page(directory, path.name[: -len(pagefiles.PAGE_SUFFIX)])
        except Exception as error:
            corrupt.append(f"{path.name}: {error}")
    data["pages_checked"] = min(len(files), PAGE_SPOT_CHECK)
    if corrupt:
        data["corrupt_pages"] = corrupt
        return ProbeResult(
            probe="page_store_health",
            severity=FAIL,
            summary=f"{len(corrupt)} corrupt page file(s) detected",
            remediation=(
                "page checksums do not verify; run `orpheus recover` to "
                "fall back to an intact backup generation, then "
                "`orpheus migrate-state --to paged` to rewrite pages"
            ),
            data=data,
        )

    orphans = orphan_pages(root)
    temps = pagefiles.stray_page_temps(directory)
    if orphans or temps:
        data["orphan_pages"] = len(orphans)
        data["stray_temps"] = len(temps)
        return ProbeResult(
            probe="page_store_health",
            severity=WARN,
            summary=(
                f"{len(orphans)} orphaned page(s) and {len(temps)} stray "
                f"temp file(s) — debris from an interrupted write-back"
            ),
            remediation="run `orpheus recover` to clean the page store",
            data=data,
        )

    if layout == "paged" and read_directory(root) is None:
        return ProbeResult(
            probe="page_store_health",
            severity=WARN,
            summary="page directory missing or torn",
            remediation=(
                "loads do not depend on it, but GC and tooling do; run "
                "`orpheus recover` to rebuild directory.json"
            ),
            data=data,
        )

    return ProbeResult(
        probe="page_store_health",
        severity=OK,
        summary=(
            f"{len(files)} page file(s), all referenced pages present, "
            f"{data['pages_checked']} checksum-verified"
        ),
        data=data,
    )


def probe_buffer_pool(root: str | None = None) -> ProbeResult:
    """Buffer-pool budget pressure: a pool that evicts almost as often
    as it faults is thrashing — the budget is too small for the working
    set the workload actually touches."""
    from repro.pagestore.bufferpool import BUFFER_BYTES_ENV, get_pool

    stats = get_pool().stats()
    data = dict(stats)
    traffic = stats["faults"] + stats["hits"]
    if traffic == 0:
        return ProbeResult(
            probe="buffer_pool",
            severity=OK,
            summary=(
                f"pool idle (budget "
                f"{stats['budget_bytes'] // (1024 * 1024)} MiB)"
            ),
            data=data,
        )
    if stats["dirty_bytes"] > 0:
        return ProbeResult(
            probe="buffer_pool",
            severity=WARN,
            summary=(
                f"{stats['dirty_bytes']} dirty byte(s) resident outside "
                f"a save — a write-back did not complete"
            ),
            remediation="run `orpheus recover`; dirty pages never evict "
            "and will pin the budget down until cleared",
            data=data,
        )
    if (
        stats["evictions"] > 0
        and stats["faults"] > 0
        and stats["evictions"] >= 0.5 * stats["faults"]
    ):
        return ProbeResult(
            probe="buffer_pool",
            severity=WARN,
            summary=(
                f"pool thrashing: {stats['evictions']} evictions against "
                f"{stats['faults']} faults "
                f"(hit rate {stats['hit_rate']:.0%})"
            ),
            remediation=(
                f"the working set exceeds the budget; raise "
                f"{BUFFER_BYTES_ENV} (currently "
                f"{stats['budget_bytes']} bytes) or pin fewer keys"
            ),
            data=data,
        )
    return ProbeResult(
        probe="buffer_pool",
        severity=OK,
        summary=(
            f"hit rate {stats['hit_rate']:.0%} over {traffic} access(es), "
            f"{stats['resident_pages']} page(s) resident"
        ),
        data=data,
    )


# ----------------------------------------------------------------------
def run_doctor(orpheus, root: str | None = None) -> DoctorReport:
    """Run every probe against one repository."""
    with telemetry.span("observe.doctor"):
        report = DoctorReport()
        report.results.extend(probe_checkout_cost(orpheus))
        report.results.extend(probe_partition_imbalance(orpheus))
        report.results.extend(probe_delta_chains(orpheus))
        report.results.extend(probe_orphaned_versions(orpheus))
        report.results.append(probe_stale_staging(orpheus))
        report.results.append(probe_telemetry_accumulator(root))
        report.results.append(probe_journal(orpheus, root))
        report.results.append(probe_state_integrity(root))
        report.results.append(probe_backup_freshness(root))
        report.results.append(probe_lock_health(root))
        report.results.append(probe_pending_intents(root))
        report.results.append(probe_service_health(root))
        report.results.append(probe_service_faults(root))
        report.results.append(probe_slow_requests(root))
        report.results.append(probe_flight_recorder(root))
        report.results.append(probe_heat_skew(orpheus, root))
        report.results.append(probe_io_amplification(orpheus, root))
        report.results.append(probe_page_store(root))
        report.results.append(probe_buffer_pool(root))
        report.results.append(probe_perf_baselines(root))
        telemetry.count("observe.doctor.runs")
        telemetry.count(
            "observe.doctor.failures",
            sum(1 for r in report.results if r.severity == FAIL),
        )
        return report
