"""Read/write amplification: what storage work did a command really do?

EXPLAIN (:mod:`repro.observe.explain`) predicts I/O; the cost
accountant (:mod:`repro.relational.costs`) measures it. This module
closes the loop by normalizing the measurement: **read amplification**
is rows (or bytes) actually scanned divided by the rows the requested
version contains — the factor a perfect layout would hold at 1.0 —
and **write amplification** is rows physically written divided by rows
committed. Both are computed per command and per data model from the
heat model's sample sums (:class:`repro.observe.heat.HeatAccountant`),
so the same numbers come out of live accounting and offline flight
mining.

For partitioned stores the observed per-checkout scan is also compared
against the LyreSplit bound: Chapter 5 proves the chosen partitioning
keeps the *expected* checkout within (1+δ) of optimal; the
:func:`bound_comparison` report says whether the *observed* workload
stayed inside it.
"""

from __future__ import annotations

from repro.observe.heat import HeatAccountant, amp_budget


def _sample_factors(sample: dict) -> dict:
    """One (model, command) sample -> amplification factors."""
    out: dict = {
        "events": sample["events"],
        "rows_requested": sample["rows_requested"],
        "rows_returned": sample["rows_returned"],
        "rows_scanned": sample["rows_scanned"],
        "bytes_scanned": sample["bytes_scanned"],
        "rows_written": sample["rows_written"],
        "bytes_written": sample["bytes_written"],
        "read_amplification": None,
        "write_amplification": None,
    }
    if sample["rows_requested"] > 0:
        out["read_amplification"] = round(
            sample["rows_scanned"] / sample["rows_requested"], 4
        )
        if sample["rows_written"]:
            out["write_amplification"] = round(
                sample["rows_written"] / sample["rows_requested"], 4
            )
    return out


def amplification_report(heat: HeatAccountant) -> dict:
    """``{model: {command: factors}}`` over everything observed so far.

    ``read_amplification`` below 1.0 is real, not an error: the version
    cache (and commit-time record dedup) can answer a request while
    scanning *fewer* rows than the version holds.
    """
    report: dict = {}
    for key, sample in sorted(heat.samples.items()):
        model, _, command = key.partition("|")
        report.setdefault(model, {})[command] = _sample_factors(sample)
    return report


def checkout_amplification(heat: HeatAccountant, model: str) -> float | None:
    """The observed checkout read-amplification factor for one model."""
    sample = heat.samples.get(f"{model}|checkout")
    if not sample or sample["rows_requested"] <= 0:
        return None
    return sample["rows_scanned"] / sample["rows_requested"]


def bound_comparison(orpheus, heat: HeatAccountant) -> list[dict]:
    """Observed per-checkout scan vs. the LyreSplit checkout-cost bound,
    per dataset.

    For a partitioned store the bound is (1+δ*)·C*_avg (LyreSplit rerun
    under the live budget); for monolithic models there is no proved
    bound, so the row reports the observed amplification against the
    configured ``ORPHEUS_AMP_BUDGET`` instead.
    """
    from repro.core.errors import CVDError

    rows: list[dict] = []
    if orpheus is None:
        return rows
    budget = amp_budget()
    for dataset in sorted(heat.datasets):
        try:
            cvd = orpheus.cvd(dataset)
        except (KeyError, ValueError, CVDError):
            continue
        model = cvd.model.model_name
        sample = heat.samples.get(f"{model}|checkout")
        entry = {
            "dataset": dataset,
            "model": model,
            "checkouts": sample["events"] if sample else 0,
            "observed_rows_per_checkout": (
                round(sample["rows_scanned"] / sample["events"], 2)
                if sample and sample["events"]
                else None
            ),
        }
        store = cvd.model
        if hasattr(store, "best_partitioning"):
            try:
                _target, best = store.best_partitioning()
                delta = getattr(store, "_delta_star", 0.0)
                entry["bound_rows_per_checkout"] = round(
                    (1.0 + delta) * best, 2
                )
                entry["delta_star"] = round(delta, 4)
                observed = entry["observed_rows_per_checkout"]
                entry["within_bound"] = (
                    observed is None
                    or observed <= entry["bound_rows_per_checkout"] + 1e-9
                )
            except Exception:
                entry["bound_rows_per_checkout"] = None
                entry["within_bound"] = None
        else:
            amp = checkout_amplification(heat, model)
            entry["read_amplification"] = (
                None if amp is None else round(amp, 4)
            )
            entry["amp_budget"] = budget
            entry["within_bound"] = amp is None or amp <= budget
        rows.append(entry)
    return rows
