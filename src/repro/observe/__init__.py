"""repro.observe — the introspection layer over the telemetry primitives.

PR 1 made the system *measurable* (spans, counters, histograms); this
package makes it *explainable*:

* :mod:`repro.observe.explain` — EXPLAIN plan/cost trees for checkout,
  commit, diff, and VQuel queries, with an analyze mode that folds
  actual per-node timings back in from the span tree;
* :mod:`repro.observe.doctor` — storage-health probes (checkout-cost
  ratio vs. the LyreSplit bound, partition imbalance, delta-chain
  lengths, orphaned versions, stale staging, telemetry size, journal
  integrity), each with a severity and a remediation hint;
* :mod:`repro.observe.journal` — the append-only, trace-correlated
  operation journal behind ``orpheus log --ops`` and replay-verify;
* :mod:`repro.observe.profile` — self/total-time analysis of profiled
  span trees (``orpheus profile``: hot-span table, folded stacks,
  JSON);
* :mod:`repro.observe.regress` — noise-aware benchmark regression
  gating against ``benchmarks/baselines.json`` (``orpheus bench
  --check`` / ``--update-baseline``).
"""

from repro.observe.doctor import (
    DoctorReport,
    ProbeResult,
    run_doctor,
)
from repro.observe.profile import (
    HotSpan,
    aggregate,
    collapsed_stacks,
    profile_to_dict,
    render_report,
)
from repro.observe.regress import (
    BenchVerdict,
    RegressionReport,
    check_payload,
    compare,
    load_baseline,
    write_baseline,
)
from repro.observe.explain import (
    ExplainNode,
    attach_actuals,
    io_cost,
    run_with_actuals,
)
from repro.observe.journal import (
    Journal,
    MUTATING_COMMANDS,
    OpRecord,
    make_record,
    new_trace_id,
    verify_journal,
)

__all__ = [
    "BenchVerdict",
    "DoctorReport",
    "ExplainNode",
    "HotSpan",
    "Journal",
    "MUTATING_COMMANDS",
    "OpRecord",
    "ProbeResult",
    "RegressionReport",
    "aggregate",
    "attach_actuals",
    "check_payload",
    "collapsed_stacks",
    "compare",
    "io_cost",
    "load_baseline",
    "make_record",
    "new_trace_id",
    "profile_to_dict",
    "render_report",
    "run_doctor",
    "run_with_actuals",
    "verify_journal",
    "write_baseline",
]
