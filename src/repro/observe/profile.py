"""``orpheus profile`` — self/total analysis of a profiled span tree.

Takes the root :class:`~repro.telemetry.spans.SpanNode` an invocation
produced and renders it three ways:

* :func:`render_report` — the span tree (with CPU and peak-memory
  columns when profiling was on) followed by a top-N hot-span table
  ranked by *self* time (time inside a span minus its children);
* :func:`collapsed_stacks` — one ``a;b;c <value>`` line per unique
  stack, the folded format external flamegraph tools
  (``flamegraph.pl``, speedscope, inferno) consume directly; the value
  is self time in microseconds;
* :func:`profile_to_dict` — machine-readable (``--json``).

Self time is clamped at zero: a parent whose children overlap it
entirely (timer granularity) never reports negative self time. Total
time per span name counts only top-most occurrences of that name, so
recursive spans are not double-counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class HotSpan:
    """Aggregate of every occurrence of one span name."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    self_cpu_ns: int = 0
    mem_peak_bytes: int = 0
    profiled: bool = field(default=False)

    def to_dict(self) -> dict:
        row = {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
        }
        if self.profiled:
            row["self_cpu_s"] = self.self_cpu_ns / 1e9
            row["mem_peak_bytes"] = self.mem_peak_bytes
        return row


def _self_seconds(node) -> float:
    duration = node.duration_s or 0.0
    children = sum(child.duration_s or 0.0 for child in node.children)
    return max(0.0, duration - children)


def _self_cpu_ns(node) -> int:
    if node.profile is None:
        return 0
    own = node.profile.get("cpu_ns", 0)
    children = sum(
        child.profile.get("cpu_ns", 0)
        for child in node.children
        if child.profile is not None
    )
    return max(0, own - children)


def aggregate(root) -> list[HotSpan]:
    """Per-name aggregates over the tree, ranked by self time."""
    rows: dict[str, HotSpan] = {}

    def walk(node, active: frozenset) -> None:
        row = rows.setdefault(node.name, HotSpan(node.name))
        row.calls += 1
        if node.name not in active:  # top-most of a recursive chain
            row.total_s += node.duration_s or 0.0
        row.self_s += _self_seconds(node)
        if node.profile is not None:
            row.profiled = True
            row.self_cpu_ns += _self_cpu_ns(node)
            row.mem_peak_bytes = max(
                row.mem_peak_bytes, node.profile.get("mem_peak_bytes", 0)
            )
        child_active = active | {node.name}
        for child in node.children:
            walk(child, child_active)

    walk(root, frozenset())
    return sorted(rows.values(), key=lambda r: r.self_s, reverse=True)


def _fmt_bytes(value: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return (
                f"{value}{unit}"
                if unit == "B"
                else f"{value:.1f}{unit}"
            )
        value /= 1024
    return f"{value:.1f}GB"


def render_hot_table(root, top: int = 15) -> str:
    """The top-N hot spans by self time, as a fixed-width table."""
    rows = aggregate(root)[:top]
    profiled = any(row.profiled for row in rows)
    wall = root.duration_s or 0.0
    headers = ["span", "calls", "total_s", "self_s", "self%"]
    if profiled:
        headers += ["cpu_s", "peak_mem"]
    table = []
    for row in rows:
        pct = f"{row.self_s / wall:6.1%}" if wall > 0 else "     -"
        line = [
            row.name,
            str(row.calls),
            f"{row.total_s:.6f}",
            f"{row.self_s:.6f}",
            pct,
        ]
        if profiled:
            line += [
                f"{row.self_cpu_ns / 1e9:.6f}" if row.profiled else "-",
                _fmt_bytes(row.mem_peak_bytes) if row.profiled else "-",
            ]
        table.append(line)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in table), default=0))
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for line in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def render_report(root, top: int = 15) -> str:
    """Tree plus hot-span table — the default ``orpheus profile`` output."""
    return (
        root.render()
        + "\n\nhot spans (by self time)\n"
        + render_hot_table(root, top)
        + "\n"
    )


def collapsed_stacks(root) -> str:
    """Folded-stack output: ``name;child;... <self_us>`` per line.

    Compatible with flamegraph.pl / inferno / speedscope ("folded"
    format). Lines with zero self time are kept only if they are
    leaves, so the totals still add up to the root duration.
    """
    folded: dict[str, int] = {}

    def walk(node, stack: tuple) -> None:
        stack = stack + (node.name.replace(";", "_"),)
        self_us = int(round(_self_seconds(node) * 1e6))
        if self_us > 0 or not node.children:
            key = ";".join(stack)
            folded[key] = folded.get(key, 0) + self_us
        for child in node.children:
            walk(child, stack)

    walk(root, ())
    return "\n".join(f"{key} {value}" for key, value in folded.items()) + "\n"


def profile_to_dict(root, top: int = 15) -> dict:
    return {
        "tree": root.to_dict(),
        "hot_spans": [row.to_dict() for row in aggregate(root)[:top]],
    }


def profile_to_json(root, top: int = 15, indent: int | None = 2) -> str:
    return json.dumps(profile_to_dict(root, top), indent=indent, sort_keys=True)
