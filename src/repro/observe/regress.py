"""Noise-aware benchmark regression gating.

Compares a benchmark run (the payload ``benchmarks/runner.py`` emits as
``BENCH_<sha>.json``) against a committed baseline
(``benchmarks/baselines.json``) and classifies every bench:

* ``ok`` — within tolerance of the baseline;
* ``regression`` — slower than baseline by more than the relative
  tolerance AND the absolute floor (both must trip: the floor keeps
  microsecond-scale benches from flagging on scheduler noise, the
  relative tolerance keeps second-scale benches honest);
* ``improvement`` — faster by the same margins (suggests a baseline
  update so future regressions are measured from the new level);
* ``new`` — bench has no baseline entry yet;
* ``removed`` — baseline entry has no bench in this run (suppressed
  for filtered/partial runs);
* ``skipped`` — unusable numbers (NaN, zero or negative time) on
  either side; never a regression, always called out.

The default tolerance is ±10% relative with a 2 ms absolute floor —
the ≤10% jitter band a laptop-scale run exhibits — and a baseline file
may override both for its whole suite.

``orpheus bench --check`` exits non-zero iff at least one verdict is
``regression``; ``orpheus bench --update-baseline`` rewrites the
baseline from the run's medians.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Relative slowdown tolerated before a bench is called a regression.
DEFAULT_REL_TOL = 0.10
#: Absolute wall-second delta below which differences are noise.
DEFAULT_ABS_FLOOR_S = 0.002

BASELINE_KIND = "orpheus-bench-baseline"
#: Must match benchmarks.runner.BENCH_SCHEMA_VERSION (kept numeric and
#: duplicated here so src/ never imports the benchmarks package).
BASELINE_SCHEMA_VERSION = 1

OK = "ok"
REGRESSION = "regression"
IMPROVEMENT = "improvement"
NEW = "new"
REMOVED = "removed"
SKIPPED = "skipped"


@dataclass
class BenchVerdict:
    """Comparison outcome for one bench name."""

    name: str
    verdict: str
    baseline_s: float | None = None
    current_s: float | None = None
    detail: str = ""

    @property
    def ratio(self) -> float | None:
        if (
            self.baseline_s is None
            or self.current_s is None
            or self.baseline_s <= 0
        ):
            return None
        return self.current_s / self.baseline_s

    def to_dict(self) -> dict:
        record = {"name": self.name, "verdict": self.verdict}
        if self.baseline_s is not None:
            record["baseline_s"] = self.baseline_s
        if self.current_s is not None:
            record["current_s"] = self.current_s
        if self.ratio is not None:
            record["ratio"] = round(self.ratio, 4)
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class RegressionReport:
    """All verdicts plus suite-level notes."""

    verdicts: list[BenchVerdict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    rel_tol: float = DEFAULT_REL_TOL
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S

    def _count(self, kind: str) -> int:
        return sum(1 for v in self.verdicts if v.verdict == kind)

    @property
    def has_regressions(self) -> bool:
        return self._count(REGRESSION) > 0

    @property
    def exit_code(self) -> int:
        return 1 if self.has_regressions else 0

    def to_dict(self) -> dict:
        return {
            "rel_tol": self.rel_tol,
            "abs_floor_s": self.abs_floor_s,
            "regressions": self._count(REGRESSION),
            "improvements": self._count(IMPROVEMENT),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"regression check (rel_tol ±{self.rel_tol:.0%}, "
            f"abs floor {self.abs_floor_s * 1000:g} ms)"
        ]
        for v in sorted(self.verdicts, key=lambda v: v.name):
            base = f"{v.baseline_s:.6f}s" if v.baseline_s is not None else "-"
            cur = f"{v.current_s:.6f}s" if v.current_s is not None else "-"
            ratio = f" ({v.ratio:.2f}x)" if v.ratio is not None else ""
            detail = f"  {v.detail}" if v.detail else ""
            lines.append(
                f"[{v.verdict.upper():<11}] {v.name:<40} "
                f"base={base} now={cur}{ratio}{detail}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(
            f"verdict: {self._count(REGRESSION)} regression(s), "
            f"{self._count(IMPROVEMENT)} improvement(s), "
            f"{self._count(NEW)} new, {self._count(REMOVED)} removed"
        )
        if self._count(IMPROVEMENT) or self._count(NEW):
            lines.append(
                "hint: run `orpheus bench --update-baseline` to adopt "
                "the new numbers"
            )
        return "\n".join(lines) + "\n"


def _usable(value) -> bool:
    return (
        isinstance(value, (int, float))
        and math.isfinite(value)
        and value > 0
    )


def _bench_wall(entry: dict) -> float | None:
    """Median wall seconds from either a run record (nested dict) or a
    baseline record (flat float)."""
    wall = entry.get("wall_s")
    if isinstance(wall, dict):
        wall = wall.get("median")
    return wall


def compare(
    baseline_benches: dict,
    current_benches: dict,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    partial: bool = False,
) -> RegressionReport:
    """Classify every bench in the union of the two sets.

    ``partial`` marks a filtered run: baseline entries absent from the
    run are then expected and not reported as ``removed``.
    """
    report = RegressionReport(rel_tol=rel_tol, abs_floor_s=abs_floor_s)
    for name in sorted(set(baseline_benches) | set(current_benches)):
        base_entry = baseline_benches.get(name)
        cur_entry = current_benches.get(name)
        if base_entry is None:
            report.verdicts.append(
                BenchVerdict(
                    name,
                    NEW,
                    current_s=_bench_wall(cur_entry),
                    detail="no baseline entry yet",
                )
            )
            continue
        if cur_entry is None:
            if not partial:
                report.verdicts.append(
                    BenchVerdict(
                        name,
                        REMOVED,
                        baseline_s=_bench_wall(base_entry),
                        detail="baseline entry has no bench in this run",
                    )
                )
            continue
        base = _bench_wall(base_entry)
        cur = _bench_wall(cur_entry)
        if not _usable(base) or not _usable(cur):
            report.verdicts.append(
                BenchVerdict(
                    name,
                    SKIPPED,
                    baseline_s=base if isinstance(base, (int, float)) else None,
                    current_s=cur if isinstance(cur, (int, float)) else None,
                    detail="unusable timing (NaN, zero, or negative)",
                )
            )
            continue
        delta = cur - base
        if delta > base * rel_tol and delta > abs_floor_s:
            verdict = REGRESSION
            detail = f"+{delta / base:.1%} over baseline"
        elif -delta > base * rel_tol and -delta > abs_floor_s:
            verdict = IMPROVEMENT
            detail = f"{delta / base:.1%} under baseline"
        else:
            verdict = OK
            detail = ""
        report.verdicts.append(
            BenchVerdict(
                name, verdict, baseline_s=base, current_s=cur, detail=detail
            )
        )
    return report


def load_baseline(path: Path | str) -> dict | None:
    """Parse a baseline file; None when absent. Raises ValueError on a
    file that exists but is not a baseline payload."""
    path = Path(path)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "benches" not in data:
        raise ValueError(f"{path} is not a bench baseline file")
    return data


def baseline_from_payload(payload: dict) -> dict:
    """Distill a run payload into a committed-baseline document (flat
    medians only — sample lists and counters stay in the history files)."""
    benches = {}
    for name, record in sorted(payload.get("benches", {}).items()):
        entry = {"wall_s": _bench_wall(record)}
        cpu = record.get("cpu_s")
        if isinstance(cpu, dict):
            cpu = cpu.get("median")
        if cpu is not None:
            entry["cpu_s"] = cpu
        benches[name] = entry
    return {
        "kind": BASELINE_KIND,
        "schema_version": payload.get(
            "schema_version", BASELINE_SCHEMA_VERSION
        ),
        "git_sha": payload.get("git_sha", "unknown"),
        "created_at": time.time(),
        "rel_tol": DEFAULT_REL_TOL,
        "abs_floor_s": DEFAULT_ABS_FLOOR_S,
        "benches": benches,
    }


def write_baseline(path: Path | str, payload: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(baseline_from_payload(payload), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def check_payload(
    payload: dict,
    baseline_path: Path | str,
    partial: bool = False,
) -> RegressionReport:
    """The ``orpheus bench --check`` entry: compare a run payload with
    the baseline file, folding file-level problems into report notes."""
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError) as error:
        report = RegressionReport()
        report.notes.append(f"baseline unreadable: {error}")
        report.verdicts.extend(
            BenchVerdict(name, NEW, current_s=_bench_wall(entry))
            for name, entry in sorted(payload.get("benches", {}).items())
        )
        return report
    if baseline is None:
        report = compare({}, payload.get("benches", {}), partial=partial)
        report.notes.append(
            f"no baseline at {baseline_path}; every bench is new — "
            f"run `orpheus bench --update-baseline` to create one"
        )
        return report
    rel_tol = baseline.get("rel_tol", DEFAULT_REL_TOL)
    abs_floor = baseline.get("abs_floor_s", DEFAULT_ABS_FLOOR_S)
    base_version = baseline.get("schema_version")
    run_version = payload.get("schema_version")
    if base_version != run_version:
        report = RegressionReport(rel_tol=rel_tol, abs_floor_s=abs_floor)
        report.notes.append(
            f"baseline schema_version {base_version} != run "
            f"schema_version {run_version}; timings not compared — "
            f"run `orpheus bench --update-baseline`"
        )
        return report
    report = compare(
        baseline.get("benches", {}),
        payload.get("benches", {}),
        rel_tol=rel_tol,
        abs_floor_s=abs_floor,
        partial=partial,
    )
    return report
