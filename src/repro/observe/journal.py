"""The append-only operation journal: what happened to this repository.

Every mutating ``orpheus`` command (init/commit/checkout/optimize/drop)
appends exactly one JSON line to ``.orpheus/journal/ops.jsonl`` — success
*or* failure — carrying a trace id that is also stamped on the command's
root telemetry span, so a journal entry, its metrics, and its span tree
correlate. The journal is the durable "what happened" record DataHub-style
collaborative versioning needs: who ran what, against which versions,
producing which version, touching how many rows, and (for failures) why.

``orpheus log --ops`` renders it; ``orpheus log --ops --verify`` replays
the journal against the live version graph and reports divergence
(journaled versions missing from the graph, parent mismatches, record
counts drifting, datasets that should or should not exist).
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry

JOURNAL_DIR = "journal"
JOURNAL_FILE = "ops.jsonl"

#: CLI commands that mutate repository state and therefore journal.
MUTATING_COMMANDS = frozenset(
    {"init", "commit", "checkout", "optimize", "drop"}
)

#: Everything that journals: the mutations plus the read-only commands
#: whose invocations matter for collaborative audit (who queried or
#: compared what). ``diff`` and ``run`` journal but take no intent
#: record and no exclusive lock — they cannot tear.
JOURNALED_COMMANDS = MUTATING_COMMANDS | frozenset({"diff", "run"})


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id for one CLI invocation."""
    return uuid.uuid4().hex[:16]


@dataclass
class OpRecord:
    """One journal line. All fields JSON-scalar so lines stay greppable."""

    trace_id: str
    command: str
    status: str  # "ok" | "error"
    ts: float
    user: str = ""
    #: Daemon session that issued the command (None for CLI-local ops).
    session_id: int | None = None
    dataset: str | None = None
    input_versions: list[int] = field(default_factory=list)
    output_version: int | None = None
    rows: int | None = None
    duration_s: float | None = None
    error_type: str | None = None
    error_message: str | None = None

    def to_dict(self) -> dict:
        record = {
            "trace_id": self.trace_id,
            "command": self.command,
            "status": self.status,
            "ts": self.ts,
            "user": self.user,
        }
        if self.session_id is not None:
            record["session_id"] = self.session_id
        if self.dataset is not None:
            record["dataset"] = self.dataset
        if self.input_versions:
            record["input_versions"] = list(self.input_versions)
        if self.output_version is not None:
            record["output_version"] = self.output_version
        if self.rows is not None:
            record["rows"] = self.rows
        if self.duration_s is not None:
            record["duration_s"] = self.duration_s
        if self.error_type is not None:
            record["error"] = {
                "type": self.error_type,
                "message": self.error_message or "",
            }
        return record


class Journal:
    """Reader/writer for one repository's operation journal."""

    def __init__(self, root: str | None = None) -> None:
        self.path = (
            Path(root or ".") / ".orpheus" / JOURNAL_DIR / JOURNAL_FILE
        )

    def append(self, record: OpRecord | dict) -> None:
        """Append one record as a single JSON line (atomic at the
        line level: one ``write`` call of one ``\\n``-terminated line)."""
        from repro.resilience import failpoints

        payload = record.to_dict() if isinstance(record, OpRecord) else record
        line = json.dumps(payload, sort_keys=True, default=str) + "\n"
        failpoints.fire("journal.before_append")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        failpoints.fire("journal.after_append")

    def read(self) -> list[dict]:
        """All well-formed records, oldest first. Malformed lines (e.g. a
        torn tail write) are skipped, not fatal."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def render_text(self, records: list[dict] | None = None) -> str:
        records = self.read() if records is None else records
        if not records:
            return "no operations journaled\n"
        lines = []
        for record in records:
            status = record.get("status", "?")
            flag = "" if status == "ok" else " [FAILED]"
            bits = [
                f"{record.get('trace_id', '-'):<16}",
                f"{record.get('command', '?'):<9}",
            ]
            if record.get("dataset"):
                bits.append(f"d={record['dataset']}")
            if record.get("input_versions"):
                versions = ",".join(map(str, record["input_versions"]))
                bits.append(f"in=[{versions}]")
            if record.get("output_version") is not None:
                bits.append(f"out=v{record['output_version']}")
            if record.get("rows") is not None:
                bits.append(f"rows={record['rows']}")
            if record.get("user"):
                bits.append(f"by={record['user']}")
            if record.get("session_id") is not None:
                bits.append(f"sid={record['session_id']}")
            error = record.get("error")
            if error:
                bits.append(f"error={error.get('type')}: {error.get('message')}")
            lines.append("  ".join(bits) + flag)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Replay-verify
# ----------------------------------------------------------------------
def journal_expected_state(
    records: list[dict],
) -> tuple[dict[str, dict[int, tuple[tuple[int, ...], int | None]]], set[str]]:
    """Replay the successful records into the expected repository shape.

    Returns ``(expected, alive)``: per dataset, the versions the journal
    says exist (with parents and row counts), and the set of datasets
    the journal says are live. Shared by :func:`verify_journal` and the
    crash-recovery reconciler in :mod:`repro.resilience.recovery`.
    """
    expected: dict[str, dict[int, tuple[tuple[int, ...], int | None]]] = {}
    alive: set[str] = set()
    for record in records:
        if record.get("status") != "ok":
            continue
        command = record.get("command")
        dataset = record.get("dataset")
        if dataset is None:
            continue
        if command == "init":
            expected[dataset] = {}
            alive.add(dataset)
            vid = record.get("output_version")
            if vid:
                expected[dataset][vid] = ((), record.get("rows"))
        elif command == "commit":
            vid = record.get("output_version")
            if vid is None:
                continue  # malformed; verify_journal reports it
            parents = tuple(record.get("input_versions", ()))
            expected.setdefault(dataset, {})[vid] = (
                parents,
                record.get("rows"),
            )
            alive.add(dataset)
        elif command == "drop":
            alive.discard(dataset)
            expected.pop(dataset, None)
    return expected, alive


def verify_journal(orpheus, records: list[dict]) -> list[str]:
    """Cross-check journal records against the live version graph.

    Replays the successful dataset-mutating records to reconstruct the
    expected state (datasets alive, versions committed with which parents
    and row counts) and compares it against ``orpheus``. Returns a list
    of human-readable divergence descriptions; empty means the journal
    and the graph agree.
    """
    divergences: list[str] = []
    for record in records:
        if (
            record.get("status") == "ok"
            and record.get("command") == "commit"
            and record.get("dataset") is not None
            and record.get("output_version") is None
        ):
            divergences.append(
                f"journal: commit on {record['dataset']!r} lacks "
                f"output_version"
            )
    expected, alive = journal_expected_state(records)

    live = set(orpheus.ls())
    for dataset in sorted(alive - live):
        divergences.append(
            f"dataset {dataset!r} journaled as live but absent from the store"
        )
    for dataset in sorted(alive & live):
        cvd = orpheus.cvd(dataset)
        graph_vids = set(cvd.versions.vids())
        journal_vids = set(expected.get(dataset, ()))
        for vid in sorted(journal_vids - graph_vids):
            divergences.append(
                f"{dataset!r}: journaled version {vid} missing from the "
                f"version graph"
            )
        for vid in sorted(graph_vids - journal_vids):
            divergences.append(
                f"{dataset!r}: version {vid} exists in the graph but was "
                f"never journaled"
            )
        for vid in sorted(journal_vids & graph_vids):
            parents, rows = expected[dataset][vid]
            metadata = cvd.versions.get(vid)
            if tuple(parents) != tuple(metadata.parents):
                divergences.append(
                    f"{dataset!r} v{vid}: journaled parents "
                    f"{list(parents)} != graph parents "
                    f"{list(metadata.parents)}"
                )
            if rows is not None and rows != metadata.record_count:
                divergences.append(
                    f"{dataset!r} v{vid}: journaled {rows} rows != "
                    f"graph record_count {metadata.record_count}"
                )
    return divergences


def make_record(
    trace_id: str,
    command: str,
    user: str = "",
) -> OpRecord:
    """A fresh record stamped with the telemetry clock, to be filled in
    as the command executes and appended at the CLI boundary."""
    return OpRecord(
        trace_id=trace_id,
        command=command,
        status="ok",
        ts=telemetry.now(),
        user=user,
    )
