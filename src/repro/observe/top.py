"""``orpheus top`` — a live terminal dashboard for a running daemon.

Polls the daemon's ``stats`` protocol op and renders per-op throughput
(rates are deltas between consecutive polls), latency percentiles with
the queue-wait/execute split, queue depths, cache efficiency, and the
busiest sessions — the glanceable answer to "what is the daemon doing
right now", without log spelunking. When the daemon has folded access
events, a heat section shows per-dataset decayed heat, partition
touches, scan volume, and checkout read amplification.

``run_top`` is test-friendly: ``once=True`` prints a single frame with
no screen clearing, ``as_json=True`` dumps the raw stats payload, and
``iterations`` bounds the loop.
"""

from __future__ import annotations

import json
import sys
import time


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    ms = seconds * 1000.0
    if ms >= 1000:
        return f"{ms / 1000.0:.2f}s"
    if ms >= 100:
        return f"{ms:.0f}ms"
    return f"{ms:.1f}ms"


def _fmt_bytes(count) -> str:
    value = float(count or 0)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"


def _rate(current: int, previous: int, interval: float) -> str:
    if interval <= 0:
        return "-"
    return f"{max(0, current - previous) / interval:.1f}/s"


def detect_restart(prev: dict | None, stats: dict) -> bool:
    """True when ``stats`` comes from a different daemon incarnation
    than ``prev`` — the boot id changed, or the monotonic request total
    went backwards (an older daemon without boot ids restarted). Rates
    computed across a restart are garbage; the caller must discard
    ``prev`` so the dashboard restarts its deltas from zero."""
    if not prev:
        return False
    prev_boot = prev.get("server", {}).get("boot_id")
    boot = stats.get("server", {}).get("boot_id")
    if prev_boot and boot and prev_boot != boot:
        return True
    prev_total = prev.get("requests", {}).get("total", 0)
    return stats.get("requests", {}).get("total", 0) < prev_total


def render_frame(
    stats: dict,
    prev: dict | None = None,
    interval: float = 2.0,
    restarted: bool = False,
) -> str:
    """One dashboard frame from a ``stats`` payload (and the previous
    poll's payload, for rates). ``restarted=True`` flags that the
    daemon was restarted since the last poll (pass ``prev=None`` with
    it — the old counters no longer relate to these)."""
    prev = prev or {}
    server = stats.get("server", {})
    requests = stats.get("requests", {})
    prev_requests = prev.get("requests", {})
    scheduler = stats.get("scheduler", {})
    cache = stats.get("cache", {})
    sessions = stats.get("sessions", {})
    slow = stats.get("slow", {})
    pool = stats.get("buffer_pool", {})

    lines = [
        (
            f"orpheusd pid {server.get('pid', '?')} · "
            f"uptime {stats.get('uptime_s', 0):.0f}s · "
            f"{'DRAINING' if server.get('draining') else 'serving'}"
            + (" · RESTARTED (rates reset)" if restarted else "")
        ),
        (
            f"requests {requests.get('total', 0)} "
            f"({_rate(requests.get('total', 0), prev_requests.get('total', 0), interval)})"
            f" · errors {requests.get('errors', 0)}"
            f" · busy {requests.get('busy', 0)}"
            f" · slow {requests.get('slow', 0)}"
            + (
                f" (p99 {slow['p99_ms']:.0f}ms logged)"
                if slow.get("p99_ms") is not None
                else ""
            )
        ),
        (
            f"queues  read {scheduler.get('read_queue_depth', 0)}"
            f"/{scheduler.get('read_queue_capacity', '?')}"
            f"  write {scheduler.get('write_queue_depth', 0)}"
            f"/{scheduler.get('write_queue_capacity', '?')}"
            f"  shed {scheduler.get('shed_reads', 0)}r"
            f"/{scheduler.get('shed_writes', 0)}w"
        ),
        (
            f"cache   {cache.get('entries', 0)} entries · "
            f"{_fmt_bytes(cache.get('bytes', 0))} of "
            f"{_fmt_bytes(cache.get('budget_bytes', 0))} · "
            f"hit {cache.get('hit_rate', 0.0):.0%} · "
            f"evictions {cache.get('evictions', 0)}"
        ),
        (
            f"pages   {pool.get('resident_pages', 0)} resident · "
            f"{_fmt_bytes(pool.get('resident_bytes', 0))} of "
            f"{_fmt_bytes(pool.get('budget_bytes', 0))} · "
            f"hit {pool.get('hit_rate', 0.0):.0%} · "
            f"faults {pool.get('faults', 0)} · "
            f"wb {pool.get('writebacks', 0)} · "
            f"pins {len(pool.get('pinned_keys', []))}"
        )
        if pool
        else "pages   (pool idle)",
        "",
        (
            f"{'op':<12} {'count':>7} {'rate':>8} {'p50':>8} {'p95':>8}"
            f" {'p99':>8} {'queue-p95':>10} {'exec-p95':>9} {'busy':>5}"
        ),
    ]
    prev_by_op = prev.get("by_op", {})
    for op, op_stats in sorted(
        stats.get("by_op", {}).items(),
        key=lambda item: -item[1].get("count", 0),
    ):
        latency = op_stats.get("latency", {})
        phases = op_stats.get("phases", {})
        lines.append(
            f"{op:<12} {op_stats.get('count', 0):>7} "
            f"{_rate(op_stats.get('count', 0), prev_by_op.get(op, {}).get('count', 0), interval):>8} "
            f"{_fmt_ms(latency.get('p50_s')):>8} "
            f"{_fmt_ms(latency.get('p95_s')):>8} "
            f"{_fmt_ms(latency.get('p99_s')):>8} "
            f"{_fmt_ms(phases.get('queue_wait', {}).get('p95_s')):>10} "
            f"{_fmt_ms(phases.get('execute', {}).get('p95_s')):>9} "
            f"{op_stats.get('busy', 0):>5}"
        )
    heat = stats.get("heat", {})
    by_dataset = stats.get("by_dataset", {})
    touched = {
        name: entry
        for name, entry in by_dataset.items()
        if entry.get("heat") is not None
        or entry.get("partition_touches")
    }
    if heat.get("events_total") or touched:
        lines.append("")
        lines.append(
            f"heat    {heat.get('events_total', 0)} events · "
            f"{heat.get('partition_touches_total', 0)} partition touches · "
            f"scanned {_fmt_bytes(heat.get('bytes_scanned_total', 0))} · "
            f"half-life {heat.get('half_life_s', 0):g}s"
        )
    if touched:
        lines.append(
            f"{'dataset':<16} {'heat':>8} {'touches':>8} {'scan-rows':>10}"
            f" {'scan-bytes':>11} {'read-amp':>9}"
        )
        hottest = sorted(
            touched.items(),
            key=lambda item: -(item[1].get("heat") or 0.0),
        )[:10]
        for name, entry in hottest:
            amp = entry.get("read_amplification")
            lines.append(
                f"{name:<16} {entry.get('heat') or 0.0:>8.2f} "
                f"{entry.get('partition_touches', 0):>8} "
                f"{entry.get('rows_scanned', 0):>10} "
                f"{_fmt_bytes(entry.get('bytes_scanned', 0)):>11} "
                f"{'-' if amp is None else f'{amp:.2f}x':>9}"
            )
    by_session = stats.get("by_session", {})
    if by_session:
        lines.append("")
        lines.append(
            f"{'session':<9} {'user':<12} {'count':>7} {'rate':>8}"
            f" {'busy':>5} {'last op':<10}"
        )
        prev_sessions = prev.get("by_session", {})
        busiest = sorted(
            by_session.items(),
            key=lambda item: -item[1].get("count", 0),
        )[:10]
        active = {
            str(s.get("session_id")): True
            for s in sessions.get("sessions", [])
        }
        for sid, entry in busiest:
            marker = "*" if active.get(sid) else " "
            lines.append(
                f"#{sid:<7}{marker} {entry.get('user') or '-':<12} "
                f"{entry.get('count', 0):>7} "
                f"{_rate(entry.get('count', 0), prev_sessions.get(sid, {}).get('count', 0), interval):>8} "
                f"{entry.get('busy', 0):>5} {entry.get('last_op', '-'):<10}"
            )
        lines.append("(* = session currently connected)")
    return "\n".join(lines) + "\n"


def run_top(
    root: str | None = None,
    interval: float = 2.0,
    iterations: int | None = None,
    once: bool = False,
    as_json: bool = False,
    stream=None,
) -> int:
    """Poll ``stats`` and repaint; returns a CLI exit code.

    Survives a daemon restart mid-session: a failed poll after at
    least one success drops the connection and retries next interval,
    and a counter reset (new boot id, or the monotonic request total
    going backwards) discards the previous sample so rates restart
    from zero instead of rendering garbage deltas."""
    from repro.service.client import ServiceClient, ServiceError

    stream = stream if stream is not None else sys.stdout
    interval = max(0.1, interval)
    prev: dict | None = None
    count = 0
    client: ServiceClient | None = None
    connected_once = False

    def _drop_client() -> None:
        nonlocal client
        if client is not None:
            try:
                client.close()
            except Exception:
                pass
            client = None

    try:
        while True:
            try:
                if client is None:
                    client = ServiceClient(root=root).connect()
                stats = client.stats()
            except (ServiceError, OSError) as error:
                _drop_client()
                count += 1
                out_of_polls = once or (
                    iterations is not None and count >= iterations
                )
                if not connected_once or out_of_polls:
                    sys.stderr.write(f"orpheus top: {error}\n")
                    return 1
                # The daemon is likely restarting; forget the old
                # counters and keep polling.
                prev = None
                time.sleep(interval)
                continue
            connected_once = True
            restarted = detect_restart(prev, stats)
            if restarted:
                prev = None
            if as_json:
                stream.write(
                    json.dumps(stats, indent=2, sort_keys=True) + "\n"
                )
            else:
                frame = render_frame(
                    stats, prev, interval, restarted=restarted
                )
                if not once:
                    stream.write("\x1b[2J\x1b[H")  # clear + home
                stream.write(frame)
            stream.flush()
            prev = stats
            count += 1
            if once or (iterations is not None and count >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    finally:
        _drop_client()
