"""EXPLAIN plan trees for the version-control operations.

Every layer that does real work during ``checkout``/``commit``/``diff``
(and VQuel queries) can describe that work *before* doing it: the CVD
contributes the top of the tree, each data model describes its physical
access path (rlist lookup + join, containment scan, delta-chain walk,
partition dispatch), and the relational cost conventions of
:mod:`repro.relational.costs` supply a device-independent estimated cost
(sequential row touches plus a 10x penalty per random access — the same
weighted-IO scalar the Section 5.5.5 cost-model validation uses).

``--explain`` renders the static plan; ``--explain=analyze`` executes the
operation under an anchor span and folds the *actual* per-node timings
and row counts (sourced from the telemetry span tree) back into the
plan via :func:`attach_actuals`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro import telemetry
from repro.relational.costs import CostSnapshot


def io_cost(seq_rows: int = 0, random_rows: int = 0) -> float:
    """The weighted-IO scalar for an access path, per costs.py."""
    return CostSnapshot(
        seq_rows=seq_rows,
        random_rows=random_rows,
        rows_written=0,
        index_probes=0,
        bytes_read=0,
        bytes_written=0,
    ).weighted_io()


@dataclass
class ExplainNode:
    """One operator in a plan/cost tree.

    Attributes:
        op: Operator name, dotted and layer-prefixed like span names
            (``cvd.checkout``, ``join.hash``, ``partition.dispatch``).
        detail: Operator-specific attributes (model, vid, table names,
            partitions touched/total, chain length, ...).
        estimated_rows: Rows the operator expects to produce or touch.
        estimated_cost: Weighted-IO estimate (:func:`io_cost`).
        actual_rows: Rows actually produced (analyze mode only).
        actual_seconds: Wall time actually spent (analyze mode only).
        span_match: ``(span_name, attrs_subset)`` linking this node to
            the telemetry span that times it, for
            :func:`attach_actuals`.
    """

    op: str
    detail: dict = field(default_factory=dict)
    estimated_rows: int | None = None
    estimated_cost: float | None = None
    actual_rows: int | None = None
    actual_seconds: float | None = None
    span_match: tuple[str, dict] | None = None
    children: list["ExplainNode"] = field(default_factory=list)

    def add(self, child: "ExplainNode") -> "ExplainNode":
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Serialization / rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        node: dict = {"op": self.op}
        if self.detail:
            node["detail"] = dict(self.detail)
        if self.estimated_rows is not None:
            node["estimated_rows"] = self.estimated_rows
        if self.estimated_cost is not None:
            node["estimated_cost"] = round(self.estimated_cost, 4)
        if self.actual_rows is not None:
            node["actual_rows"] = self.actual_rows
        if self.actual_seconds is not None:
            node["actual_seconds"] = self.actual_seconds
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, indent: int = 0) -> str:
        """The text plan tree, one operator per line."""
        parts = [f"{'  ' * indent}{self.op}"]
        if self.detail:
            parts.append(
                " ".join(f"{k}={_fmt_value(v)}" for k, v in self.detail.items())
            )
        estimates = []
        if self.estimated_rows is not None:
            estimates.append(f"rows={self.estimated_rows}")
        if self.estimated_cost is not None:
            estimates.append(f"cost={self.estimated_cost:.1f}")
        if estimates:
            parts.append(f"(est {' '.join(estimates)})")
        actuals = []
        if self.actual_rows is not None:
            actuals.append(f"rows={self.actual_rows}")
        if self.actual_seconds is not None:
            actuals.append(f"time={self.actual_seconds:.6f}s")
        if actuals:
            parts.append(f"[actual {' '.join(actuals)}]")
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op: str) -> "ExplainNode | None":
        for node in self.walk():
            if node.op == op:
                return node
        return None


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(map(str, value)) + "]"
    return str(value)


# ----------------------------------------------------------------------
# Analyze mode
# ----------------------------------------------------------------------
def attach_actuals(plan: ExplainNode, span_root) -> None:
    """Fold span-tree timings/rows into a plan's ``actual_*`` fields.

    Each plan node declaring a ``span_match`` is paired with the first
    unclaimed completed span whose name matches and whose attributes are
    a superset of the node's match attributes; the span's duration and
    its ``rows`` attribute (set by the instrumented layers) become the
    node's actuals.
    """
    spans: list = []

    def flatten(node) -> None:
        spans.append(node)
        for child in node.children:
            flatten(child)

    flatten(span_root)
    claimed: set[int] = set()
    for node in plan.walk():
        if node.span_match is None:
            continue
        name, attrs = node.span_match
        for index, candidate in enumerate(spans):
            if index in claimed or candidate.name != name:
                continue
            if any(candidate.attrs.get(k) != v for k, v in attrs.items()):
                continue
            claimed.add(index)
            node.actual_seconds = candidate.duration_s
            rows = candidate.attrs.get("rows")
            if rows is not None:
                node.actual_rows = rows
            break


def run_with_actuals(plan: ExplainNode, operation: Callable[[], object]):
    """Execute ``operation`` with telemetry on and attach its span tree's
    timings to ``plan``. Returns the operation's result."""
    was_enabled = telemetry.is_enabled()
    telemetry.enable()
    anchor = None
    try:
        with telemetry.span("explain.analyze") as anchor:
            result = operation()
    finally:
        if not was_enabled:
            telemetry.disable()
    if anchor is not None:
        attach_actuals(plan, anchor)
    return result
