"""Artifacts: unregistered dataset versions found in a repository."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class Artifact:
    """One dataset version as found on disk — no versioning metadata.

    Attributes:
        name: File or table name (e.g. ``dataset_v1.csv``).
        columns: Column names in file order.
        rows: The data rows.
        timestamp: File modification time when available; inference uses
            it only to orient edges, never to create them.
    """

    name: str
    columns: list[str]
    rows: list[tuple]
    timestamp: float | None = None

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"artifact {self.name!r}: row arity {len(row)} does "
                    f"not match {len(self.columns)} columns"
                )

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def row_hashes(self) -> frozenset[int]:
        """Order-independent row fingerprints."""
        return frozenset(hash(row) for row in self.rows)

    def column_values(self, name: str) -> list[object]:
        position = self.columns.index(name)
        return [row[position] for row in self.rows]

    def column_fingerprints(self) -> dict[str, frozenset[int]]:
        """Per-column value-set fingerprints, for detecting renames and
        row-preserving updates."""
        result: dict[str, frozenset[int]] = {}
        for position, name in enumerate(self.columns):
            result[name] = frozenset(
                hash(row[position]) for row in self.rows
            )
        return result

    def key_projection(self, key_columns: Sequence[str]) -> frozenset:
        """Row identities under a candidate key (for row-preserving
        operation detection)."""
        positions = [self.columns.index(c) for c in key_columns]
        return frozenset(
            tuple(row[p] for p in positions) for row in self.rows
        )
