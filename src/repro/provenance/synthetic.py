"""Synthetic unregistered repositories with known ground-truth lineage.

The paper's preliminary evaluation (Section 8.8) uses internal notebook
corpora; we synthesize repositories instead: start from a root table and
apply a random mix of row-level operations (insert/delete/update) and
row-preserving schema operations (add/drop/rename column), branching
occasionally, then strip all metadata except optionally-noisy file
timestamps. Ground-truth edges come out alongside the artifacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.provenance.model import Artifact


@dataclass(frozen=True)
class RepositoryConfig:
    """Shape of a synthetic artifact repository.

    Attributes:
        num_artifacts: Versions to generate (including the root).
        base_rows: Rows in the root artifact.
        base_columns: Data columns in the root (plus an ``id`` key).
        ops_per_step: Row operations applied per derivation.
        schema_change_probability: Chance a derivation is a schema
            operation (add/drop/rename column) instead of row edits.
        branch_probability: Chance of deriving from a random earlier
            artifact instead of the latest.
        timestamp_noise: Standard deviation of gaussian noise added to
            timestamps (0 = perfectly ordered).
        drop_timestamps: Strip timestamps entirely (forces containment
            orientation).
        seed: RNG seed.
    """

    num_artifacts: int = 20
    base_rows: int = 200
    base_columns: int = 5
    ops_per_step: int = 20
    schema_change_probability: float = 0.2
    branch_probability: float = 0.25
    timestamp_noise: float = 0.0
    drop_timestamps: bool = False
    seed: int = 42


def generate_repository(
    config: RepositoryConfig,
) -> tuple[list[Artifact], list[tuple[str, str]]]:
    """Returns (artifacts, ground-truth (parent, child) edges)."""
    rng = random.Random(config.seed)
    next_row_id = [0]

    def fresh_row(columns: list[str]) -> tuple:
        next_row_id[0] += 1
        return tuple(
            [f"row{next_row_id[0]:06d}"]
            + [rng.randrange(1_000_000) for _ in columns[1:]]
        )

    columns = ["id"] + [f"c{i}" for i in range(config.base_columns)]
    rows = [fresh_row(columns) for _ in range(config.base_rows)]
    artifacts = [
        Artifact(
            name="dataset_v001.csv",
            columns=list(columns),
            rows=list(rows),
            timestamp=None if config.drop_timestamps else 1000.0,
        )
    ]
    truth: list[tuple[str, str]] = []
    extra_column_counter = [config.base_columns]

    for index in range(2, config.num_artifacts + 1):
        if config.branch_probability > 0 and rng.random() < config.branch_probability:
            parent = rng.choice(artifacts)
        else:
            parent = artifacts[-1]
        child_columns = list(parent.columns)
        child_rows = [tuple(row) for row in parent.rows]

        if rng.random() < config.schema_change_probability and len(child_columns) > 2:
            operation = rng.choice(("add", "drop", "rename"))
            if operation == "add":
                extra_column_counter[0] += 1
                child_columns.append(f"c{extra_column_counter[0]}")
                child_rows = [
                    row + (rng.randrange(1_000_000),) for row in child_rows
                ]
            elif operation == "drop":
                victim = rng.randrange(1, len(child_columns))
                del child_columns[victim]
                child_rows = [
                    row[:victim] + row[victim + 1 :] for row in child_rows
                ]
            else:
                victim = rng.randrange(1, len(child_columns))
                child_columns[victim] = child_columns[victim] + "_renamed"
        else:
            for _ in range(config.ops_per_step):
                roll = rng.random()
                if roll < 0.5 or not child_rows:
                    child_rows.append(fresh_row(child_columns))
                elif roll < 0.8:
                    victim = rng.randrange(len(child_rows))
                    row = list(child_rows[victim])
                    if len(row) > 1:
                        slot = rng.randrange(1, len(row))
                        row[slot] = rng.randrange(1_000_000)
                    child_rows[victim] = tuple(row)
                else:
                    del child_rows[rng.randrange(len(child_rows))]

        timestamp: float | None
        if config.drop_timestamps:
            timestamp = None
        else:
            timestamp = 1000.0 + index * 10.0
            if config.timestamp_noise:
                timestamp += rng.gauss(0.0, config.timestamp_noise)
        child = Artifact(
            name=f"dataset_v{index:03d}.csv",
            columns=child_columns,
            rows=child_rows,
            timestamp=timestamp,
        )
        artifacts.append(child)
        truth.append((parent.name, child.name))

    # Shuffle presentation order: a real directory listing is unordered.
    rng.shuffle(artifacts)
    return artifacts, truth
