"""MinHash sketches for accelerating pairwise similarity (Section 8.6).

Computing exact row-set intersections for all artifact pairs is
quadratic in both artifacts and rows; sketches reduce each artifact to k
hash minima so a pair comparison is O(k). The workflow uses sketches to
*prune* candidate pairs, then computes exact similarity only on the
survivors — estimates never decide edges on their own.
"""

from __future__ import annotations

from dataclasses import dataclass

_MERSENNE = (1 << 61) - 1
_GOLDEN = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class MinHashSketch:
    """k minima of hashed set elements."""

    minima: tuple[int, ...]

    def estimated_jaccard(self, other: "MinHashSketch") -> float:
        if len(self.minima) != len(other.minima):
            raise ValueError("sketch sizes differ")
        if not self.minima:
            return 0.0
        matches = sum(
            1 for a, b in zip(self.minima, other.minima) if a == b
        )
        return matches / len(self.minima)


def _seed_stream(k: int) -> list[int]:
    seeds = []
    value = _GOLDEN
    for _ in range(k):
        value = (value * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        seeds.append(value | 1)
    return seeds


def sketch_of(elements: frozenset[int], k: int = 32) -> MinHashSketch:
    """MinHash sketch of a set of integer fingerprints."""
    seeds = _seed_stream(k)
    minima = []
    for seed in seeds:
        best = _MERSENNE
        for element in elements:
            value = (element * seed + _GOLDEN) % _MERSENNE
            if value < best:
                best = value
        minima.append(best)
    return MinHashSketch(tuple(minima))


def artifact_sketch(artifact, k: int = 32) -> MinHashSketch:
    """Row-set sketch of an artifact."""
    return sketch_of(artifact.row_hashes(), k)


def exact_jaccard(a: frozenset, b: frozenset) -> float:
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union
