"""The generalized provenance manager (Chapter 8).

Removes OrpheusDB's "from-scratch" assumption: given a directory of
dataset versions that were *never* registered with a versioning system —
no parent pointers, no commit metadata — infer the lineage relationships
among them. The workflow (Section 8.3):

1. sketch every artifact (row and column minhashes — Section 8.6's
   acceleration);
2. generate candidate edges by similarity, scoring row-preserving
   operations specially (Section 8.4);
3. orient edges using containment and timestamps;
4. extract a lineage forest as a maximum-weight arborescence;
5. attach a structural explanation to each inferred edge (Section 8.5).
"""

from repro.provenance.evaluate import EdgeMetrics, evaluate_edges
from repro.provenance.explain import Explanation, explain_edge
from repro.provenance.inference import (
    InferenceConfig,
    InferredEdge,
    infer_lineage,
)
from repro.provenance.model import Artifact
from repro.provenance.sketches import MinHashSketch, artifact_sketch

__all__ = [
    "Artifact",
    "EdgeMetrics",
    "Explanation",
    "InferenceConfig",
    "InferredEdge",
    "MinHashSketch",
    "artifact_sketch",
    "evaluate_edges",
    "explain_edge",
    "infer_lineage",
]
