"""Structural explanations for inferred edges (Section 8.5).

Given a (parent, child) artifact pair, describe the transformation that
plausibly produced the child: row insertions/deletions, column additions
and drops, column renames (detected by value-set identity), and
row-preserving value updates under a discovered candidate key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.provenance.model import Artifact


@dataclass
class Explanation:
    """The structural account of one derivation edge.

    Attributes:
        operations: Human-readable operation descriptions, in a canonical
            order.
        rows_inserted / rows_deleted / rows_common: Row-level tallies.
        columns_added / columns_dropped: Schema-level changes.
        columns_renamed: (old_name, new_name) pairs detected by value
            identity.
        row_preserving: True when the child's rows correspond 1-1 to the
            parent's under the discovered key (only cell values and/or
            columns changed).
        key_columns: The candidate key used to align rows, when found.
    """

    operations: list[str] = field(default_factory=list)
    rows_inserted: int = 0
    rows_deleted: int = 0
    rows_common: int = 0
    columns_added: list[str] = field(default_factory=list)
    columns_dropped: list[str] = field(default_factory=list)
    columns_renamed: list[tuple[str, str]] = field(default_factory=list)
    row_preserving: bool = False
    key_columns: tuple[str, ...] = ()


def discover_candidate_key(
    parent: Artifact, child: Artifact
) -> tuple[str, ...]:
    """Find shared columns that are unique in both artifacts.

    Greedy: prefer single-column keys, else grow a composite left to
    right. Returns () when no key can be discovered.
    """
    shared = [c for c in parent.columns if c in child.columns]
    for column in shared:
        if _is_unique(parent, column) and _is_unique(child, column):
            return (column,)
    composite: list[str] = []
    for column in shared:
        composite.append(column)
        if _is_unique_composite(parent, composite) and _is_unique_composite(
            child, composite
        ):
            return tuple(composite)
    return ()


def _is_unique(artifact: Artifact, column: str) -> bool:
    values = artifact.column_values(column)
    return len(set(values)) == len(values)


def _is_unique_composite(artifact: Artifact, columns: list[str]) -> bool:
    positions = [artifact.columns.index(c) for c in columns]
    seen = set()
    for row in artifact.rows:
        key = tuple(row[p] for p in positions)
        if key in seen:
            return False
        seen.add(key)
    return True


def explain_edge(parent: Artifact, child: Artifact) -> Explanation:
    """Explain how ``child`` could derive from ``parent``."""
    explanation = Explanation()

    parent_columns = set(parent.columns)
    child_columns = set(child.columns)
    added = sorted(child_columns - parent_columns)
    dropped = sorted(parent_columns - child_columns)

    # Rename detection: a dropped and an added column with identical
    # value fingerprints are one renamed column.
    parent_prints = parent.column_fingerprints()
    child_prints = child.column_fingerprints()
    renamed: list[tuple[str, str]] = []
    remaining_added = list(added)
    for old in list(dropped):
        for new in list(remaining_added):
            if parent_prints[old] == child_prints[new]:
                renamed.append((old, new))
                dropped.remove(old)
                remaining_added.remove(new)
                break
    added = remaining_added

    explanation.columns_added = added
    explanation.columns_dropped = dropped
    explanation.columns_renamed = renamed

    key = discover_candidate_key(parent, child)
    explanation.key_columns = key
    if key:
        parent_keys = parent.key_projection(key)
        child_keys = child.key_projection(key)
        explanation.rows_common = len(parent_keys & child_keys)
        explanation.rows_inserted = len(child_keys - parent_keys)
        explanation.rows_deleted = len(parent_keys - child_keys)
        explanation.row_preserving = (
            parent_keys == child_keys
        )
    else:
        parent_rows = parent.row_hashes()
        child_rows = child.row_hashes()
        explanation.rows_common = len(parent_rows & child_rows)
        explanation.rows_inserted = len(child_rows - parent_rows)
        explanation.rows_deleted = len(parent_rows - child_rows)
        explanation.row_preserving = False

    # Compose the human-readable operation list.
    if renamed:
        for old, new in renamed:
            explanation.operations.append(f"rename column {old} -> {new}")
    if added:
        explanation.operations.append(
            f"add column(s) {', '.join(added)}"
        )
    if dropped:
        explanation.operations.append(
            f"drop column(s) {', '.join(dropped)}"
        )
    if explanation.rows_inserted:
        explanation.operations.append(
            f"insert {explanation.rows_inserted} row(s)"
        )
    if explanation.rows_deleted:
        explanation.operations.append(
            f"delete {explanation.rows_deleted} row(s)"
        )
    if explanation.row_preserving and key:
        updated = _count_updated_rows(parent, child, key)
        if updated:
            explanation.operations.append(
                f"update {updated} row(s) in place"
            )
        if not explanation.operations:
            explanation.operations.append("identical contents")
    if not explanation.operations:
        explanation.operations.append("row modifications")
    return explanation


def _count_updated_rows(
    parent: Artifact, child: Artifact, key: tuple[str, ...]
) -> int:
    shared = [
        c
        for c in parent.columns
        if c in child.columns and c not in key
    ]
    parent_positions = [parent.columns.index(c) for c in key]
    child_positions = [child.columns.index(c) for c in key]
    parent_shared = [parent.columns.index(c) for c in shared]
    child_shared = [child.columns.index(c) for c in shared]
    child_by_key = {
        tuple(row[p] for p in child_positions): row for row in child.rows
    }
    updated = 0
    for row in parent.rows:
        key_value = tuple(row[p] for p in parent_positions)
        other = child_by_key.get(key_value)
        if other is None:
            continue
        before = tuple(row[p] for p in parent_shared)
        after = tuple(other[p] for p in child_shared)
        if before != after:
            updated += 1
    return updated
