"""Precision/recall evaluation of inferred lineage (Section 8.8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class EdgeMetrics:
    """Precision/recall/F1 over edges, directed and undirected."""

    precision: float
    recall: float
    f1: float
    undirected_precision: float
    undirected_recall: float
    undirected_f1: float
    num_inferred: int
    num_truth: int


def _prf(
    inferred: set, truth: set
) -> tuple[float, float, float]:
    true_positive = len(inferred & truth)
    precision = true_positive / len(inferred) if inferred else 1.0
    recall = true_positive / len(truth) if truth else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def evaluate_edges(
    inferred: Iterable[tuple[str, str]],
    truth: Sequence[tuple[str, str]],
) -> EdgeMetrics:
    """Compare inferred (parent, child) edges against ground truth.

    Directed metrics require the orientation to match; undirected
    metrics credit an edge found with the wrong direction (the paper
    reports both since orientation is the harder sub-problem).
    """
    inferred_set = set(inferred)
    truth_set = set(truth)
    precision, recall, f1 = _prf(inferred_set, truth_set)
    undirected_inferred = {frozenset(edge) for edge in inferred_set}
    undirected_truth = {frozenset(edge) for edge in truth_set}
    u_precision, u_recall, u_f1 = _prf(undirected_inferred, undirected_truth)
    return EdgeMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        undirected_precision=u_precision,
        undirected_recall=u_recall,
        undirected_f1=u_f1,
        num_inferred=len(inferred_set),
        num_truth=len(truth_set),
    )
