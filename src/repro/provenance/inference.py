"""Lineage inference over unregistered artifacts (Sections 8.3-8.4).

Pipeline:

1. **Sketch** every artifact's row set (minhash).
2. **Candidate generation**: pairs whose estimated similarity clears a
   coarse floor get their exact row/key overlap computed. Row-preserving
   derivations (column add/drop/rename, cell updates) would score zero on
   raw row overlap, so candidates are also scored on *key overlap* under
   a discovered candidate key and on column-fingerprint overlap.
3. **Orientation**: timestamps order the pair when present; otherwise
   containment heuristics do (the superset follows the subset for
   insert-heavy histories; a version with extra columns follows one
   without, since analysts mostly add derived columns).
4. **Forest extraction**: a maximum-weight arborescence over the scored
   directed candidates (each artifact gets at most one parent), which is
   exactly the minimum-storage intuition of Chapter 7 applied to
   similarity weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.explain import discover_candidate_key, explain_edge
from repro.provenance.model import Artifact
from repro.provenance.sketches import artifact_sketch, exact_jaccard


@dataclass(frozen=True)
class InferenceConfig:
    """Tuning knobs for lineage inference.

    Attributes:
        sketch_size: MinHash width used for pruning.
        candidate_floor: Estimated-similarity floor below which a pair is
            never examined exactly.
        edge_floor: Exact-score floor below which no edge is proposed.
        row_weight / key_weight / column_weight: Mix of the three exact
            similarity signals.
        use_timestamps: Whether file timestamps may orient edges.
    """

    sketch_size: int = 32
    candidate_floor: float = 0.05
    edge_floor: float = 0.25
    row_weight: float = 0.6
    key_weight: float = 0.3
    column_weight: float = 0.1
    use_timestamps: bool = True


@dataclass
class InferredEdge:
    """A proposed derivation: parent -> child with score and explanation."""

    parent: str
    child: str
    score: float
    explanation: object = None

    def as_pair(self) -> tuple[str, str]:
        return (self.parent, self.child)


@dataclass
class _Pair:
    a: int
    b: int
    score: float
    oriented_a_to_b: bool


def infer_lineage(
    artifacts: list[Artifact],
    config: InferenceConfig | None = None,
    explain: bool = True,
) -> list[InferredEdge]:
    """Infer a lineage forest over ``artifacts``.

    Returns directed edges (parent name, child name), each artifact
    receiving at most one parent; roots receive none.
    """
    config = config or InferenceConfig()
    n = len(artifacts)
    if n <= 1:
        return []

    sketches = [
        artifact_sketch(artifact, config.sketch_size)
        for artifact in artifacts
    ]
    row_sets = [artifact.row_hashes() for artifact in artifacts]
    column_prints = [
        frozenset(artifact.column_fingerprints().values())
        for artifact in artifacts
    ]

    scored: list[_Pair] = []
    for i in range(n):
        for j in range(i + 1, n):
            estimated = sketches[i].estimated_jaccard(sketches[j])
            if estimated < config.candidate_floor:
                # Sketch pruning; row-preserving pairs can still pass via
                # column fingerprints below.
                column_similarity = exact_jaccard(
                    column_prints[i], column_prints[j]
                )
                if column_similarity < config.candidate_floor:
                    continue
            score, oriented = _exact_score(
                artifacts[i],
                artifacts[j],
                row_sets[i],
                row_sets[j],
                column_prints[i],
                column_prints[j],
                config,
            )
            if score >= config.edge_floor:
                scored.append(_Pair(i, j, score, oriented))

    # Forest extraction: maximum-weight parent per child, greedily by
    # score, with cycle avoidance (an arborescence over the candidates).
    scored.sort(key=lambda pair: -pair.score)
    parent_of: dict[int, int] = {}

    def creates_cycle(child: int, parent: int) -> bool:
        current = parent
        while current in parent_of:
            current = parent_of[current]
            if current == child:
                return True
        return False

    for pair in scored:
        if pair.oriented_a_to_b:
            parent, child = pair.a, pair.b
        else:
            parent, child = pair.b, pair.a
        if child in parent_of:
            continue
        if creates_cycle(child, parent):
            continue
        parent_of[child] = parent

    score_of = {
        (p.a, p.b): p.score for p in scored
    } | {(p.b, p.a): p.score for p in scored}

    edges: list[InferredEdge] = []
    for child, parent in sorted(parent_of.items()):
        edge = InferredEdge(
            parent=artifacts[parent].name,
            child=artifacts[child].name,
            score=score_of[(parent, child)],
        )
        if explain:
            edge.explanation = explain_edge(
                artifacts[parent], artifacts[child]
            )
        edges.append(edge)
    return edges


def _exact_score(
    a: Artifact,
    b: Artifact,
    rows_a: frozenset[int],
    rows_b: frozenset[int],
    columns_a: frozenset,
    columns_b: frozenset,
    config: InferenceConfig,
) -> tuple[float, bool]:
    """(similarity score, oriented a->b?)."""
    row_similarity = exact_jaccard(rows_a, rows_b)

    key = discover_candidate_key(a, b)
    if key:
        keys_a = a.key_projection(key)
        keys_b = b.key_projection(key)
        key_similarity = exact_jaccard(keys_a, keys_b)
    else:
        keys_a = keys_b = frozenset()
        key_similarity = row_similarity

    column_similarity = exact_jaccard(columns_a, columns_b)

    score = (
        config.row_weight * row_similarity
        + config.key_weight * key_similarity
        + config.column_weight * column_similarity
    )

    oriented = _orient(a, b, rows_a, rows_b, keys_a, keys_b, config)
    return score, oriented


def _orient(
    a: Artifact,
    b: Artifact,
    rows_a: frozenset[int],
    rows_b: frozenset[int],
    keys_a: frozenset,
    keys_b: frozenset,
    config: InferenceConfig,
) -> bool:
    """True when the edge should run a -> b (a is the parent)."""
    if (
        config.use_timestamps
        and a.timestamp is not None
        and b.timestamp is not None
        and a.timestamp != b.timestamp
    ):
        return a.timestamp < b.timestamp
    # Containment: histories are insert-heavy, so the smaller row/key set
    # is usually the ancestor.
    if keys_a and keys_b and keys_a != keys_b:
        if keys_a < keys_b:
            return True
        if keys_b < keys_a:
            return False
    if rows_a != rows_b:
        if rows_a < rows_b:
            return True
        if rows_b < rows_a:
            return False
    # Column growth: derived columns get added over time.
    if a.num_columns != b.num_columns:
        return a.num_columns < b.num_columns
    if a.num_rows != b.num_rows:
        return a.num_rows < b.num_rows
    return a.name <= b.name
