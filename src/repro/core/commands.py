"""The OrpheusDB command facade: git-style version control over CVDs.

Implements the command set of Section 3.3.1 — ``init``, ``checkout``
(to a staged table or a CSV file), ``commit``, ``diff``, ``ls``, ``drop``,
``optimize``, plus user management (``create_user``, ``config``/login,
``whoami``). The flow per command matches Figure 3.1: the record manager
materializes rows into the staging area, the provenance manager logs the
derivation metadata, the access controller gates who may touch what, and
the version manager updates the metadata on commit.
"""

from __future__ import annotations

from typing import Sequence

from repro import telemetry
from repro.core.access import AccessController
from repro.core.cvd import CVD, CheckoutResult
from repro.core.errors import CVDError, StagingError
from repro.core.csvio import read_csv, read_schema_file, write_csv, write_schema_file
from repro.core.staging import StagingArea
from repro.relational.database import Database
from repro.relational.schema import Schema
from repro.relational.table import Table


class Orpheus:
    """One OrpheusDB instance: a database plus CVDs, staging, and users."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database or Database()
        self.staging = StagingArea(self.database)
        self.access = AccessController()
        self._cvds: dict[str, CVD] = {}

    # ------------------------------------------------------------------
    # User management
    # ------------------------------------------------------------------
    def create_user(self, name: str, email: str = "") -> None:
        self.access.create_user(name, email)

    def config(self, user: str) -> None:
        """Log in as ``user`` (the ``config`` command)."""
        self.access.login(user)

    def whoami(self) -> str:
        return self.access.whoami()

    # ------------------------------------------------------------------
    # CVD lifecycle
    # ------------------------------------------------------------------
    def init(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple] = (),
        model: str = "split_by_rlist",
        message: str = "initial version",
    ) -> int:
        """Initialize a new CVD from rows (or an empty relation).

        Returns the vid of the initial version (created only when rows
        are provided).
        """
        with telemetry.span("command.init", dataset=name, model=str(model)):
            if name in self._cvds:
                raise CVDError(f"CVD {name!r} already exists")
            cvd = CVD(self.database, name, schema, model=model)
            self._cvds[name] = cvd
            if rows:
                return cvd.commit(
                    rows,
                    parents=(),
                    message=message,
                    author=self.access.current_user or "",
                )
            return 0

    def init_from_csv(
        self,
        name: str,
        csv_path: str,
        schema_path: str,
        model: str = "split_by_rlist",
    ) -> int:
        """``init -f file.csv -s schema``: register a CSV as a new CVD."""
        schema = read_schema_file(schema_path)
        rows = read_csv(csv_path, schema)
        return self.init(name, schema, rows, model=model)

    def init_from_table(
        self,
        name: str,
        table_name: str,
        model: str = "split_by_rlist",
        drop_source: bool = False,
    ) -> int:
        """``init -t table``: register an existing database table as a
        new CVD (the paper's other init path). The source table's schema
        and rows become version 1; optionally drop the source after."""
        table = self.database.table(table_name)
        vid = self.init(
            name,
            table.schema,
            table.rows_snapshot(),
            model=model,
            message=f"initialized from table {table_name!r}",
        )
        if drop_source:
            self.database.drop_table(table_name)
        return vid

    def cvd(self, name: str) -> CVD:
        try:
            return self._cvds[name]
        except KeyError:
            raise CVDError(f"no CVD named {name!r}") from None

    def ls(self) -> list[str]:
        """List all CVDs."""
        return sorted(self._cvds)

    def ls_info(self) -> list[dict]:
        """Machine-readable ``ls``: one summary dict per CVD.

        Shared by ``orpheus ls --json`` and the service daemon's ``ls``
        op, so local and remote listings agree field-for-field.
        """
        summaries = []
        for name in self.ls():
            cvd = self._cvds[name]
            summaries.append(
                {
                    "dataset": name,
                    "versions": cvd.num_versions,
                    "records": cvd.num_records,
                    "model": type(cvd.model).__name__,
                }
            )
        return summaries

    def log_info(self, name: str) -> dict:
        """Machine-readable ``log``: the version graph of one CVD.

        Shared by ``orpheus log --json`` and the daemon's ``log`` op.
        """
        cvd = self.cvd(name)
        versions = []
        for vid in cvd.versions.vids():
            metadata = cvd.versions.get(vid)
            versions.append(
                {
                    "vid": vid,
                    "parents": list(metadata.parents),
                    "children": list(metadata.children),
                    "records": metadata.record_count,
                    "author": metadata.author or "",
                    "message": metadata.message,
                    "commit_time": metadata.commit_time,
                    "checkout_time": metadata.checkout_time,
                }
            )
        return {"dataset": name, "versions": versions}

    def drop(self, name: str) -> None:
        cvd = self.cvd(name)
        cvd.model.drop()
        del self._cvds[name]

    # ------------------------------------------------------------------
    # checkout / commit
    # ------------------------------------------------------------------
    def checkout(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        table_name: str,
        merge_strategy: str = "precedence",
    ) -> Table:
        """``checkout [cvd] -v vids -t table``: materialize into a table.

        Args:
            merge_strategy: How multi-version conflicts resolve —
                ``precedence`` (the paper's default: first listed wins),
                ``latest`` (newest commit wins), or ``strict`` (raise on
                any conflict). For manual resolution use
                :func:`repro.core.merge.merge_manual` directly.
        """
        with telemetry.span(
            "command.checkout", dataset=cvd_name, strategy=merge_strategy
        ):
            return self._checkout(cvd_name, vids, table_name, merge_strategy)

    def _checkout(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        table_name: str,
        merge_strategy: str,
    ) -> Table:
        self.access.check_cvd_access(cvd_name)
        cvd = self.cvd(cvd_name)
        if merge_strategy == "precedence":
            result = cvd.checkout(vids)
        else:
            from repro.core.cvd import CheckoutResult
            from repro.core.merge import merge_latest, merge_strict

            if isinstance(vids, int):
                vids = (vids,)
            strategies = {"latest": merge_latest, "strict": merge_strict}
            try:
                merge = strategies[merge_strategy]
            except KeyError:
                raise CVDError(
                    f"unknown merge strategy {merge_strategy!r}; have "
                    f"precedence, latest, strict"
                ) from None
            merged = merge(cvd, vids)
            result = CheckoutResult(
                rows=merged.rows,
                rid_map={},
                parents=tuple(vids),
                columns=cvd.schema.column_names,
            )
        table = self.staging.materialize(
            table_name,
            cvd.schema,
            result.rows,
            cvd_name,
            result.parents,
            owner=self.access.current_user or "",
        )
        telemetry.count("command.checkout.rows_materialized", len(result.rows))
        for parent in result.parents:
            cvd.versions.get(parent).checkout_time = telemetry.now()
        return table

    def checkout_csv(
        self,
        cvd_name: str,
        vids: int | Sequence[int],
        csv_path: str,
        schema_path: str | None = None,
    ) -> CheckoutResult:
        """``checkout [cvd] -v vids -f file.csv``."""
        with telemetry.span("command.checkout", dataset=cvd_name, target="csv"):
            self.access.check_cvd_access(cvd_name)
            cvd = self.cvd(cvd_name)
            result = cvd.checkout(vids)
            write_csv(csv_path, result.columns, result.rows)
            if schema_path is not None:
                write_schema_file(schema_path, cvd.schema)
            telemetry.count(
                "command.checkout.rows_materialized", len(result.rows)
            )
            # Track the file as derived from these versions (provenance).
            self.staging._staged[csv_path] = _csv_staged(
                csv_path, cvd_name, result.parents, self.access.current_user or ""
            )
            return result

    def commit(
        self,
        table_name: str,
        message: str = "",
    ) -> int:
        """``commit -t table -m message``: add the staged table as a new
        version of the CVD it was checked out from."""
        info = self.staging.metadata(table_name)
        with telemetry.span("command.commit", dataset=info.cvd_name) as current:
            user = self.access.current_user or ""
            table = self.staging.table(table_name, user=user or None)
            cvd = self.cvd(info.cvd_name)
            telemetry.count("command.commit.bytes_staged", table.storage_bytes())
            columns = table.schema.column_names
            column_types = {c.name: c.dtype for c in table.schema.columns}
            vid = cvd.commit(
                table.rows_snapshot(),
                parents=info.parents,
                message=message,
                author=user,
                columns=columns,
                column_types=column_types,
                checkout_time=info.checkout_time,
            )
            if current is not None:
                current.set_attr("vid", vid)
            self.staging.release(table_name)
            return vid

    def commit_csv(
        self,
        csv_path: str,
        schema_path: str,
        message: str = "",
    ) -> int:
        """``commit -f file.csv -s schema -m message``."""
        try:
            info = self.staging.metadata(csv_path)
        except StagingError:
            raise StagingError(
                f"{csv_path!r} was not produced by checkout_csv; "
                "use init_from_csv for new datasets"
            ) from None
        with telemetry.span(
            "command.commit", dataset=info.cvd_name, source="csv"
        ) as current:
            import os

            schema = read_schema_file(schema_path)
            rows = read_csv(csv_path, schema)
            try:
                telemetry.count(
                    "command.commit.bytes_staged", os.path.getsize(csv_path)
                )
            except OSError:
                pass
            cvd = self.cvd(info.cvd_name)
            vid = cvd.commit(
                rows,
                parents=info.parents,
                message=message,
                author=self.access.current_user or "",
                columns=schema.column_names,
                column_types={c.name: c.dtype for c in schema.columns},
                checkout_time=info.checkout_time,
            )
            if current is not None:
                current.set_attr("vid", vid)
            del self.staging._staged[csv_path]
            return vid

    # ------------------------------------------------------------------
    # run: version-aware SQL (Section 3.3.2)
    # ------------------------------------------------------------------
    def run(self, sql: str):
        """Execute a version-aware SELECT (``run`` command).

        Instrumented like ``checkout``/``commit``: the command span
        carries the result cardinality, and the CLI/daemon layers
        journal the invocation, so local and remote queries are
        uniformly observable.
        """
        from repro.core.sql import run_sql

        with telemetry.span("command.run") as current:
            result = run_sql(self._cvds, sql)
            telemetry.count("command.run.rows_returned", len(result.rows))
            if current is not None:
                current.set_attr("rows", len(result.rows))
            return result

    # ------------------------------------------------------------------
    # diff and optimize
    # ------------------------------------------------------------------
    def diff(self, cvd_name: str, vid_a: int, vid_b: int):
        """Records in one version but not the other, both directions."""
        with telemetry.span("command.diff", dataset=cvd_name, a=vid_a, b=vid_b):
            only_a, only_b = self.cvd(cvd_name).diff(vid_a, vid_b)
            telemetry.count("command.diff.rows_compared", len(only_a) + len(only_b))
            return only_a, only_b

    def optimize(
        self,
        cvd_name: str,
        storage_threshold_factor: float = 2.0,
        tolerance: float = 1.5,
    ):
        """Run the partition optimizer over a CVD (Chapter 5).

        Requires the CVD to use the partitioned split-by-rlist store; see
        :mod:`repro.partition.partitioned_store`. Returns the new
        partitioning.
        """
        from repro.partition.partitioned_store import PartitionedRlistStore

        with telemetry.span("command.optimize", dataset=cvd_name) as current:
            cvd = self.cvd(cvd_name)
            if not isinstance(cvd.model, PartitionedRlistStore):
                raise CVDError(
                    "optimize requires a CVD backed by PartitionedRlistStore"
                )
            partitioning = cvd.model.optimize(
                storage_threshold_factor=storage_threshold_factor,
                tolerance=tolerance,
            )
            if current is not None:
                current.set_attr("partitions", partitioning.num_partitions)
            return partitioning


def _csv_staged(path: str, cvd_name: str, parents, owner: str):
    from repro.core.staging import StagedTable

    return StagedTable(
        table_name=path, cvd_name=cvd_name, parents=parents, owner=owner
    )
