"""The temporary staging area of materialized tables.

A checkout materializes a version into a regular table the user can edit
with ordinary SQL (or export to CSV); OrpheusDB remembers which versions
the table was derived from so a later commit knows its parents. Only the
user who performed the checkout may touch the staged table — that is the
access-controller rule from Section 3.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.core.errors import StagingError
from repro.relational.database import Database
from repro.relational.schema import Schema
from repro.relational.table import Table


@dataclass
class StagedTable:
    """Provenance-manager metadata for one uncommitted table.

    This is the "provenance manager" module of the OrpheusDB architecture
    (Figure 3.1): it tracks the parent version(s) and creation time of
    every staged (not yet committed) table or file.
    """

    table_name: str
    cvd_name: str
    parents: tuple[int, ...]
    owner: str
    #: Stamped by the injectable telemetry clock so tests can freeze it
    #: and so it never runs ahead of a later commit_time.
    checkout_time: float = field(default_factory=telemetry.now)


class StagingArea:
    """Materialized working tables plus their derivation metadata."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._staged: dict[str, StagedTable] = {}

    def materialize(
        self,
        table_name: str,
        schema: Schema,
        rows: list[tuple],
        cvd_name: str,
        parents: tuple[int, ...],
        owner: str,
    ) -> Table:
        """Create a staged table holding a checkout's rows."""
        if table_name in self._staged or self.database.has_table(table_name):
            raise StagingError(f"table {table_name!r} already exists")
        table = self.database.create_table(table_name, schema)
        try:
            for row in rows:
                table.insert(row)
        except BaseException:
            # A mid-loop insert failure must not leave an orphaned,
            # partially-populated table the staging area does not track.
            self.database.drop_table(table_name, missing_ok=True)
            raise
        telemetry.count("staging.rows_materialized", len(rows))
        self._staged[table_name] = StagedTable(
            table_name=table_name,
            cvd_name=cvd_name,
            parents=parents,
            owner=owner,
        )
        return table

    def metadata(self, table_name: str) -> StagedTable:
        try:
            return self._staged[table_name]
        except KeyError:
            raise StagingError(
                f"table {table_name!r} is not a staged checkout"
            ) from None

    def table(self, table_name: str, user: str | None = None) -> Table:
        info = self.metadata(table_name)
        if user is not None and info.owner != user:
            raise StagingError(
                f"table {table_name!r} belongs to {info.owner!r}, "
                f"not {user!r}"
            )
        return self.database.table(table_name)

    def release(self, table_name: str) -> None:
        """Drop the staged table after a successful commit."""
        self.metadata(table_name)
        self.database.drop_table(table_name, missing_ok=True)
        del self._staged[table_name]

    def staged_names(self) -> list[str]:
        return sorted(self._staged)
