"""Version derivation metadata: the metadata and attribute tables.

Implements Section 4.3: a metadata table holding, per version, its
parents, children, checkout/commit timestamps, commit message, author, and
the list of attribute ids present in that version; and an attribute table
(the "single pool") where every distinct (name, type) pair ever seen gets
a stable attribute id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import NoSuchVersionError
from repro.relational.types import DataType


@dataclass(frozen=True)
class AttributeEntry:
    """One row of the attribute table."""

    attr_id: int
    name: str
    dtype: DataType


class AttributeRegistry:
    """The single-pool attribute table of Figure 4.3.

    Any change to an attribute's properties (currently: its data type)
    creates a *new* entry rather than mutating the old one, so versions
    committed before a type widening still reference the original typed
    attribute.
    """

    def __init__(self) -> None:
        self._entries: list[AttributeEntry] = []
        self._by_key: dict[tuple[str, str], int] = {}

    def intern(self, name: str, dtype: DataType) -> int:
        """Return the attr_id for (name, dtype), creating it if new."""
        key = (name, dtype.name)
        if key in self._by_key:
            return self._by_key[key]
        attr_id = len(self._entries) + 1
        self._entries.append(AttributeEntry(attr_id, name, dtype))
        self._by_key[key] = attr_id
        return attr_id

    def entry(self, attr_id: int) -> AttributeEntry:
        try:
            return self._entries[attr_id - 1]
        except IndexError:
            raise KeyError(f"no attribute with id {attr_id}") from None

    def entries(self) -> list[AttributeEntry]:
        return list(self._entries)

    def ids_for_names(self, names: Iterable[str]) -> list[int]:
        """Latest attr_id registered for each name (for display only)."""
        latest: dict[str, int] = {}
        for entry in self._entries:
            latest[entry.name] = entry.attr_id
        return [latest[name] for name in names]

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class VersionMetadata:
    """One row of the metadata table (Figure 4.2a)."""

    vid: int
    parents: tuple[int, ...]
    children: list[int] = field(default_factory=list)
    checkout_time: float | None = None
    commit_time: float | None = None
    message: str = ""
    author: str = ""
    attribute_ids: tuple[int, ...] = ()
    record_count: int = 0


class VersionManager:
    """Maintains the metadata table and answers version-graph queries.

    The version graph is the DAG induced by the ``parents`` attribute;
    ``ancestors``/``descendants``/``parent`` are the functional primitives
    exposed in the OrpheusDB query language (Section 3.3.2).
    """

    def __init__(self) -> None:
        self._versions: dict[int, VersionMetadata] = {}
        self._order: list[int] = []
        self._next_vid = 1

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, vid: int) -> bool:
        return vid in self._versions

    def allocate_vid(self) -> int:
        vid = self._next_vid
        self._next_vid += 1
        return vid

    def register(self, metadata: VersionMetadata) -> None:
        if metadata.vid in self._versions:
            raise ValueError(f"version {metadata.vid} already registered")
        # Resolve every parent before linking any: a bad parent id must
        # not leave earlier parents' children lists half-mutated.
        parents = [self.get(parent) for parent in metadata.parents]
        for parent in parents:
            parent.children.append(metadata.vid)
        self._versions[metadata.vid] = metadata
        self._order.append(metadata.vid)
        # Keep the vid counter ahead of externally supplied ids.
        self._next_vid = max(self._next_vid, metadata.vid + 1)

    def get(self, vid: int) -> VersionMetadata:
        try:
            return self._versions[vid]
        except KeyError:
            raise NoSuchVersionError(f"no version {vid}") from None

    def vids(self) -> list[int]:
        """All version ids in commit order."""
        return list(self._order)

    def latest_vid(self) -> int:
        if not self._order:
            raise NoSuchVersionError("CVD has no versions yet")
        return self._order[-1]

    # ------------------------------------------------------------------
    # Graph primitives
    # ------------------------------------------------------------------
    def parents(self, vid: int) -> tuple[int, ...]:
        return self.get(vid).parents

    def children(self, vid: int) -> tuple[int, ...]:
        return tuple(self.get(vid).children)

    def ancestors(self, vid: int, max_hops: int | None = None) -> set[int]:
        """All ancestors of ``vid`` within ``max_hops`` (None = unlimited)."""
        return self._closure(vid, self.parents, max_hops)

    def descendants(self, vid: int, max_hops: int | None = None) -> set[int]:
        return self._closure(vid, self.children, max_hops)

    def neighbors(self, vid: int, hops: int) -> set[int]:
        """Versions within ``hops`` edges of ``vid`` in either direction
        (VQuel's ``N(k)``)."""
        frontier = {vid}
        seen = {vid}
        for _ in range(hops):
            next_frontier: set[int] = set()
            for node in frontier:
                next_frontier.update(self.parents(node))
                next_frontier.update(self.children(node))
            next_frontier -= seen
            seen |= next_frontier
            frontier = next_frontier
        seen.discard(vid)
        return seen

    def _closure(
        self,
        vid: int,
        step: "callable[[int], tuple[int, ...]]",
        max_hops: int | None,
    ) -> set[int]:
        self.get(vid)  # raise on unknown vid
        result: set[int] = set()
        frontier = {vid}
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            next_frontier: set[int] = set()
            for node in frontier:
                for reached in step(node):
                    if reached not in result:
                        result.add(reached)
                        next_frontier.add(reached)
            frontier = next_frontier
            hops += 1
        return result

    def is_merge(self, vid: int) -> bool:
        return len(self.parents(vid)) > 1

    def roots(self) -> list[int]:
        return [v for v in self._order if not self._versions[v].parents]

    def edges(self) -> list[tuple[int, int]]:
        """All (parent, child) derivation edges."""
        result = []
        for vid in self._order:
            for parent in self._versions[vid].parents:
                result.append((parent, vid))
        return result

    def topological_levels(self) -> dict[int, int]:
        """l(v): 1 + length of the longest path from a root to v."""
        levels: dict[int, int] = {}
        for vid in self._order:  # commit order is topological
            parents = self._versions[vid].parents
            levels[vid] = 1 + max((levels[p] for p in parents), default=0)
        return levels
