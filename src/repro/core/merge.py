"""Merge conflict resolution (Section 3.3.1).

Multi-version checkout merges records in precedence order: the first
version listed wins any primary-key conflict. The paper notes other
strategies exist — "such as letting users resolve conflicted records
manually" — and adopts precedence for simplicity. This module implements
the family:

* :func:`merge_precedence` — the paper's default (first listed wins);
* :func:`merge_latest` — the most recently committed version wins;
* :func:`merge_manual` — conflicts are handed to a caller-supplied
  resolver (the "manual" strategy);
* :func:`merge_strict` — any conflict raises, for workflows that demand
  explicit resolution.

All return the merged rows plus a conflict report so callers can audit
what was decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.cvd import CVD
from repro.core.errors import CVDError


@dataclass(frozen=True)
class Conflict:
    """One primary key claimed by records from several versions."""

    key: tuple
    #: (vid, payload) candidates in the order versions were listed.
    candidates: tuple[tuple[int, tuple], ...]


@dataclass
class MergeResult:
    """Merged rows plus the audit trail."""

    rows: list[tuple]
    conflicts: list[Conflict] = field(default_factory=list)
    #: key -> vid whose record won.
    decisions: dict[tuple, int] = field(default_factory=dict)


class MergeConflictError(CVDError):
    """Raised by the strict strategy when versions disagree."""

    def __init__(self, conflicts: list[Conflict]) -> None:
        keys = [c.key for c in conflicts[:5]]
        super().__init__(
            f"{len(conflicts)} conflicting primary keys, e.g. {keys}"
        )
        self.conflicts = conflicts


Resolver = Callable[[Conflict], tuple]
"""Manual resolver: receives a conflict, returns the payload to keep."""


def _collect(cvd: CVD, vids: Sequence[int]):
    """Group candidate records by primary key across the versions."""
    key_positions = cvd.schema.key_positions()
    grouped: dict[tuple, list[tuple[int, tuple]]] = {}
    order: list[tuple] = []
    for vid in vids:
        for rid, payload in cvd.model.checkout_rids(vid):
            key = (
                tuple(payload[i] for i in key_positions)
                if key_positions
                else (rid,)
            )
            bucket = grouped.get(key)
            if bucket is None:
                grouped[key] = [(vid, payload)]
                order.append(key)
            else:
                bucket.append((vid, payload))
    return grouped, order


def _merge(
    cvd: CVD,
    vids: Sequence[int],
    choose: Callable[[Conflict], tuple[int, tuple]],
) -> MergeResult:
    if not vids:
        raise ValueError("merge requires at least one version")
    for vid in vids:
        cvd.versions.get(vid)
    grouped, order = _collect(cvd, vids)
    result = MergeResult(rows=[])
    for key in order:
        candidates = grouped[key]
        distinct_payloads = {payload for _vid, payload in candidates}
        if len(distinct_payloads) <= 1:
            winner_vid, payload = candidates[0]
            result.rows.append(payload)
            result.decisions[key] = winner_vid
            continue
        conflict = Conflict(key=key, candidates=tuple(candidates))
        result.conflicts.append(conflict)
        winner_vid, payload = choose(conflict)
        result.rows.append(payload)
        result.decisions[key] = winner_vid
    return result


def merge_precedence(cvd: CVD, vids: Sequence[int]) -> MergeResult:
    """The paper's strategy: the earliest-listed version wins."""
    return _merge(cvd, vids, lambda conflict: conflict.candidates[0])


def merge_latest(cvd: CVD, vids: Sequence[int]) -> MergeResult:
    """The most recently committed conflicting version wins."""

    def choose(conflict: Conflict) -> tuple[int, tuple]:
        return max(
            conflict.candidates,
            key=lambda item: cvd.versions.get(item[0]).commit_time or 0.0,
        )

    return _merge(cvd, vids, choose)


def merge_manual(
    cvd: CVD, vids: Sequence[int], resolver: Resolver
) -> MergeResult:
    """Hand each conflict to ``resolver``; it returns the payload to keep.

    The resolver may return any of the candidate payloads, or a brand-new
    payload (e.g. a hand-edited reconciliation) — new payloads are
    attributed to the first candidate's version in the decision map.
    """

    def choose(conflict: Conflict) -> tuple[int, tuple]:
        payload = resolver(conflict)
        for vid, candidate in conflict.candidates:
            if candidate == payload:
                return vid, payload
        return conflict.candidates[0][0], payload

    return _merge(cvd, vids, choose)


def merge_strict(cvd: CVD, vids: Sequence[int]) -> MergeResult:
    """Raise :class:`MergeConflictError` on any disagreement."""
    conflicts: list[Conflict] = []

    def choose(conflict: Conflict) -> tuple[int, tuple]:
        conflicts.append(conflict)
        return conflict.candidates[0]

    result = _merge(cvd, vids, choose)
    if conflicts:
        raise MergeConflictError(conflicts)
    return result
