"""CSV checkout/commit support (the ``-f``/``-s`` command flags).

Data scientists often prefer editing a CSV in Python or R over SQL on a
staged table; OrpheusDB supports checking a version out *to* a CSV file
and committing a CSV back, with a schema file ensuring columns map
correctly.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.relational.schema import ColumnDef, Schema
from repro.relational.types import DataType, type_by_name


def write_csv(path: str | Path, columns: list[str], rows: list[tuple]) -> None:
    """Write a checkout's rows to ``path`` with a header row."""
    from repro.resilience import failpoints

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        failpoints.fire("csv.mid_write")
        writer.writerows(rows)


def write_schema_file(path: str | Path, schema: Schema) -> None:
    """Write the companion schema file: one ``name,type`` line per column,
    with a trailing ``primary_key`` line when the relation has one."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for column in schema.columns:
            writer.writerow([column.name, column.dtype.name])
        if schema.primary_key:
            writer.writerow(["primary_key", *schema.primary_key])


def read_schema_file(path: str | Path) -> Schema:
    """Parse a schema file written by :func:`write_schema_file`."""
    columns: list[ColumnDef] = []
    primary_key: tuple[str, ...] = ()
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row:
                continue
            if row[0] == "primary_key":
                primary_key = tuple(row[1:])
            else:
                columns.append(ColumnDef(row[0], type_by_name(row[1])))
    return Schema(columns, primary_key)


def read_csv(path: str | Path, schema: Schema) -> list[tuple]:
    """Read rows from ``path``, coercing values per the schema.

    The header row must match the schema's column names (order included);
    this is the check the ``-s`` schema file exists to make possible.
    """
    rows: list[tuple] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != schema.column_names:
            raise ValueError(
                f"CSV header {header} does not match schema columns "
                f"{schema.column_names}"
            )
        for raw in reader:
            rows.append(
                tuple(
                    _coerce(value, column.dtype)
                    for value, column in zip(raw, schema.columns)
                )
            )
    return rows


def _coerce(value: str, dtype: DataType) -> object:
    if value == "":
        return None
    if dtype.name == "integer":
        return int(value)
    if dtype.name == "decimal":
        return float(value)
    if dtype.name == "boolean":
        return value.lower() in ("true", "t", "1")
    return value
