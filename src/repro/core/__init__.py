"""OrpheusDB core: collaborative versioned datasets over a relational DB.

This package implements Chapters 3 and 4 of the dissertation: the CVD
(collaborative versioned dataset) abstraction, the five physical data
models compared in Figure 4.1, git-style version-control commands with a
staging area, version-derivation metadata with schema evolution, and the
version-aware query layer (``SELECT ... FROM VERSION v OF CVD c``,
aggregates grouped by version, graph predicates, ``v_diff`` and
``v_intersect``).
"""

from repro.core.cvd import CVD, CheckoutResult
from repro.core.errors import (
    CVDError,
    NoSuchVersionError,
    PrimaryKeyViolationError,
    StagingError,
)
from repro.core.metadata import AttributeRegistry, VersionManager, VersionMetadata
from repro.core.models import (
    DATA_MODELS,
    CombinedTableModel,
    DataModel,
    DeltaBasedModel,
    SplitByRlistModel,
    SplitByVlistModel,
    TablePerVersionModel,
    make_model,
)
from repro.core.commands import Orpheus
from repro.core.queries import VersionQuery, aggregate_by_version, select_from_versions

__all__ = [
    "AttributeRegistry",
    "CVD",
    "CVDError",
    "CheckoutResult",
    "CombinedTableModel",
    "DATA_MODELS",
    "DataModel",
    "DeltaBasedModel",
    "NoSuchVersionError",
    "Orpheus",
    "PrimaryKeyViolationError",
    "SplitByRlistModel",
    "SplitByVlistModel",
    "StagingError",
    "TablePerVersionModel",
    "VersionManager",
    "VersionMetadata",
    "VersionQuery",
    "aggregate_by_version",
    "make_model",
    "select_from_versions",
]
