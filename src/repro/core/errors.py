"""Exceptions raised by the OrpheusDB core."""


class CVDError(Exception):
    """Base class for CVD-level errors."""


class NoSuchVersionError(CVDError):
    """A command referenced a version id not present in the CVD."""


class PrimaryKeyViolationError(CVDError):
    """A committed table contains duplicate relation primary keys."""


class StagingError(CVDError):
    """A staging-area operation failed (unknown table, wrong owner, ...)."""


class PermissionError_(CVDError):
    """The current user lacks access to the target table or CVD."""
