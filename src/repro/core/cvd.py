"""The collaborative versioned dataset (CVD).

A CVD corresponds to one relation and implicitly contains many versions
of it (Section 3.1). Records are immutable: any modification produces a
new record with a fresh rid. The CVD layer owns:

* rid assignment under the **no cross-version diff** rule — a committed
  table is compared only against its parent versions, never against all
  ancestors, trading a little storage for much faster commits;
* the version graph and metadata (via :class:`VersionManager`);
* primary-key precedence semantics for multi-version checkout;
* schema evolution through the single-pool attribute registry.

Physical storage is delegated to a pluggable :class:`DataModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import telemetry

from repro.core.errors import NoSuchVersionError, PrimaryKeyViolationError
from repro.core.metadata import AttributeRegistry, VersionManager, VersionMetadata
from repro.core.models import DataModel, make_model
from repro.relational.database import Database
from repro.relational.schema import ColumnDef, Schema
from repro.relational.types import DataType, generalize_types


@dataclass
class CheckoutResult:
    """The outcome of a checkout: rows plus bookkeeping.

    Attributes:
        rows: The materialized records (payload tuples, data attributes
            only) after primary-key precedence resolution.
        rid_map: primary-key tuple -> rid for every surviving row; used on
            commit to recognize unchanged records.
        parents: The versions this checkout was derived from, in
            precedence order.
        columns: Column names of the rows.
    """

    rows: list[tuple]
    rid_map: dict[tuple, int]
    parents: tuple[int, ...]
    columns: list[str]


class CVD:
    """A collaborative versioned dataset over a backend database."""

    def __init__(
        self,
        database: Database,
        name: str,
        schema: Schema,
        model: str | DataModel = "split_by_rlist",
    ) -> None:
        """Args:
        database: Backend database for physical tables.
        name: CVD name (prefixes all physical table names).
        schema: Logical relation schema, including the relation primary
            key if any. Must not contain reserved columns (rid, vlist).
        model: A data-model registry name or a pre-built instance.
        """
        for reserved in ("rid", "vlist", "rlist", "vid"):
            if schema.has_column(reserved):
                raise ValueError(f"column name {reserved!r} is reserved")
        self.database = database
        self.name = name
        self.schema = schema
        self.versions = VersionManager()
        self.attributes = AttributeRegistry()
        if isinstance(model, str):
            self.model: DataModel = make_model(model, database, name, schema)
        else:
            self.model = model
        self._next_rid = 1
        #: rid membership per version (the bipartite graph, CVD-side).
        self._membership: dict[int, frozenset[int]] = {}
        #: payload -> rid cache per version for the parent-diff at commit.
        self._payloads: dict[int, tuple] = {}
        #: attribute ids (single pool) per version, for schema evolution.
        self._version_columns: dict[int, list[str]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        return len(self.versions)

    @property
    def num_records(self) -> int:
        return len(self._payloads)

    def membership(self, vid: int) -> frozenset[int]:
        try:
            return self._membership[vid]
        except KeyError:
            raise NoSuchVersionError(f"no version {vid} in CVD {self.name!r}") from None

    def payload_of(self, rid: int) -> tuple:
        return self._payloads[rid]

    def storage_bytes(self) -> int:
        return self.model.storage_bytes()

    def columns_of(self, vid: int) -> list[str]:
        """Column names present in a version (schema may evolve)."""
        self.versions.get(vid)
        return list(self._version_columns[vid])

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(
        self,
        rows: Iterable[tuple],
        parents: Sequence[int] = (),
        message: str = "",
        author: str = "",
        columns: Sequence[str] | None = None,
        column_types: dict[str, DataType] | None = None,
        checkout_time: float | None = None,
        diff_against: Sequence[int] | None = None,
    ) -> int:
        """Add a new version containing ``rows``; returns its vid.

        Args:
            rows: Full contents of the new version, as tuples matching the
                CVD schema (or ``columns`` when the schema evolves).
            parents: Parent version ids the table was derived from.
            message: Commit message.
            author: Committing user.
            columns: Column names of ``rows`` if they differ from the
                current CVD schema (triggers schema evolution).
            column_types: Types for columns not yet known to the CVD.
            checkout_time: When the source table was checked out.
            diff_against: Versions whose records may be reused by rid.
                Defaults to ``parents`` — the no-cross-version-diff rule;
                pass all ancestors to trade commit time for deduplication
                of deleted-then-re-added records.
        """
        started = telemetry.monotonic()
        with telemetry.span("cvd.commit", dataset=self.name) as current:
            vid = self._commit(
                rows, parents, message, author, columns, column_types,
                checkout_time, diff_against,
            )
            if current is not None:
                current.set_attr("vid", vid)
        telemetry.observe(
            "cvd.commit.latency_seconds", telemetry.monotonic() - started
        )
        return vid

    def _commit(
        self,
        rows: Iterable[tuple],
        parents: Sequence[int],
        message: str,
        author: str,
        columns: Sequence[str] | None,
        column_types: dict[str, DataType] | None,
        checkout_time: float | None,
        diff_against: Sequence[int] | None,
    ) -> int:
        for parent in parents:
            self.versions.get(parent)  # validate early

        if columns is not None and self._schema_changed(
            list(columns), column_types or {}
        ):
            rows = self._evolve_schema(rows, list(columns), column_types or {})
        rows = [tuple(row) for row in rows]
        commit_span = telemetry.current_span()
        if commit_span is not None:
            commit_span.set_attr("rows", len(rows))
        self._check_primary_key(rows)

        diff_versions = parents if diff_against is None else diff_against
        parent_payload_rids: dict[tuple, int] = {}
        for parent in diff_versions:
            for rid in self._membership[parent]:
                # Pad stored payloads so records committed before a schema
                # change still match their (NULL-extended) reappearance.
                parent_payload_rids.setdefault(
                    self._pad_row(self._payloads[rid]), rid
                )

        membership: set[int] = set()
        new_records: dict[int, tuple] = {}
        for row in rows:
            padded = self._pad_row(row)
            rid = parent_payload_rids.get(padded)
            if rid is None or rid in membership:
                # New or modified record (or a duplicate full row, which
                # must stay distinct since rids identify row instances).
                rid = self._next_rid
                self._next_rid += 1
                self._payloads[rid] = padded
                new_records[rid] = padded
            membership.add(rid)

        telemetry.count("cvd.commit.rows_in", len(rows))
        telemetry.count("cvd.commit.new_records", len(new_records))
        telemetry.count(
            "cvd.commit.reused_records", len(membership) - len(new_records)
        )
        vid = self.versions.allocate_vid()
        frozen = frozenset(membership)
        parent_membership = {p: self._membership[p] for p in parents}
        with telemetry.span(
            "model.commit", model=self.model.model_name
        ) as model_span:
            self.model.commit_version(
                vid, tuple(parents), frozen, new_records, parent_membership
            )
            if model_span is not None:
                model_span.set_attr("rows", len(new_records))
        self._membership[vid] = frozen
        attribute_ids = tuple(
            self.attributes.intern(column.name, column.dtype)
            for column in self.schema.columns
        )
        self.versions.register(
            VersionMetadata(
                vid=vid,
                parents=tuple(parents),
                checkout_time=checkout_time,
                commit_time=telemetry.now(),
                message=message,
                author=author,
                attribute_ids=attribute_ids,
                record_count=len(frozen),
            )
        )
        self._version_columns[vid] = self.schema.column_names
        return vid

    def _schema_changed(
        self, columns: list[str], column_types: dict[str, DataType]
    ) -> bool:
        if columns != self.schema.column_names:
            return True
        for name, dtype in column_types.items():
            if (
                self.schema.has_column(name)
                and self.schema.dtype_of(name) is not dtype
            ):
                return True
        return False

    def _pad_row(self, row: tuple) -> tuple:
        """Extend old-arity rows with NULLs after schema evolution."""
        width = len(self.schema.columns)
        if len(row) == width:
            return row
        if len(row) < width:
            return row + (None,) * (width - len(row))
        raise ValueError(
            f"row arity {len(row)} exceeds schema arity {width}"
        )

    def _check_primary_key(self, rows: list[tuple]) -> None:
        if not self.schema.primary_key:
            return
        positions = self.schema.key_positions()
        seen: set[tuple] = set()
        for row in rows:
            key = tuple(row[i] for i in positions if i < len(row))
            if key in seen:
                raise PrimaryKeyViolationError(
                    f"duplicate primary key {key!r} in committed table"
                )
            seen.add(key)

    def _evolve_schema(
        self,
        rows: Iterable[tuple],
        columns: list[str],
        column_types: dict[str, DataType],
    ) -> list[tuple]:
        """Apply the single-pool schema-change mechanism of Section 4.3.

        New attributes are appended to the CVD schema (old versions read
        NULL for them); type conflicts widen via
        :func:`~repro.relational.types.generalize_types`; attribute
        deletions only affect version metadata — the column remains in
        the pool. Returns rows re-ordered to the evolved schema.
        """
        current = {c.name: c for c in self.schema.columns}
        for name in columns:
            incoming_type = column_types.get(name)
            if name in current:
                if (
                    incoming_type is not None
                    and incoming_type is not current[name].dtype
                ):
                    widened = generalize_types(current[name].dtype, incoming_type)
                    self.schema = self.schema.with_widened_column(name, widened)
                    self.attributes.intern(name, widened)
                    current[name] = ColumnDef(name, widened)
            else:
                if incoming_type is None:
                    raise ValueError(
                        f"type required for new column {name!r}"
                    )
                self.schema = self.schema.with_column(
                    ColumnDef(name, incoming_type)
                )
                self.attributes.intern(name, incoming_type)
                current[name] = ColumnDef(name, incoming_type)
        # ALTER the physical tables to match (Section 4.3); with
        # partitioning this touches each small partition, not one giant
        # CVD table.
        self.model.alter_schema(self.schema)
        # Re-order incoming rows into full-schema order.
        order = {name: i for i, name in enumerate(columns)}
        remapped: list[tuple] = []
        for row in rows:
            out = []
            for column in self.schema.columns:
                source = order.get(column.name)
                value = row[source] if source is not None else None
                if value is not None:
                    value = column.dtype.coerce(value)
                out.append(value)
            remapped.append(tuple(out))
        return remapped

    # ------------------------------------------------------------------
    # Checkout
    # ------------------------------------------------------------------
    def checkout(self, vids: int | Sequence[int]) -> CheckoutResult:
        """Materialize one or more versions.

        With several vids, records are merged in precedence order: a
        record whose primary key was already produced by an earlier
        version in the list is omitted (Section 3.3.1). Without a primary
        key, the rid itself deduplicates.
        """
        if isinstance(vids, int):
            vids = (vids,)
        if not vids:
            raise ValueError("checkout requires at least one version id")
        started = telemetry.monotonic()
        with telemetry.span(
            "cvd.checkout", dataset=self.name, versions=len(vids)
        ) as checkout_span:
            rows: list[tuple] = []
            rid_map: dict[tuple, int] = {}
            seen_keys: set[tuple] = set()
            scanned = 0
            key_positions = self.schema.key_positions()
            for vid in vids:
                self.versions.get(vid)
                with telemetry.span(
                    "model.checkout", model=self.model.model_name, vid=vid
                ) as model_span:
                    version_rows = self.model.checkout_rids(vid)
                    if model_span is not None:
                        model_span.set_attr("rows", len(version_rows))
                scanned += len(version_rows)
                for rid, payload in version_rows:
                    key = (
                        tuple(payload[i] for i in key_positions)
                        if key_positions
                        else (rid,)
                    )
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    rows.append(payload)
                    rid_map[key] = rid
            telemetry.count("cvd.checkout.rows_materialized", len(rows))
            telemetry.count("cvd.checkout.rows_deduplicated", scanned - len(rows))
            if checkout_span is not None:
                checkout_span.set_attr("rows", len(rows))
        telemetry.observe(
            "cvd.checkout.latency_seconds", telemetry.monotonic() - started
        )
        return CheckoutResult(
            rows=rows,
            rid_map=rid_map,
            parents=tuple(vids),
            columns=self.schema.column_names,
        )

    # ------------------------------------------------------------------
    # Versioned set operations (Section 3.3.2 functional primitives)
    # ------------------------------------------------------------------
    def diff(self, vid_a: int, vid_b: int) -> tuple[list[tuple], list[tuple]]:
        """Records in a but not b, and in b but not a (by rid)."""
        a = self.membership(vid_a)
        b = self.membership(vid_b)
        only_a = [self._payloads[r] for r in sorted(a - b)]
        only_b = [self._payloads[r] for r in sorted(b - a)]
        return only_a, only_b

    def v_diff(
        self, first: int | Sequence[int], second: int | Sequence[int]
    ) -> list[tuple]:
        """Records present in any of ``first`` but none of ``second``."""
        first_set = self._union_membership(first)
        second_set = self._union_membership(second)
        return [self._payloads[r] for r in sorted(first_set - second_set)]

    def v_intersect(self, vids: Sequence[int]) -> list[tuple]:
        """Records present in *all* of ``vids``."""
        if not vids:
            return []
        common: frozenset[int] = self.membership(vids[0])
        for vid in vids[1:]:
            common &= self.membership(vid)
        return [self._payloads[r] for r in sorted(common)]

    def _union_membership(self, vids: int | Sequence[int]) -> frozenset[int]:
        if isinstance(vids, int):
            vids = (vids,)
        union: set[int] = set()
        for vid in vids:
            union |= self.membership(vid)
        return frozenset(union)

    # ------------------------------------------------------------------
    # EXPLAIN plan trees (repro.observe.explain)
    # ------------------------------------------------------------------
    def explain_checkout(self, vids: int | Sequence[int]):
        """The plan tree for ``checkout(vids)``: model dispatch per vid
        plus the primary-key precedence merge for multi-version cases."""
        from repro.observe.explain import ExplainNode

        if isinstance(vids, int):
            vids = (vids,)
        total_rows = 0
        for vid in vids:
            total_rows += self.versions.get(vid).record_count
        node = ExplainNode(
            op="cvd.checkout",
            detail={
                "dataset": self.name,
                "versions": list(vids),
                "model": self.model.model_name,
            },
            estimated_rows=total_rows,
            span_match=("cvd.checkout", {"dataset": self.name}),
        )
        for vid in vids:
            node.add(self.model.explain_checkout(vid))
        if len(vids) > 1:
            node.add(
                ExplainNode(
                    op="merge.precedence",
                    detail={
                        "key": list(self.schema.primary_key or ("rid",)),
                        "order": list(vids),
                    },
                    estimated_rows=total_rows,
                )
            )
        return node

    def explain_commit(self, rows: int, parents: Sequence[int] = ()):
        """The plan tree for committing ``rows`` rows against ``parents``."""
        from repro.observe.explain import ExplainNode, io_cost

        parent_sizes = {
            parent: len(self._membership[parent])
            for parent in parents
            if parent in self._membership
        }
        parent_rows = sum(parent_sizes.values())
        node = ExplainNode(
            op="cvd.commit",
            detail={
                "dataset": self.name,
                "parents": list(parents),
                "model": self.model.model_name,
            },
            estimated_rows=rows,
            span_match=("cvd.commit", {"dataset": self.name}),
        )
        node.add(
            ExplainNode(
                op="parent.diff",
                detail={
                    "note": "no-cross-version-diff: compare against "
                    "parents only"
                },
                estimated_rows=parent_rows,
                estimated_cost=io_cost(seq_rows=parent_rows + rows),
            )
        )
        if self.schema.primary_key:
            node.add(
                ExplainNode(
                    op="pk.check",
                    detail={"key": list(self.schema.primary_key)},
                    estimated_rows=rows,
                    estimated_cost=io_cost(seq_rows=rows),
                )
            )
        node.add(self.model.explain_commit(rows, parent_sizes))
        return node

    def explain_diff(self, vid_a: int, vid_b: int):
        """The plan tree for ``diff(a, b)``: two membership fetches and
        two rid-set differences."""
        from repro.observe.explain import ExplainNode, io_cost

        size_a = self.versions.get(vid_a).record_count
        size_b = self.versions.get(vid_b).record_count
        node = ExplainNode(
            op="cvd.diff",
            detail={"dataset": self.name, "a": vid_a, "b": vid_b},
            estimated_rows=size_a + size_b,
            span_match=("command.diff", {"dataset": self.name}),
        )
        for vid, size in ((vid_a, size_a), (vid_b, size_b)):
            node.add(
                ExplainNode(
                    op="membership.fetch",
                    detail={"vid": vid},
                    estimated_rows=size,
                    estimated_cost=io_cost(random_rows=1),
                )
            )
        node.add(
            ExplainNode(
                op="rid_set.difference",
                detail={"directions": 2},
                estimated_rows=size_a + size_b,
                estimated_cost=io_cost(seq_rows=size_a + size_b),
            )
        )
        return node

    # ------------------------------------------------------------------
    # Bulk load from a generated history
    # ------------------------------------------------------------------
    @classmethod
    def from_history(
        cls,
        database: Database,
        history,
        name: str | None = None,
        model: str | DataModel = "split_by_rlist",
        schema: Schema | None = None,
    ) -> "CVD":
        """Replay a :class:`~repro.datasets.history.VersionedHistory`.

        The history's rids and vids are preserved so tests can compare
        CVD state against generator ground truth directly.
        """
        from repro.relational.types import INT

        if schema is None:
            columns = [
                ColumnDef(f"a{i}", INT)
                for i in range(history.num_attributes)
            ]
            schema = Schema(columns)
        cvd = cls(database, name or history.name, schema, model=model)
        for commit in history.commits:
            new_rids = set(commit.rids)
            for parent in commit.parents:
                new_rids -= history.records_of(parent)
            new_records = {
                rid: history.payloads[rid] for rid in new_rids
                if rid not in cvd._payloads
            }
            cvd._payloads.update(new_records)
            parent_membership = {
                p: cvd._membership[p] for p in commit.parents
            }
            cvd.model.commit_version(
                commit.vid,
                commit.parents,
                commit.rids,
                new_records,
                parent_membership,
            )
            cvd._membership[commit.vid] = commit.rids
            cvd.versions.register(
                VersionMetadata(
                    vid=commit.vid,
                    parents=commit.parents,
                    commit_time=telemetry.now(),
                    message=f"generated on branch {commit.branch}",
                    record_count=len(commit.rids),
                    attribute_ids=tuple(
                        cvd.attributes.intern(c.name, c.dtype)
                        for c in schema.columns
                    ),
                )
            )
            cvd._version_columns[commit.vid] = schema.column_names
            cvd._next_rid = max(cvd._next_rid, max(commit.rids, default=0) + 1)
        return cvd
