"""Users and the access controller (Figure 3.1's access-control module)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import PermissionError_


@dataclass
class User:
    """A registered OrpheusDB user."""

    name: str
    email: str = ""
    #: CVDs the user may read/commit to; empty means all public CVDs.
    grants: set[str] = field(default_factory=set)


class AccessController:
    """Tracks registered users and per-CVD permissions.

    Mirrors the ``create user`` / ``config`` / ``whoami`` commands: users
    register, log in, and are checked before touching CVDs or staged
    tables.
    """

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._current: str | None = None
        self._private_cvds: dict[str, str] = {}

    def create_user(self, name: str, email: str = "") -> User:
        if name in self._users:
            raise PermissionError_(f"user {name!r} already exists")
        user = User(name=name, email=email)
        self._users[name] = user
        return user

    def login(self, name: str) -> None:
        if name not in self._users:
            raise PermissionError_(f"unknown user {name!r}")
        self._current = name

    def whoami(self) -> str:
        if self._current is None:
            raise PermissionError_("no user is logged in")
        return self._current

    @property
    def current_user(self) -> str | None:
        return self._current

    def mark_private(self, cvd_name: str, owner: str) -> None:
        self._private_cvds[cvd_name] = owner

    def grant(self, cvd_name: str, user: str) -> None:
        if user not in self._users:
            raise PermissionError_(f"unknown user {user!r}")
        self._users[user].grants.add(cvd_name)

    def check_cvd_access(self, cvd_name: str, user: str | None = None) -> None:
        """Raise unless ``user`` (default: current) may access the CVD."""
        user = user or self._current
        owner = self._private_cvds.get(cvd_name)
        if owner is None:
            return  # public CVD
        if user is None:
            raise PermissionError_(
                f"CVD {cvd_name!r} is private; log in first"
            )
        if user != owner and cvd_name not in self._users[user].grants:
            raise PermissionError_(
                f"user {user!r} has no access to CVD {cvd_name!r}"
            )
