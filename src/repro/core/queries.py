"""Version-aware queries (Section 3.3.2).

Implements the query constructs OrpheusDB layers over plain SQL:

* ``SELECT ... FROM VERSION v1, v2 OF CVD c WHERE ... LIMIT n`` —
  :func:`select_from_versions`;
* ``SELECT vid, agg(...) FROM CVD c GROUP BY vid`` —
  :func:`aggregate_by_version`;
* the functional primitives ``ancestor``/``descendant``/``parent``,
  ``v_diff`` and ``v_intersect`` — exposed through :class:`VersionQuery`
  which lets them appear as predicates over versions.

Queries execute through the CVD's data model (real scans and joins), so
their cost reflects the physical design in use.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.cvd import CVD
from repro.relational.expressions import Expression
from repro.relational.query import Aggregate


def select_from_versions(
    cvd: CVD,
    vids: Sequence[int],
    columns: Sequence[str] = (),
    where: Expression | None = None,
    limit: int | None = None,
) -> list[tuple]:
    """``SELECT columns FROM VERSION vids OF CVD cvd WHERE ... LIMIT n``.

    Records appearing in several of the listed versions are returned
    once (they are the same immutable record).
    """
    schema = cvd.schema
    test = where.bind(schema) if where is not None else None
    project: Callable[[tuple], tuple] | None = None
    if columns:
        positions = schema.project_positions(columns)
        project = lambda row: tuple(row[i] for i in positions)  # noqa: E731

    seen_rids: set[int] = set()
    result: list[tuple] = []
    if limit is not None and limit <= 0:
        return result
    for vid in vids:
        for rid, payload in cvd.model.checkout_rids(vid):
            if rid in seen_rids:
                continue
            seen_rids.add(rid)
            if test is not None and not test(payload):
                continue
            result.append(project(payload) if project else payload)
            if limit is not None and len(result) >= limit:
                return result
    return result


def aggregate_by_version(
    cvd: CVD,
    aggregates: Sequence[Aggregate],
    where: Expression | None = None,
    vids: Sequence[int] | None = None,
) -> list[tuple]:
    """``SELECT vid, aggs FROM CVD c [WHERE ...] GROUP BY vid``.

    Returns one row per version: ``(vid, agg1, agg2, ...)``.
    """
    schema = cvd.schema
    test = where.bind(schema) if where is not None else None
    bound = [
        aggregate.expr.bind(schema) if aggregate.expr is not None else None
        for aggregate in aggregates
    ]
    target_vids = list(vids) if vids is not None else cvd.versions.vids()
    result: list[tuple] = []
    for vid in target_vids:
        value_lists: list[list[object]] = [[] for _ in aggregates]
        for _rid, payload in cvd.model.checkout_rids(vid):
            if test is not None and not test(payload):
                continue
            for slot, evaluate in enumerate(bound):
                value_lists[slot].append(
                    evaluate(payload) if evaluate is not None else 1
                )
        row: list[object] = [vid]
        for aggregate, values in zip(aggregates, value_lists):
            row.append(aggregate.compute(values))
        result.append(tuple(row))
    return result


class VersionQuery:
    """A fluent query over *versions* (not records) of a CVD.

    Supports the graph primitives as filters, mirroring queries like
    "all versions within 2 commits of v1 with fewer than 100 records"::

        VersionQuery(cvd).within_hops(1, 2).where_record_count(lambda n: n < 100).vids()
    """

    def __init__(self, cvd: CVD) -> None:
        self._cvd = cvd
        self._candidates: set[int] = set(cvd.versions.vids())

    # ------------------------------------------------------------------
    # Graph predicates
    # ------------------------------------------------------------------
    def ancestors_of(self, vid: int, max_hops: int | None = None) -> "VersionQuery":
        self._candidates &= self._cvd.versions.ancestors(vid, max_hops)
        return self

    def descendants_of(self, vid: int, max_hops: int | None = None) -> "VersionQuery":
        self._candidates &= self._cvd.versions.descendants(vid, max_hops)
        return self

    def parents_of(self, vid: int) -> "VersionQuery":
        self._candidates &= set(self._cvd.versions.parents(vid))
        return self

    def within_hops(self, vid: int, hops: int) -> "VersionQuery":
        self._candidates &= self._cvd.versions.neighbors(vid, hops)
        return self

    def merges_only(self) -> "VersionQuery":
        self._candidates = {
            v for v in self._candidates if self._cvd.versions.is_merge(v)
        }
        return self

    # ------------------------------------------------------------------
    # Metadata and data predicates
    # ------------------------------------------------------------------
    def where_author(self, author: str) -> "VersionQuery":
        self._candidates = {
            v
            for v in self._candidates
            if self._cvd.versions.get(v).author == author
        }
        return self

    def where_record_count(
        self, test: Callable[[int], bool]
    ) -> "VersionQuery":
        self._candidates = {
            v
            for v in self._candidates
            if test(self._cvd.versions.get(v).record_count)
        }
        return self

    def where_matching_count(
        self, where: Expression, test: Callable[[int], bool]
    ) -> "VersionQuery":
        """Keep versions whose number of records matching ``where``
        satisfies ``test`` (e.g. "precisely 100 tuples with age > 50")."""
        bound = where.bind(self._cvd.schema)
        keep: set[int] = set()
        for vid in self._candidates:
            count = sum(
                1
                for _rid, payload in self._cvd.model.checkout_rids(vid)
                if bound(payload)
            )
            if test(count):
                keep.add(vid)
        self._candidates = keep
        return self

    def where_delta_from_parent(
        self, test: Callable[[int], bool]
    ) -> "VersionQuery":
        """Keep versions whose symmetric record-diff from each parent
        satisfies ``test`` (e.g. "a bulk delete": > 100 records)."""
        keep: set[int] = set()
        for vid in self._candidates:
            parents = self._cvd.versions.parents(vid)
            if not parents:
                continue
            membership = self._cvd.membership(vid)
            for parent in parents:
                parent_membership = self._cvd.membership(parent)
                delta = len(membership ^ parent_membership)
                if test(delta):
                    keep.add(vid)
                    break
        self._candidates = keep
        return self

    # ------------------------------------------------------------------
    def vids(self) -> list[int]:
        """Matching version ids in commit order."""
        order = {v: i for i, v in enumerate(self._cvd.versions.vids())}
        return sorted(self._candidates, key=order.__getitem__)
