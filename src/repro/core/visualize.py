"""Version-graph rendering (the SIGMOD'17 demo's interactive view).

The OrpheusDB demo ships a UI that draws the version graph so users can
explore and operate on dataset versions; this module provides the same
information as text — an ASCII forest for terminals and Graphviz DOT for
anything that renders images.
"""

from __future__ import annotations

from repro.core.cvd import CVD


def ascii_version_graph(cvd: CVD, show_messages: bool = True) -> str:
    """An indented forest of versions, branch- and merge-aware.

    Merge versions appear under their first parent and mention the
    others, mirroring how git's ``log --graph`` flattens DAGs.
    """
    lines: list[str] = []
    children: dict[int, list[int]] = {}
    for vid in cvd.versions.vids():
        parents = cvd.versions.parents(vid)
        anchor = parents[0] if parents else None
        children.setdefault(anchor, []).append(vid)

    def render(vid: int, depth: int) -> None:
        metadata = cvd.versions.get(vid)
        marker = "●" if len(metadata.parents) <= 1 else "◆"
        extra = ""
        if len(metadata.parents) > 1:
            others = ", ".join(f"v{p}" for p in metadata.parents[1:])
            extra = f" (also merges {others})"
        message = f"  {metadata.message}" if show_messages and metadata.message else ""
        lines.append(
            f"{'  ' * depth}{marker} v{vid} "
            f"[{metadata.record_count} records]{extra}{message}"
        )
        for child in children.get(vid, ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)


def dot_version_graph(cvd: CVD) -> str:
    """Graphviz DOT for the version graph, one node per version."""
    lines = ["digraph versions {", "  rankdir=TB;", "  node [shape=box];"]
    for vid in cvd.versions.vids():
        metadata = cvd.versions.get(vid)
        label_parts = [f"v{vid}", f"{metadata.record_count} records"]
        if metadata.author:
            label_parts.append(metadata.author)
        if metadata.message:
            label_parts.append(metadata.message.replace('"', "'"))
        label = "\\n".join(label_parts)
        shape = ' style=filled fillcolor="#e8f0fe"' if cvd.versions.is_merge(vid) else ""
        lines.append(f'  v{vid} [label="{label}"{shape}];')
    for parent, child in cvd.versions.edges():
        lines.append(f"  v{parent} -> v{child};")
    lines.append("}")
    return "\n".join(lines)
