"""Approach 4.5: a table per version.

Every version is stored fully materialized in its own table. Storage is
proportional to Σ|R(v)| (the |E| of the bipartite graph) — roughly 10x the
deduplicated models on the benchmark — but checkout is optimal because it
reads exactly the relevant records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.relational.table import Table


class TablePerVersionModel(DataModel):
    model_name = "table_per_version"

    def __init__(self, database, cvd_name, data_schema) -> None:
        super().__init__(database, cvd_name, data_schema)
        self._tables: dict[int, Table] = {}
        #: Payload cache so commits can copy parent records without a
        #: CVD round-trip: rid -> payload.
        self._payloads: dict[int, tuple] = {}

    @property
    def _arity(self) -> int:
        return len(self.data_schema.columns)

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        self._payloads.update(new_records)
        table = self.database.create_table(
            f"{self.cvd_name}__v{vid}", self._rid_data_schema()
        )
        # Insert *all* records of the version — this is what makes commit
        # slower than split-by-rlist in Figure 4.1(b).
        width = self._arity
        for rid in sorted(membership):
            payload = self._payloads[rid]
            if len(payload) < width:  # record predates a schema change
                payload = payload + (None,) * (width - len(payload))
            table.insert((rid, *payload))
        telemetry.count("model.table_per_version.rows_inserted", len(membership))
        self._tables[vid] = table

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        table = self._tables.get(vid)
        if table is None:
            return []
        rows = [
            (row[0], tuple(row[1 : 1 + self._arity])) for row in table.scan()
        ]
        telemetry.count("model.table_per_version.rows_checked_out", len(rows))
        return rows

    def explain_checkout(self, vid: int):
        """Optimal checkout: scan exactly the version's own table."""
        from repro.observe.explain import ExplainNode, io_cost

        table = self._tables.get(vid)
        table_rows = table.row_count if table is not None else 0
        node = ExplainNode(
            op="model.table_per_version.checkout",
            detail={"vid": vid},
            estimated_rows=table_rows,
            span_match=("model.checkout", {"vid": vid}),
        )
        node.add(
            ExplainNode(
                op="table.scan",
                detail={
                    "table": table.name if table is not None else "(absent)"
                },
                estimated_rows=table_rows,
                estimated_cost=io_cost(seq_rows=table_rows),
            )
        )
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """The slow commit: every record of the version is re-inserted."""
        from repro.observe.explain import ExplainNode, io_cost

        node = ExplainNode(
            op="model.table_per_version.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="table.create_insert",
                detail={"note": "full materialization of the new version"},
                estimated_rows=estimated_rows,
                estimated_cost=io_cost(seq_rows=estimated_rows),
            )
        )
        return node

    def storage_bytes(self) -> int:
        return sum(t.storage_bytes() for t in self._tables.values())

    def drop(self) -> None:
        super().drop()
        self._tables.clear()
        self._payloads.clear()
