"""Approach 4.2: split-by-vlist.

Two tables: a data table (rid + data attributes, keyed on rid) and a
versioning table mapping rid -> vlist. Commit still pays an array append
per member record — cheaper than combined-table only because the rows
being rewritten are narrow — and checkout scans the versioning table for
containment, then joins the surviving rids against the data table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.relational.expressions import (
    ArrayAppend,
    ArrayContainedBy,
    InSet,
    col,
    lit,
)
from repro.relational.joins import hash_join
from repro.relational.table import ClusterOrder, Table


class SplitByVlistModel(DataModel):
    model_name = "split_by_vlist"

    def __init__(
        self, database, cvd_name, data_schema, vlist_index: bool = False
    ) -> None:
        """Args:
        vlist_index: Maintain an inverted index vid -> rids. The paper's
            footnote reports this variant: checkout gets faster (no
            containment scan) but commit gets even slower (every array
            append also updates the index).
        """
        super().__init__(database, cvd_name, data_schema)
        self._data: Table = database.create_table(
            f"{cvd_name}__data",
            self._rid_data_schema(),
            cluster_order=ClusterOrder.RID,
        )
        self._versioning: Table = database.create_table(
            f"{cvd_name}__vlist", self._rid_vlist_schema()
        )
        self.vlist_index_enabled = vlist_index
        self._vlist_index: dict[int, set[int]] = {}

    @property
    def _arity(self) -> int:
        return len(self.data_schema.columns)

    def table_names(self) -> list[str]:
        return [self._data.name, self._versioning.name]

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        existing = membership - new_records.keys()
        if existing:
            self._versioning.update_where(
                InSet(col("rid"), frozenset(existing)),
                {"vlist": ArrayAppend(col("vlist"), lit(vid))},
            )
        telemetry.count("model.split_by_vlist.vlist_appends", len(existing))
        for rid, payload in new_records.items():
            self._data.insert((rid, *payload))
            self._versioning.insert((rid, [vid]))
        telemetry.count("model.split_by_vlist.rows_inserted", len(new_records))
        if self.vlist_index_enabled:
            # The footnote's extra commit cost: one more index write per
            # member record (charged against the shared accountant).
            self._vlist_index[vid] = set(membership)
            self._versioning.accountant.charge_write(len(membership))

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        if self.vlist_index_enabled and vid in self._vlist_index:
            rids = sorted(self._vlist_index[vid])
        else:
            # SELECT rid FROM versioning WHERE ARRAY[vid] <@ vlist ...
            predicate = ArrayContainedBy(lit([vid]), col("vlist"))
            rids = [
                row[0] for row in self._versioning.scan_where(predicate)
            ]
        # ... JOIN data table (hash join: build on rids, probe via scan).
        rows = hash_join(rids, self._data, "rid")
        telemetry.count("model.split_by_vlist.rows_checked_out", len(rows))
        return [(row[0], tuple(row[1 : 1 + self._arity])) for row in rows]

    def explain_checkout(self, vid: int):
        """Containment scan (or inverted-index probe) + hash join."""
        from repro.observe.explain import ExplainNode, io_cost

        versioning_rows = self._versioning.row_count
        data_rows = self._data.row_count
        node = ExplainNode(
            op="model.split_by_vlist.checkout",
            detail={"vid": vid},
            span_match=("model.checkout", {"vid": vid}),
        )
        if self.vlist_index_enabled and vid in self._vlist_index:
            matched = len(self._vlist_index[vid])
            node.add(
                ExplainNode(
                    op="vlist_index.probe",
                    detail={"vid": vid},
                    estimated_rows=matched,
                    estimated_cost=io_cost(random_rows=1),
                )
            )
        else:
            node.add(
                ExplainNode(
                    op="vlist.containment_scan",
                    detail={
                        "table": self._versioning.name,
                        "predicate": f"ARRAY[{vid}] <@ vlist",
                    },
                    estimated_rows=versioning_rows,
                    estimated_cost=io_cost(seq_rows=versioning_rows),
                )
            )
        node.add(
            ExplainNode(
                op="join.hash",
                detail={"table": self._data.name, "table_rows": data_rows},
                estimated_cost=io_cost(seq_rows=data_rows),
            )
        )
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """Array append per reused record + insert per new record."""
        from repro.observe.explain import ExplainNode, io_cost

        reused = max(parent_sizes.values(), default=0)
        new_rows = max(estimated_rows - reused, 0)
        node = ExplainNode(
            op="model.split_by_vlist.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="vlist.append",
                detail={
                    "table": self._versioning.name,
                    "note": "rewrites one narrow array row per reused record",
                },
                estimated_rows=reused,
                estimated_cost=io_cost(seq_rows=self._versioning.row_count),
            )
        )
        node.add(
            ExplainNode(
                op="data.insert",
                detail={"table": self._data.name},
                estimated_rows=new_rows,
                estimated_cost=io_cost(seq_rows=new_rows),
            )
        )
        return node

    def storage_bytes(self) -> int:
        return self._data.storage_bytes() + self._versioning.storage_bytes()
