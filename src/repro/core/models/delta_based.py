"""Approach 4.4: the delta-based model.

Each version is its own table storing only the *modifications* from a
single base parent: inserted records plus tombstone rows for deletions. A
precedent metadata table records each version's base. When a version has
multiple parents, the base is the parent sharing the most records
(storing deltas against several parents would complicate recreation, as
the paper notes). Checkout walks the base chain back to the root,
discarding records already seen.

Advanced cross-version analytics are not supported "for free" by this
model — recreating versions is the only access path — which is the
paper's qualitative argument against it despite competitive storage.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.relational.schema import ColumnDef, Schema
from repro.relational.table import Table
from repro.relational.types import BOOL, INT


class DeltaBasedModel(DataModel):
    model_name = "delta_based"

    def __init__(self, database, cvd_name, data_schema) -> None:
        super().__init__(database, cvd_name, data_schema)
        self._delta_tables: dict[int, Table] = {}
        #: Precedent metadata: vid -> base vid (None for the root).
        self._precedent: Table = database.create_table(
            f"{cvd_name}__precedent",
            Schema(
                [ColumnDef("vid", INT), ColumnDef("base", INT)],
                primary_key=("vid",),
            ),
        )
        self._payloads: dict[int, tuple] = {}

    @property
    def _arity(self) -> int:
        return len(self.data_schema.columns)

    def table_names(self) -> list[str]:
        return [self._precedent.name] + [
            t.name for t in self._delta_tables.values()
        ]

    def _delta_schema(self) -> Schema:
        # tombstone precedes the data attributes so ALTER TABLE ADD
        # COLUMN (which appends) keeps data attributes contiguous.
        return Schema(
            [ColumnDef("rid", INT), ColumnDef("tombstone", BOOL)]
            + list(self.data_schema.columns),
            primary_key=("rid",),
        )

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        self._payloads.update(new_records)
        base: int | None = None
        if parents:
            base = max(
                parents,
                key=lambda p: len(parent_membership[p] & membership),
            )
        table = self.database.create_table(
            f"{self.cvd_name}__delta_v{vid}", self._delta_schema()
        )
        base_rids = parent_membership[base] if base is not None else frozenset()
        inserted = membership - base_rids
        deleted = base_rids - membership
        for rid in sorted(inserted):
            table.insert((rid, False, *self._pad(self._payloads[rid])))
        blank = (None,) * self._arity
        for rid in sorted(deleted):
            table.insert((rid, True, *blank))
        telemetry.count("model.delta_based.rows_inserted", len(inserted))
        telemetry.count("model.delta_based.tombstones_inserted", len(deleted))
        self._delta_tables[vid] = table
        self._precedent.insert((vid, base))

    def base_of(self, vid: int) -> int | None:
        rows = self._precedent.lookup("vid", vid)
        if not rows:
            return None
        return rows[0][1]

    def chain_of(self, vid: int) -> list[int]:
        """The base chain from ``vid`` back to the root (inclusive)."""
        chain = [vid]
        seen = {vid}
        current = self.base_of(vid)
        while current is not None:
            if current in seen:
                raise RuntimeError(f"cycle in precedent chain at {current}")
            chain.append(current)
            seen.add(current)
            current = self.base_of(current)
        return chain

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        if vid not in self._delta_tables:
            return []
        seen: set[int] = set()
        result: list[RecordRow] = []
        chain = self.chain_of(vid)
        telemetry.observe("model.delta_based.chain_length", len(chain))
        for step in chain:
            table = self._delta_tables[step]
            width = self._arity
            for row in table.scan():
                rid = row[0]
                if rid in seen:
                    continue
                seen.add(rid)
                tombstone = row[1]
                if not tombstone:
                    payload = tuple(row[2 : 2 + width])
                    if len(payload) < width:
                        payload = payload + (None,) * (width - len(payload))
                    result.append((rid, payload))
        return result

    def explain_checkout(self, vid: int):
        """Walk the base chain root-ward, scanning one delta per step."""
        from repro.observe.explain import ExplainNode, io_cost

        chain = self.chain_of(vid) if vid in self._delta_tables else []
        node = ExplainNode(
            op="model.delta_based.checkout",
            detail={"vid": vid, "chain_length": len(chain)},
            span_match=("model.checkout", {"vid": vid}),
        )
        for step in chain:
            table = self._delta_tables[step]
            node.add(
                ExplainNode(
                    op="delta.scan",
                    detail={"vid": step, "table": table.name},
                    estimated_rows=table.row_count,
                    estimated_cost=io_cost(seq_rows=table.row_count),
                )
            )
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """Pick the closest base, store only the modifications."""
        from repro.observe.explain import ExplainNode, io_cost

        base_size = max(parent_sizes.values(), default=0)
        delta_rows = abs(estimated_rows - base_size) or min(
            estimated_rows, 1
        )
        node = ExplainNode(
            op="model.delta_based.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="delta.encode",
                detail={
                    "note": "inserted records + tombstones vs the closest base"
                },
                estimated_rows=delta_rows,
                estimated_cost=io_cost(seq_rows=delta_rows),
            )
        )
        return node

    def _pad(self, payload: tuple) -> tuple:
        width = self._arity
        if len(payload) < width:
            return payload + (None,) * (width - len(payload))
        return payload

    def storage_bytes(self) -> int:
        total = self._precedent.storage_bytes()
        return total + sum(t.storage_bytes() for t in self._delta_tables.values())

    def drop(self) -> None:
        super().drop()
        self._delta_tables.clear()
        self._payloads.clear()
