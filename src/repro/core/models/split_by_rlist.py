"""Approach 4.3: split-by-rlist — the model OrpheusDB adopts.

Two tables: the data table (rid + attributes, keyed on rid) and a
versioning table keyed on vid whose ``rlist`` array lists the version's
records. Commit inserts the new records plus exactly one versioning
tuple — no array appends — and checkout unnests one rlist and hash-joins
it with the data table.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.relational.joins import JOIN_ALGORITHMS
from repro.relational.table import ClusterOrder, Table


class SplitByRlistModel(DataModel):
    model_name = "split_by_rlist"

    def __init__(
        self,
        database,
        cvd_name,
        data_schema,
        join_algorithm: str = "hash",
        table_suffix: str = "",
        compress_rlists: bool = False,
    ) -> None:
        """Args:
        join_algorithm: Which physical join the checkout uses — ``hash``
            (the paper's choice), ``merge``, or ``index_nested_loop``;
            exposed for the Section 5.5.5 cost-model validation.
        table_suffix: Distinguishes multiple physical instances of the
            model over one CVD (used by the partitioned store).
        compress_rlists: Store rlists range-encoded (the Section 4.2
            remark that array storage can shrink further via
            range-encoding); transparent to readers.
        """
        super().__init__(database, cvd_name, data_schema)
        if join_algorithm not in JOIN_ALGORITHMS:
            raise ValueError(f"unknown join algorithm {join_algorithm!r}")
        self.join_algorithm = join_algorithm
        self.compress_rlists = compress_rlists
        self._data: Table = database.create_table(
            f"{cvd_name}__data{table_suffix}",
            self._rid_data_schema(),
            cluster_order=ClusterOrder.RID,
        )
        self._versioning: Table = database.create_table(
            f"{cvd_name}__rlist{table_suffix}", self._vid_rlist_schema()
        )

    @property
    def _arity(self) -> int:
        return len(self.data_schema.columns)

    def table_names(self) -> list[str]:
        return [self._data.name, self._versioning.name]

    @property
    def data_table(self) -> Table:
        return self._data

    @property
    def versioning_table(self) -> Table:
        return self._versioning

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        for rid, payload in new_records.items():
            self._data.insert((rid, *payload))
        # One tuple into the versioning table; no array rewriting.
        self._versioning.insert((vid, self._encode_rlist(membership)))
        telemetry.count("model.split_by_rlist.rows_inserted", len(new_records))

    def insert_versions_bulk(
        self, versions: Iterable[tuple[int, frozenset[int]]]
    ) -> None:
        """Register membership rows without data inserts (migration path)."""
        for vid, membership in versions:
            self._versioning.insert((vid, self._encode_rlist(membership)))

    def _encode_rlist(self, membership: frozenset[int]):
        ordered = sorted(membership)
        if self.compress_rlists:
            from repro.relational.arrays import RangeEncodedArray

            return RangeEncodedArray(ordered)
        return ordered

    def rlist_of(self, vid: int) -> list[int]:
        rows = self._versioning.lookup("vid", vid)
        if not rows:
            return []
        return list(rows[0][1])  # unnest(rlist)

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        rids = self.rlist_of(vid)
        join = JOIN_ALGORITHMS[self.join_algorithm]
        rows = join(rids, self._data, "rid")
        telemetry.count("model.split_by_rlist.rows_checked_out", len(rows))
        width = self._arity
        return [(row[0], tuple(row[1 : 1 + width])) for row in rows]

    def explain_checkout(self, vid: int):
        """rlist lookup (one index probe) + join against the data table."""
        from repro.observe.explain import ExplainNode, io_cost

        rids = self.rlist_of(vid)
        data_rows = self._data.row_count
        node = ExplainNode(
            op="model.split_by_rlist.checkout",
            detail={"vid": vid},
            estimated_rows=len(rids),
            span_match=("model.checkout", {"vid": vid}),
        )
        node.add(
            ExplainNode(
                op="rlist.lookup",
                detail={"table": self._versioning.name, "vid": vid},
                estimated_rows=len(rids),
                estimated_cost=io_cost(random_rows=1),
            )
        )
        if self.join_algorithm == "index_nested_loop":
            join_cost = io_cost(random_rows=len(rids))
        elif self.join_algorithm == "merge":
            join_cost = io_cost(seq_rows=data_rows + len(rids))
        else:  # hash: build over the rid list, probe the data table scan
            join_cost = io_cost(seq_rows=data_rows)
        node.add(
            ExplainNode(
                op=f"join.{self.join_algorithm}",
                detail={"table": self._data.name, "table_rows": data_rows},
                estimated_rows=len(rids),
                estimated_cost=join_cost,
            )
        )
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """Insert only the new records + exactly one versioning tuple."""
        from repro.observe.explain import ExplainNode, io_cost

        reused = max(parent_sizes.values(), default=0)
        new_rows = max(estimated_rows - reused, 0)
        node = ExplainNode(
            op="model.split_by_rlist.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="data.insert",
                detail={"table": self._data.name, "note": "new records only"},
                estimated_rows=new_rows,
                estimated_cost=io_cost(seq_rows=new_rows),
            )
        )
        node.add(
            ExplainNode(
                op="rlist.insert",
                detail={"table": self._versioning.name},
                estimated_rows=1,
                estimated_cost=io_cost(seq_rows=1),
            )
        )
        return node

    def storage_bytes(self) -> int:
        return self._data.storage_bytes() + self._versioning.storage_bytes()

    def data_record_count(self) -> int:
        """|R_k|: records in this (partition's) data table."""
        return self._data.row_count
