"""The five physical data models of Chapter 4.

Every model implements the same :class:`DataModel` interface — commit a
version's membership, check out a version's records, report storage — so
the CVD layer and the Figure 4.1 benchmark can swap them freely.
"""

from repro.core.models.base import DataModel
from repro.core.models.combined_table import CombinedTableModel
from repro.core.models.delta_based import DeltaBasedModel
from repro.core.models.split_by_rlist import SplitByRlistModel
from repro.core.models.split_by_vlist import SplitByVlistModel
from repro.core.models.table_per_version import TablePerVersionModel

DATA_MODELS: dict[str, type[DataModel]] = {
    CombinedTableModel.model_name: CombinedTableModel,
    SplitByVlistModel.model_name: SplitByVlistModel,
    SplitByRlistModel.model_name: SplitByRlistModel,
    TablePerVersionModel.model_name: TablePerVersionModel,
    DeltaBasedModel.model_name: DeltaBasedModel,
}


def make_model(name, database, cvd_name, data_schema):
    """Instantiate a data model by its registry name.

    ``partitioned_rlist`` resolves lazily to the Chapter 5 partitioned
    store (it lives in :mod:`repro.partition`, which depends on this
    package — a direct registry entry would be a circular import).
    """
    if name == "partitioned_rlist":
        from repro.partition.partitioned_store import PartitionedRlistStore

        return PartitionedRlistStore(database, cvd_name, data_schema)
    try:
        model_cls = DATA_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown data model {name!r}; have "
            f"{sorted(DATA_MODELS) + ['partitioned_rlist']}"
        ) from None
    return model_cls(database, cvd_name, data_schema)


__all__ = [
    "DATA_MODELS",
    "CombinedTableModel",
    "DataModel",
    "DeltaBasedModel",
    "SplitByRlistModel",
    "SplitByVlistModel",
    "TablePerVersionModel",
    "make_model",
]
