"""Approach 4.1: the combined table.

One table holding rid, the data attributes, and a ``vlist`` array of the
versions each record belongs to. Commit must append the new vid to the
vlist of *every* record in the version — the expensive full-table
array-append UPDATE that dominates Figure 4.1(b). Checkout is a full scan
with the ``ARRAY[vid] <@ vlist`` containment filter.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.relational.expressions import (
    ArrayAppend,
    ArrayContainedBy,
    InSet,
    col,
    lit,
)
from repro.relational.table import ClusterOrder, Table


class CombinedTableModel(DataModel):
    model_name = "combined_table"

    def __init__(self, database, cvd_name, data_schema) -> None:
        super().__init__(database, cvd_name, data_schema)
        self._table: Table = database.create_table(
            f"{cvd_name}__combined",
            self._combined_schema(),
            cluster_order=ClusterOrder.RID,
        )

    @property
    def _arity(self) -> int:
        return len(self.data_schema.columns)

    def table_names(self) -> list[str]:
        return [self._table.name]

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        existing = membership - new_records.keys()
        if existing:
            # UPDATE combined SET vlist = vlist + vid WHERE rid IN (...):
            # a full scan that rewrites one array per matching record.
            self._table.update_where(
                InSet(col("rid"), frozenset(existing)),
                {"vlist": ArrayAppend(col("vlist"), lit(vid))},
            )
        telemetry.count("model.combined_table.vlist_appends", len(existing))
        for rid, payload in new_records.items():
            self._table.insert((rid, [vid], *payload))
        telemetry.count("model.combined_table.rows_inserted", len(new_records))

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        predicate = ArrayContainedBy(lit([vid]), col("vlist"))
        rows = list(self._table.scan_where(predicate))
        telemetry.count("model.combined_table.rows_checked_out", len(rows))
        return [(row[0], tuple(row[2 : 2 + self._arity])) for row in rows]

    def explain_checkout(self, vid: int):
        """Full scan of the one combined table with a containment filter."""
        from repro.observe.explain import ExplainNode, io_cost

        table_rows = self._table.row_count
        node = ExplainNode(
            op="model.combined_table.checkout",
            detail={"vid": vid},
            span_match=("model.checkout", {"vid": vid}),
        )
        node.add(
            ExplainNode(
                op="vlist.containment_scan",
                detail={
                    "table": self._table.name,
                    "predicate": f"ARRAY[{vid}] <@ vlist",
                },
                estimated_rows=table_rows,
                estimated_cost=io_cost(seq_rows=table_rows),
            )
        )
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """The expensive path: an array-append UPDATE over every reused
        record of the wide table (Figure 4.1(b))."""
        from repro.observe.explain import ExplainNode, io_cost

        reused = max(parent_sizes.values(), default=0)
        new_rows = max(estimated_rows - reused, 0)
        node = ExplainNode(
            op="model.combined_table.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="vlist.append",
                detail={
                    "table": self._table.name,
                    "note": "full-scan UPDATE rewriting one wide row per "
                    "reused record",
                },
                estimated_rows=reused,
                estimated_cost=io_cost(seq_rows=self._table.row_count),
            )
        )
        node.add(
            ExplainNode(
                op="data.insert",
                detail={"table": self._table.name},
                estimated_rows=new_rows,
                estimated_cost=io_cost(seq_rows=new_rows),
            )
        )
        return node

    def storage_bytes(self) -> int:
        return self._table.storage_bytes()
