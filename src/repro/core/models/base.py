"""The common interface all physical data models implement.

Responsibility split: the CVD layer owns rid assignment (applying the
no-cross-version-diff rule of Section 3.3.1), the version graph, and
primary-key precedence during multi-version checkout. A data model only
answers *where bytes live*: given a version's full rid membership and the
payloads of records that are new to the CVD, persist them; given a vid,
produce the (rid, payload) pairs of that version.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

from repro.relational.database import Database
from repro.relational.schema import ColumnDef, Schema
from repro.relational.types import INT, INT_ARRAY

RecordRow = tuple[int, tuple]
"""(rid, payload) — payload is the tuple of data-attribute values."""


class DataModel(abc.ABC):
    """Abstract physical design for storing a CVD's versions."""

    #: Registry name, e.g. ``split_by_rlist``.
    model_name: str = ""

    def __init__(
        self, database: Database, cvd_name: str, data_schema: Schema
    ) -> None:
        """Args:
        database: Backend database the model creates its tables in.
        cvd_name: Name prefix for the model's physical tables.
        data_schema: Logical schema of the relation (data attributes
            only, with the relation primary key; no rid/vlist).
        """
        self.database = database
        self.cvd_name = cvd_name
        self.data_schema = data_schema

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        """Persist version ``vid``.

        Args:
            vid: The new version id.
            parents: Parent version ids (empty for the root).
            membership: All rids contained in the version.
            new_records: rid -> payload for rids never stored before.
            parent_membership: rid membership of each parent version —
                supplied so delta-style models can compute differences
                without asking the CVD back.
        """

    @abc.abstractmethod
    def checkout_rids(self, vid: int) -> list[RecordRow]:
        """Return all (rid, payload) pairs of version ``vid``."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Approximate bytes used, including indexes."""

    def drop(self) -> None:
        """Drop all physical tables owned by this model."""
        for name in self.table_names():
            self.database.drop_table(name, missing_ok=True)

    @abc.abstractmethod
    def table_names(self) -> list[str]:
        """Physical table names owned by this model."""

    # ------------------------------------------------------------------
    # EXPLAIN contributions (repro.observe.explain)
    # ------------------------------------------------------------------
    def explain_checkout(self, vid: int):
        """The plan subtree describing how this model materializes
        ``vid``. The default is a bare dispatch node; every concrete
        model overrides with its physical access path."""
        from repro.observe.explain import ExplainNode

        return ExplainNode(
            op=f"model.{self.model_name}.checkout",
            detail={"vid": vid},
            span_match=("model.checkout", {"vid": vid}),
        )

    def explain_commit(
        self, estimated_rows: int, parent_sizes: Mapping[int, int]
    ):
        """The plan subtree for persisting a new version of
        ``estimated_rows`` rows whose parents hold ``parent_sizes``
        records each."""
        from repro.observe.explain import ExplainNode, io_cost

        return ExplainNode(
            op=f"model.{self.model_name}.commit",
            detail={"parents": sorted(parent_sizes)},
            estimated_rows=estimated_rows,
            estimated_cost=io_cost(seq_rows=estimated_rows),
            span_match=("model.commit", {}),
        )

    def alter_schema(self, new_schema: Schema) -> None:
        """Propagate a CVD schema change to the physical tables.

        The default implementation ALTERs every table that embeds the
        data attributes: new columns are appended (NULL for old rows) and
        widened columns are coerced. Partitioned models inherit this and
        only pay the ALTER on each (smaller) partition, which is the
        mitigation Section 4.3 mentions.
        """
        old_names = {c.name for c in self.data_schema.columns}
        for table_name in self.table_names():
            table = self.database.table(table_name)
            if not all(
                table.schema.has_column(c.name)
                for c in self.data_schema.columns
            ):
                continue  # versioning/metadata table without data columns
            for column in new_schema.columns:
                if column.name not in old_names:
                    table.add_column(column)
                elif (
                    table.schema.has_column(column.name)
                    and table.schema.dtype_of(column.name) is not column.dtype
                ):
                    table.widen_column(column.name, column.dtype)
        self.data_schema = new_schema

    # ------------------------------------------------------------------
    # Shared schema builders
    # ------------------------------------------------------------------
    def _rid_data_schema(self) -> Schema:
        """rid + data attributes, keyed on rid (records are immutable, so
        the relation PK cannot be the physical key across versions)."""
        return Schema(
            [ColumnDef("rid", INT)] + list(self.data_schema.columns),
            primary_key=("rid",),
        )

    def _rid_vlist_schema(self) -> Schema:
        return Schema(
            [ColumnDef("rid", INT), ColumnDef("vlist", INT_ARRAY)],
            primary_key=("rid",),
        )

    def _vid_rlist_schema(self) -> Schema:
        return Schema(
            [ColumnDef("vid", INT), ColumnDef("rlist", INT_ARRAY)],
            primary_key=("vid",),
        )

    def _combined_schema(self) -> Schema:
        # vlist precedes the data attributes so ALTER TABLE ADD COLUMN
        # (which appends) keeps the data attributes contiguous at the end.
        return Schema(
            [ColumnDef("rid", INT), ColumnDef("vlist", INT_ARRAY)]
            + list(self.data_schema.columns),
            primary_key=("rid",),
        )
