"""The OrpheusDB query translator: version-aware SQL as strings.

Parses the SQL dialect of Section 3.3.2 and translates it onto the
version-aware query layer::

    SELECT * FROM VERSION 1, 2 OF CVD interaction
    WHERE coexpression > 80 LIMIT 50;

    SELECT vid, count(*), max(coexpression) FROM CVD interaction
    GROUP BY vid;

Supported grammar (case-insensitive keywords):

* ``SELECT`` list: ``*``, column names, aggregates ``count(*)``,
  ``count(col)``, ``sum/avg/min/max(col)``, each with optional
  ``AS alias``; ``vid`` is a valid column when grouping by version.
* ``FROM VERSION v1[, v2 ...] OF CVD name`` or ``FROM CVD name``.
* ``WHERE`` with comparisons, ``AND``/``OR``/``NOT``, parentheses, and
  the versioning predicates ``vid IN ancestor(v)``,
  ``vid IN descendant(v)``, ``vid IN parent(v)`` (version-graph
  functional primitives).
* ``GROUP BY vid``, ``ORDER BY col [ASC|DESC]``, ``LIMIT n``.

The translator compiles into :func:`select_from_versions` /
:func:`aggregate_by_version` calls — the same code paths the Python API
uses — so the dialect adds no second semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.cvd import CVD
from repro.core.errors import CVDError
from repro.core.queries import aggregate_by_version, select_from_versions
from repro.relational.expressions import (
    BinaryOp,
    Expression,
    UnaryOp,
    col,
    lit,
)
from repro.relational.query import Aggregate


class SQLParseError(CVDError):
    """The query string does not match the supported dialect."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'[^']*')"
    r"|(?P<number>\d+\.\d+|\d+)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|;)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "version",
    "of", "cvd", "and", "or", "not", "as", "asc", "desc", "in",
}

_AGGREGATES = {"count", "sum", "avg", "min", "max"}

_GRAPH_FUNCTIONS = {"ancestor", "descendant", "parent"}


@dataclass(frozen=True)
class _Token:
    kind: str  # keyword / word / number / string / op
    value: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise SQLParseError(
                f"cannot tokenize near {text[position:position + 20]!r}"
            )
        position = match.end()
        if match.group("string") is not None:
            tokens.append(_Token("string", match.group("string")[1:-1]))
        elif match.group("number") is not None:
            tokens.append(_Token("number", match.group("number")))
        elif match.group("op") is not None:
            value = match.group("op")
            if value == ";":
                continue
            tokens.append(_Token("op", value))
        else:
            word = match.group("word")
            lowered = word.lower()
            kind = "keyword" if lowered in _KEYWORDS else "word"
            tokens.append(
                _Token(kind, lowered if kind == "keyword" else word)
            )
    tokens.append(_Token("eof", ""))
    return tokens


@dataclass
class _SelectItem:
    column: str | None = None  # None for aggregates and '*'
    aggregate: str | None = None
    aggregate_arg: str | None = None  # None = '*'
    alias: str | None = None
    star: bool = False


@dataclass
class ParsedQuery:
    """The parsed form of one SELECT statement."""

    items: list[_SelectItem]
    cvd_name: str = ""
    version_ids: list[int] | None = None  # None: whole CVD
    where: object | None = None  # expression tree (pre-binding)
    group_by_vid: bool = False
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if token.kind != "keyword" or token.value != word:
            raise SQLParseError(f"expected {word.upper()}, got {token.value!r}")

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.value == word:
            self._advance()
            return True
        return False

    def _accept_op(self, value: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.value == value:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> ParsedQuery:
        self._expect_keyword("select")
        items = [self._parse_item()]
        while self._accept_op(","):
            items.append(self._parse_item())
        query = ParsedQuery(items=items)

        self._expect_keyword("from")
        if self._accept_keyword("version"):
            version_ids = [self._parse_int()]
            while self._accept_op(","):
                version_ids.append(self._parse_int())
            self._expect_keyword("of")
            self._expect_keyword("cvd")
            query.version_ids = version_ids
        else:
            self._expect_keyword("cvd")
        name_token = self._advance()
        if name_token.kind != "word":
            raise SQLParseError(f"expected CVD name, got {name_token.value!r}")
        query.cvd_name = name_token.value

        if self._accept_keyword("where"):
            query.where = self._parse_or()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_token = self._advance()
            if group_token.kind != "word" or group_token.value.lower() != "vid":
                raise SQLParseError("only GROUP BY vid is supported")
            query.group_by_vid = True
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            query.order_by.append(self._parse_order_key())
            while self._accept_op(","):
                query.order_by.append(self._parse_order_key())
        if self._accept_keyword("limit"):
            query.limit = self._parse_int()
        trailing = self._peek()
        if trailing.kind != "eof":
            raise SQLParseError(f"unexpected trailing {trailing.value!r}")
        return query

    def _parse_item(self) -> _SelectItem:
        token = self._peek()
        if token.kind == "op" and token.value == "*":
            self._advance()
            return _SelectItem(star=True)
        if (
            token.kind == "word"
            and token.value.lower() in _AGGREGATES
            and self._peek(1).kind == "op"
            and self._peek(1).value == "("
        ):
            function = self._advance().value.lower()
            self._advance()  # (
            argument: str | None
            if self._accept_op("*"):
                argument = None
            else:
                arg_token = self._advance()
                if arg_token.kind != "word":
                    raise SQLParseError("aggregate argument must be a column")
                argument = arg_token.value
            if not self._accept_op(")"):
                raise SQLParseError("expected ')' after aggregate")
            item = _SelectItem(aggregate=function, aggregate_arg=argument)
            if self._accept_keyword("as"):
                item.alias = self._advance().value
            return item
        if token.kind == "word":
            self._advance()
            item = _SelectItem(column=token.value)
            if self._accept_keyword("as"):
                item.alias = self._advance().value
            return item
        raise SQLParseError(f"unexpected select item {token.value!r}")

    def _parse_order_key(self) -> tuple[str, bool]:
        token = self._advance()
        if token.kind != "word":
            raise SQLParseError("ORDER BY expects a column name")
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return token.value, descending

    def _parse_int(self) -> int:
        token = self._advance()
        if token.kind != "number" or "." in token.value:
            raise SQLParseError(f"expected an integer, got {token.value!r}")
        return int(token.value)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _parse_or(self):
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = ("or", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = ("and", left, self._parse_not())
        return left

    def _parse_not(self):
        if self._accept_keyword("not"):
            return ("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        if self._accept_op("("):
            inner = self._parse_or()
            if not self._accept_op(")"):
                raise SQLParseError("expected ')'")
            return inner
        left = self._parse_operand()
        # vid IN ancestor(k) / descendant(k) / parent(k)
        if self._accept_keyword("in"):
            function_token = self._advance()
            if (
                function_token.kind != "word"
                or function_token.value.lower() not in _GRAPH_FUNCTIONS
            ):
                raise SQLParseError(
                    "IN expects ancestor(v), descendant(v) or parent(v)"
                )
            if not self._accept_op("("):
                raise SQLParseError("expected '('")
            argument = self._parse_int()
            if not self._accept_op(")"):
                raise SQLParseError("expected ')'")
            return ("graph", left, function_token.value.lower(), argument)
        operator_token = self._advance()
        if operator_token.kind != "op" or operator_token.value not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise SQLParseError(
                f"expected a comparison operator, got {operator_token.value!r}"
            )
        right = self._parse_operand()
        operator = "!=" if operator_token.value == "<>" else operator_token.value
        return (operator, left, right)

    def _parse_operand(self):
        token = self._advance()
        if token.kind == "number":
            return ("lit", float(token.value) if "." in token.value else int(token.value))
        if token.kind == "string":
            return ("lit", token.value)
        if token.kind == "word":
            return ("col", token.value)
        raise SQLParseError(f"unexpected operand {token.value!r}")


def _compile_predicate(tree, cvd: CVD) -> tuple[Expression | None, set[int] | None]:
    """Split the parse tree into a row predicate and a vid filter.

    Graph predicates (``vid IN ancestor(v)``) constrain which versions
    are read; everything else becomes a bound row expression. Graph
    predicates may only be AND-combined with row predicates at the top
    level — mirroring how the real system pushes them into the version
    manager.
    """
    vid_filter: set[int] | None = None
    row_parts = []

    def split(node):
        nonlocal vid_filter
        if isinstance(node, tuple) and node[0] == "and":
            split(node[1])
            split(node[2])
            return
        if isinstance(node, tuple) and node[0] == "graph":
            _op, left, function, argument = node
            if left != ("col", "vid"):
                raise SQLParseError("graph predicates apply to vid")
            if function == "ancestor":
                vids = cvd.versions.ancestors(argument)
            elif function == "descendant":
                vids = cvd.versions.descendants(argument)
            else:
                vids = set(cvd.versions.parents(argument))
            vid_filter = vids if vid_filter is None else (vid_filter & vids)
            return
        row_parts.append(node)

    if tree is not None:
        split(tree)

    expression: Expression | None = None
    for part in row_parts:
        compiled = _compile_expression(part)
        expression = (
            compiled if expression is None else BinaryOp("and", expression, compiled)
        )
    return expression, vid_filter


def _compile_expression(node) -> Expression:
    kind = node[0]
    if kind == "lit":
        return lit(node[1])
    if kind == "col":
        return col(node[1])
    if kind == "not":
        return UnaryOp("not", _compile_expression(node[1]))
    if kind in ("and", "or"):
        return BinaryOp(kind, _compile_expression(node[1]), _compile_expression(node[2]))
    if kind in ("=", "!=", "<", "<=", ">", ">="):
        return BinaryOp(kind, _compile_expression(node[1]), _compile_expression(node[2]))
    if kind == "graph":
        raise SQLParseError(
            "graph predicates must be AND-combined at the top level"
        )
    raise SQLParseError(f"cannot compile predicate node {node!r}")


@dataclass
class SQLResult:
    """Rows plus column names from a translated query."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def run_sql(cvds: dict[str, CVD] | CVD, text: str) -> SQLResult:
    """Parse and execute one version-aware SELECT statement.

    Args:
        cvds: A name->CVD mapping (e.g. from :class:`Orpheus`) or a
            single CVD (then the FROM clause's name must match it).
        text: The SQL string.
    """
    query = _Parser(text).parse()
    if isinstance(cvds, CVD):
        if query.cvd_name != cvds.name:
            raise SQLParseError(
                f"query references CVD {query.cvd_name!r}, got {cvds.name!r}"
            )
        cvd = cvds
    else:
        try:
            cvd = cvds[query.cvd_name]
        except KeyError:
            raise SQLParseError(f"unknown CVD {query.cvd_name!r}") from None

    where, vid_filter = _compile_predicate(query.where, cvd)

    if query.group_by_vid:
        return _run_grouped(cvd, query, where, vid_filter)
    return _run_select(cvd, query, where, vid_filter)


def _run_select(cvd, query: ParsedQuery, where, vid_filter) -> SQLResult:
    if query.version_ids is not None:
        vids = list(query.version_ids)
    else:
        vids = cvd.versions.vids()
    if vid_filter is not None:
        vids = [v for v in vids if v in vid_filter]

    star = any(item.star for item in query.items)
    if star and len(query.items) > 1:
        raise SQLParseError("'*' cannot be combined with other select items")
    if any(item.aggregate for item in query.items):
        raise SQLParseError("aggregates require GROUP BY vid")
    columns = (
        cvd.schema.column_names
        if star
        else [item.column for item in query.items]
    )
    rows = select_from_versions(
        cvd,
        vids,
        columns=() if star else tuple(columns),
        where=where,
        limit=None if query.order_by else query.limit,
    )
    if query.order_by:
        positions = {name: i for i, name in enumerate(columns)}
        for name, descending in reversed(query.order_by):
            if name not in positions:
                raise SQLParseError(
                    f"ORDER BY column {name!r} not in select list"
                )
            rows = sorted(
                rows,
                key=lambda row: (
                    row[positions[name]] is not None,
                    row[positions[name]],
                ),
                reverse=descending,
            )
        if query.limit is not None:
            rows = rows[: query.limit]
    output = [
        item.alias or item.column
        for item in query.items
        if not item.star
    ] or list(cvd.schema.column_names)
    return SQLResult(columns=output, rows=rows)


def _run_grouped(cvd, query: ParsedQuery, where, vid_filter) -> SQLResult:
    vids = (
        list(query.version_ids)
        if query.version_ids is not None
        else cvd.versions.vids()
    )
    if vid_filter is not None:
        vids = [v for v in vids if v in vid_filter]

    aggregates = []
    output_columns = []
    saw_vid = False
    for item in query.items:
        if item.star:
            raise SQLParseError("'*' is not valid with GROUP BY vid")
        if item.column is not None:
            if item.column.lower() != "vid":
                raise SQLParseError(
                    "only vid and aggregates may appear with GROUP BY vid"
                )
            saw_vid = True
            output_columns.append(item.alias or "vid")
            continue
        argument = (
            col(item.aggregate_arg) if item.aggregate_arg is not None else None
        )
        alias = item.alias or (
            f"{item.aggregate}({item.aggregate_arg or '*'})"
        )
        aggregates.append(Aggregate(item.aggregate, argument, alias=alias))
        output_columns.append(alias)
    if not saw_vid:
        output_columns.insert(0, "vid")

    rows = aggregate_by_version(cvd, aggregates, where=where, vids=vids)
    if query.order_by:
        positions = {name: i for i, name in enumerate(output_columns)}
        for name, descending in reversed(query.order_by):
            if name not in positions:
                raise SQLParseError(
                    f"ORDER BY column {name!r} not in select list"
                )
            rows = sorted(
                rows,
                key=lambda row: (
                    row[positions[name]] is not None,
                    row[positions[name]],
                ),
                reverse=descending,
            )
    if query.limit is not None:
        rows = rows[: query.limit]
    return SQLResult(columns=output_columns, rows=rows)
