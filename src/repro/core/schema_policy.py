"""Single-pool vs multi-pool schema versioning (Section 4.3).

OrpheusDB adopts the *single pool* method of De Castro et al.: one record
pool whose schema is the union of all versions' attributes, NULL-padding
records that predate an attribute. The alternative *multi pool* method
stores records separately per schema version, duplicating any record
that survives a schema change. The paper asserts single pool "has fewer
records with duplicated attributes and therefore has less storage
consumption overall"; this module quantifies both policies for a given
history so the claim can be checked per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class SchemaPolicyCosts:
    """Cell-count storage under both schema-versioning policies.

    Attributes:
        single_pool_cells: |R| x |A_union| — every distinct record stored
            once, padded to the union schema.
        single_pool_null_cells: How many of those cells are NULL padding.
        multi_pool_cells: Σ over schema pools of (records in pool x pool
            arity) — records are duplicated into every pool whose
            versions contain them.
        duplicated_records: Extra record copies the multi-pool method
            stores.
    """

    single_pool_cells: int
    single_pool_null_cells: int
    multi_pool_cells: int
    duplicated_records: int

    @property
    def single_pool_wins(self) -> bool:
        return self.single_pool_cells <= self.multi_pool_cells


def compare_schema_policies(
    membership: Mapping[int, frozenset[int]],
    version_attributes: Mapping[int, frozenset[int]],
    record_attributes: Mapping[int, frozenset[int]] | None = None,
) -> SchemaPolicyCosts:
    """Compute both policies' storage for one history.

    Args:
        membership: vid -> rids of that version.
        version_attributes: vid -> attribute ids present in that version.
        record_attributes: rid -> attributes the record actually has
            values for; defaults to the attributes of the first version
            containing it.
    """
    union_attributes: set[int] = set()
    for attributes in version_attributes.values():
        union_attributes |= attributes

    all_records: set[int] = set()
    for rids in membership.values():
        all_records |= rids

    if record_attributes is None:
        record_attributes = {}
        for vid, rids in membership.items():
            for rid in rids:
                record_attributes.setdefault(
                    rid, version_attributes[vid]
                )

    # Single pool: one copy per record, padded to the union schema.
    single_cells = len(all_records) * len(union_attributes)
    null_cells = sum(
        len(union_attributes - record_attributes[rid])
        for rid in all_records
    )

    # Multi pool: group versions by schema; each pool stores the union of
    # its versions' records at the pool's arity.
    pools: dict[frozenset[int], set[int]] = {}
    for vid, rids in membership.items():
        pools.setdefault(version_attributes[vid], set()).update(rids)
    multi_cells = sum(
        len(rids) * len(attributes) for attributes, rids in pools.items()
    )
    stored_copies = sum(len(rids) for rids in pools.values())
    duplicated = stored_copies - len(all_records)

    return SchemaPolicyCosts(
        single_pool_cells=single_cells,
        single_pool_null_cells=null_cells,
        multi_pool_cells=multi_cells,
        duplicated_records=duplicated,
    )


def costs_from_cvd(cvd) -> SchemaPolicyCosts:
    """Policy comparison for a live CVD (uses its metadata table)."""
    membership = {vid: cvd.membership(vid) for vid in cvd.versions.vids()}
    version_attributes = {
        vid: frozenset(cvd.versions.get(vid).attribute_ids)
        for vid in cvd.versions.vids()
    }
    return compare_schema_policies(membership, version_attributes)


def simulate_evolving_history(
    num_versions: int,
    records_per_version: int,
    new_records_per_version: int,
    schema_change_every: int,
    base_attributes: int = 6,
) -> tuple[dict[int, frozenset[int]], dict[int, frozenset[int]]]:
    """A deterministic evolving-schema history for analysis and tests.

    Every ``schema_change_every`` versions one attribute is added; each
    version carries over its parent's records minus churn plus
    ``new_records_per_version`` fresh ones.
    """
    membership: dict[int, frozenset[int]] = {}
    version_attributes: dict[int, frozenset[int]] = {}
    attributes = set(range(base_attributes))
    next_rid = 0
    current: set[int] = set()
    next_attribute = base_attributes
    for vid in range(1, num_versions + 1):
        if vid > 1 and schema_change_every and (vid - 1) % schema_change_every == 0:
            attributes = set(attributes)
            attributes.add(next_attribute)
            next_attribute += 1
        fresh = set(range(next_rid, next_rid + new_records_per_version))
        next_rid += new_records_per_version
        current = set(list(current)[: records_per_version - len(fresh)]) | fresh
        membership[vid] = frozenset(current)
        version_attributes[vid] = frozenset(attributes)
    return membership, version_attributes
