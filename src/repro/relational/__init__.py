"""An embedded, pure-Python relational engine.

This package is the substrate that plays the role PostgreSQL plays for the
original OrpheusDB: it provides typed tables with primary keys, secondary
indexes, array-valued columns with containment and unnest operators, three
join algorithms (hash, merge, index-nested-loop), and an explicit I/O cost
accountant so experiments can report both wall-clock time and a
device-independent cost in rows/pages touched.

The engine is deliberately small but real: every operator actually executes
against stored rows, so the relative performance of the physical designs in
Chapter 4 (combined-table vs. split-by-vlist vs. split-by-rlist ...) emerges
from genuine work, not from a lookup table of constants.
"""

from repro.relational.costs import CostAccountant, CostSnapshot
from repro.relational.database import Database
from repro.relational.errors import (
    DuplicateKeyError,
    RelationalError,
    SchemaError,
    TableExistsError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.relational.expressions import (
    ArrayAppend,
    ArrayContainedBy,
    ArrayContains,
    BinaryOp,
    Column,
    Expression,
    FunctionCall,
    InSet,
    Literal,
    col,
    lit,
)
from repro.relational.joins import hash_join, index_nested_loop_join, merge_join
from repro.relational.query import Aggregate, Query
from repro.relational.schema import ColumnDef, Schema
from repro.relational.table import ClusterOrder, Table
from repro.relational.types import (
    BOOL,
    FLOAT,
    INT,
    INT_ARRAY,
    TEXT,
    DataType,
    generalize_types,
)

__all__ = [
    "BOOL",
    "FLOAT",
    "INT",
    "INT_ARRAY",
    "TEXT",
    "Aggregate",
    "ArrayAppend",
    "ArrayContainedBy",
    "ArrayContains",
    "BinaryOp",
    "ClusterOrder",
    "Column",
    "ColumnDef",
    "CostAccountant",
    "CostSnapshot",
    "DataType",
    "Database",
    "DuplicateKeyError",
    "Expression",
    "FunctionCall",
    "InSet",
    "Literal",
    "Query",
    "RelationalError",
    "Schema",
    "SchemaError",
    "Table",
    "TableExistsError",
    "UnknownColumnError",
    "UnknownTableError",
    "col",
    "generalize_types",
    "hash_join",
    "index_nested_loop_join",
    "lit",
    "merge_join",
]
