"""Join algorithms: hash, merge, and index-nested-loop.

These are the three physical joins compared in the checkout-cost-model
validation of Section 5.5.5 (Figure 5.7). Each takes a *build* side given
as plain keyed values (the ``rlist`` contents pulled from the versioning
table) and a *probe* side that is a :class:`~repro.relational.table.Table`,
mirroring how OrpheusDB joins a version's rid list against the data table.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro import telemetry
from repro.relational.table import Row, Table


def hash_join(
    keys: Iterable[Hashable],
    table: Table,
    column: str,
) -> list[Row]:
    """Build a hash table on ``keys``; probe with a sequential table scan.

    This is PostgreSQL's plan for checkout: the cost is one full scan of
    the data-table partition regardless of ``len(keys)``, which is why the
    checkout cost model is linear in the partition size |R_k|.
    """
    key_set = set(keys)
    position = table.schema.position(column)
    matched: list[Row] = []
    for row in table.scan():
        if row[position] in key_set:
            matched.append(row)
    telemetry.count("join.hash.rows_scanned", table.row_count)
    telemetry.count("join.hash.rows_matched", len(matched))
    return matched


def merge_join(
    sorted_keys: Sequence[Hashable],
    table: Table,
    column: str,
) -> list[Row]:
    """Merge a sorted key list against the table sorted on ``column``.

    If the table is physically clustered on ``column`` the table side is
    already ordered and the merge touches rows sequentially. Otherwise the
    engine must sort the scanned rows first (charged as a full scan plus
    CPU), matching the plans PostgreSQL produced in Section 5.5.5.
    """
    position = table.schema.position(column)
    if table._is_clustered_on(column):
        table_rows = list(table.scan())
    else:
        table_rows = sorted(table.scan(), key=lambda row: row[position])  # type: ignore[arg-type]

    matched: list[Row] = []
    i = 0
    j = 0
    keys = list(sorted_keys)
    while i < len(keys) and j < len(table_rows):
        key = keys[i]
        row_key = table_rows[j][position]
        if row_key < key:  # type: ignore[operator]
            j += 1
        elif row_key > key:  # type: ignore[operator]
            i += 1
        else:
            matched.append(table_rows[j])
            j += 1
    telemetry.count("join.merge.rows_scanned", len(table_rows))
    telemetry.count("join.merge.rows_matched", len(matched))
    return matched


def index_nested_loop_join(
    keys: Iterable[Hashable],
    table: Table,
    column: str,
) -> list[Row]:
    """Probe the table's index on ``column`` once per key.

    Each probe is charged as random I/O unless the table is clustered on
    the probe column; with |rlist| comparable to |R_k| the random reads
    approach a full scan, which is the observation that lets the paper
    model checkout cost as linear in |R_k| (Section 5.5.5).
    """
    matched: list[Row] = []
    probes = 0
    for key in keys:
        probes += 1
        matched.extend(table.lookup(column, key))
    telemetry.count("join.index_nested_loop.probes", probes)
    telemetry.count("join.index_nested_loop.rows_matched", len(matched))
    return matched


JOIN_ALGORITHMS = {
    "hash": hash_join,
    "merge": merge_join,
    "index_nested_loop": index_nested_loop_join,
}
