"""A compact logical query layer: select / where / group by / order by.

This is the target the OrpheusDB query translator compiles into — the
equivalent of the SQL strings in Table 4.1 — expressed as composable
Python objects rather than a string dialect, which keeps the engine honest
(everything must execute) without dragging in a SQL parser for a system
whose contribution is not parsing.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import telemetry
from repro.relational.errors import RelationalError
from repro.relational.expressions import Expression
from repro.relational.schema import ColumnDef, Schema
from repro.relational.table import Row, Table


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over an expression: count/sum/avg/min/max.

    ``expr`` of None means ``count(*)``.
    """

    func: str
    expr: Expression | None = None
    alias: str | None = None

    _SUPPORTED = ("count", "sum", "avg", "min", "max", "any")

    def __post_init__(self) -> None:
        if self.func not in self._SUPPORTED:
            raise RelationalError(f"unknown aggregate {self.func!r}")

    def output_name(self) -> str:
        return self.alias or self.func

    def compute(self, values: list[object]) -> object:
        if self.func == "count":
            return len(values)
        present = [v for v in values if v is not None]
        if not present:
            return None
        if self.func == "sum":
            return sum(present)  # type: ignore[arg-type]
        if self.func == "avg":
            return statistics.fmean(present)  # type: ignore[arg-type]
        if self.func == "min":
            return min(present)  # type: ignore[type-var]
        if self.func == "max":
            return max(present)  # type: ignore[type-var]
        if self.func == "any":
            return any(present)
        raise AssertionError(self.func)


@dataclass
class Query:
    """A single-table query with optional grouping.

    Attributes:
        table: The table to read.
        columns: Output column names (projection). Empty = all columns.
        where: Optional filter expression.
        group_by: Column names to group on; aggregates then apply per group.
        aggregates: Aggregate specs (require group_by or produce one row).
        order_by: List of (column-name, descending) pairs applied last.
        limit: Optional row cap.
    """

    table: Table
    columns: Sequence[str] = field(default_factory=tuple)
    where: Expression | None = None
    group_by: Sequence[str] = field(default_factory=tuple)
    aggregates: Sequence[Aggregate] = field(default_factory=tuple)
    order_by: Sequence[tuple[str, bool]] = field(default_factory=tuple)
    limit: int | None = None

    def output_schema(self) -> Schema:
        """Schema of the result rows."""
        source = self.table.schema
        columns: list[ColumnDef] = []
        if self.group_by or self.aggregates:
            for name in self.group_by:
                columns.append(ColumnDef(name, source.dtype_of(name)))
            for aggregate in self.aggregates:
                from repro.relational.types import FLOAT

                columns.append(ColumnDef(aggregate.output_name(), FLOAT))
        else:
            names = self.columns or source.column_names
            for name in names:
                columns.append(ColumnDef(name, source.dtype_of(name)))
        return Schema(columns)

    def execute(self) -> list[Row]:
        rows = list(self._filtered_rows())
        telemetry.count("query.rows_scanned", self.table.row_count)
        if self.where is not None:
            telemetry.count(
                "query.rows_filtered", self.table.row_count - len(rows)
            )
        if self.group_by or self.aggregates:
            result = self._grouped(rows)
            telemetry.count("query.groups_produced", len(result))
        else:
            result = self._projected(rows)
        result = self._ordered(result)
        if self.limit is not None:
            result = result[: self.limit]
        telemetry.count("query.rows_returned", len(result))
        return result

    # ------------------------------------------------------------------
    def _filtered_rows(self) -> Iterable[Row]:
        if self.where is None:
            return self.table.scan()
        return self.table.scan_where(self.where)

    def _projected(self, rows: Iterable[Row]) -> list[Row]:
        if not self.columns:
            return list(rows)
        project = self.table.apply_projection(self.columns)
        return [project(row) for row in rows]

    def _grouped(self, rows: Iterable[Row]) -> list[Row]:
        schema = self.table.schema
        group_positions = schema.project_positions(self.group_by)
        bound: list[Callable[[Row], object] | None] = []
        for aggregate in self.aggregates:
            bound.append(
                aggregate.expr.bind(schema) if aggregate.expr is not None else None
            )
        groups: dict[tuple[object, ...], list[list[object]]] = {}
        for row in rows:
            key = tuple(row[i] for i in group_positions)
            values = groups.setdefault(key, [[] for _ in self.aggregates])
            for slot, evaluate in enumerate(bound):
                values[slot].append(evaluate(row) if evaluate is not None else 1)
        result: list[Row] = []
        for key, value_lists in groups.items():
            out = list(key)
            for aggregate, values in zip(self.aggregates, value_lists):
                out.append(aggregate.compute(values))
            result.append(tuple(out))
        return result

    def _ordered(self, rows: list[Row]) -> list[Row]:
        if not self.order_by:
            return rows
        schema = self.output_schema()
        ordered = rows
        # Stable multi-key sort: apply keys right-to-left.
        for name, descending in reversed(list(self.order_by)):
            position = schema.position(name)
            ordered = sorted(
                ordered,
                # NULLs sort first ascending / last descending.
                key=lambda row: (row[position] is not None, row[position]),
                reverse=descending,
            )
        return ordered
