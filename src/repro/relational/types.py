"""Column data types and type coercion.

The engine supports the small set of types the dissertation's experiments
need: integers, floats, text, booleans, and integer arrays (the versioning
attribute ``vlist``/``rlist`` columns of Chapter 4 are ``INT_ARRAY``).

Schema evolution (Section 4.3) generalizes conflicting attribute types to a
more general type — integer widens to decimal, anything widens to string —
which :func:`generalize_types` implements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataType:
    """A column data type.

    Attributes:
        name: Canonical type name (``integer``, ``decimal``, ``text``,
            ``boolean``, ``integer[]``).
        python_type: The Python class values of this type must be an
            instance of (arrays are validated element-wise).
        byte_size: Approximate on-disk width of one value, used by the
            cost accountant. Arrays and text report a base width; the
            table adds per-value overhead for variable-size data.
    """

    name: str
    python_type: type
    byte_size: int

    def validate(self, value: object) -> bool:
        """Return True if ``value`` is storable in a column of this type."""
        if value is None:
            return True
        if self is INT_ARRAY:
            from repro.relational.arrays import RangeEncodedArray

            if isinstance(value, RangeEncodedArray):
                return True
            return isinstance(value, (list, tuple)) and all(
                isinstance(v, int) for v in value
            )
        if self is FLOAT:
            # Integers are acceptable in decimal columns.
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.python_type)

    def coerce(self, value: object) -> object:
        """Coerce ``value`` into this type, e.g. when a column widens."""
        if value is None:
            return None
        if self is INT_ARRAY:
            return list(value)  # type: ignore[arg-type]
        if self is TEXT:
            return str(value)
        if self is FLOAT:
            return float(value)  # type: ignore[arg-type]
        if self is INT:
            return int(value)  # type: ignore[arg-type]
        if self is BOOL:
            return bool(value)
        raise TypeError(f"cannot coerce into {self.name}")

    def sizeof(self, value: object) -> int:
        """Approximate storage bytes for one value of this type."""
        if value is None:
            return 1
        if self is INT_ARRAY:
            from repro.relational.arrays import RangeEncodedArray

            if isinstance(value, RangeEncodedArray):
                return value.encoded_bytes()
            return 4 * len(value) + 4  # type: ignore[arg-type]
        if self is TEXT:
            return len(str(value)) + 1
        return self.byte_size


INT = DataType("integer", int, 4)
FLOAT = DataType("decimal", float, 8)
TEXT = DataType("text", str, 8)
BOOL = DataType("boolean", bool, 1)
INT_ARRAY = DataType("integer[]", list, 4)

_BY_NAME = {t.name: t for t in (INT, FLOAT, TEXT, BOOL, INT_ARRAY)}

#: Widening order used by schema evolution: integer -> decimal -> text.
_GENERALITY = {BOOL.name: 0, INT.name: 1, FLOAT.name: 2, TEXT.name: 3}


def type_by_name(name: str) -> DataType:
    """Look up a :class:`DataType` by its canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown data type {name!r}") from None


def generalize_types(a: DataType, b: DataType) -> DataType:
    """Return the more general of two types (Section 4.3 widening rule).

    ``integer`` widens to ``decimal``; any scalar widens to ``text``.
    Arrays do not participate in widening and must match exactly.
    """
    if a is b:
        return a
    if INT_ARRAY in (a, b):
        raise ValueError("array types cannot be generalized with scalars")
    order_a = _GENERALITY[a.name]
    order_b = _GENERALITY[b.name]
    wider = a if order_a >= order_b else b
    # Booleans only widen through text: there is no numeric reading of a
    # boolean column in the paper's single-pool scheme.
    if BOOL in (a, b) and wider is not TEXT:
        return TEXT
    return wider
