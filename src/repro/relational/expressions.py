"""A small expression AST evaluated against rows.

Supports everything the translated OrpheusDB SQL of Table 4.1 needs:
column references, literals, comparisons, boolean connectives, arithmetic,
and the PostgreSQL array operators the data models rely on —
``ARRAY[v] <@ vlist`` (containment), ``vlist + v`` (append), and
``unnest`` (handled at the query layer since it changes cardinality).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.relational.errors import RelationalError
from repro.relational.schema import Schema


class Expression:
    """Base class. Subclasses implement :meth:`bind` returning a fast
    evaluator closure of type ``row -> value``."""

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        raise NotImplementedError

    # Operator sugar so callers can write col("a") > lit(3).
    def __eq__(self, other: object) -> "BinaryOp":  # type: ignore[override]
        return BinaryOp("=", self, _wrap(other))

    def __ne__(self, other: object) -> "BinaryOp":  # type: ignore[override]
        return BinaryOp("!=", self, _wrap(other))

    def __lt__(self, other: object) -> "BinaryOp":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: object) -> "BinaryOp":
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other: object) -> "BinaryOp":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: object) -> "BinaryOp":
        return BinaryOp(">=", self, _wrap(other))

    def __and__(self, other: object) -> "BinaryOp":
        return BinaryOp("and", self, _wrap(other))

    def __or__(self, other: object) -> "BinaryOp":
        return BinaryOp("or", self, _wrap(other))

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("not", self)

    def __add__(self, other: object) -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: object) -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: object) -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    def __hash__(self) -> int:  # Expressions are identity-hashed.
        return id(self)


def _wrap(value: object) -> "Expression":
    return value if isinstance(value, Expression) else Literal(value)


@dataclass(eq=False)
class Column(Expression):
    """A reference to a named column."""

    name: str

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        position = schema.position(self.name)
        return lambda row: row[position]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: object

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


def _null_safe(func: Callable[[object, object], bool]):
    """SQL-style ordering comparison: NULL on either side is never true."""

    def compare(left: object, right: object) -> bool:
        if left is None or right is None:
            return False
        return func(left, right)

    return compare


_BINARY_OPS: dict[str, Callable[[object, object], object]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": _null_safe(operator.lt),
    "<=": _null_safe(operator.le),
    ">": _null_safe(operator.gt),
    ">=": _null_safe(operator.ge),
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(eq=False)
class BinaryOp(Expression):
    """A binary operator over two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        try:
            func = _BINARY_OPS[self.op]
        except KeyError:
            raise RelationalError(f"unknown binary operator {self.op!r}") from None
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        return lambda row: func(left(row), right(row))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class UnaryOp(Expression):
    """A unary operator (currently only ``not``)."""

    op: str
    operand: Expression

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        if self.op != "not":
            raise RelationalError(f"unknown unary operator {self.op!r}")
        operand = self.operand.bind(schema)
        return lambda row: not operand(row)


@dataclass(eq=False)
class ArrayContains(Expression):
    """PostgreSQL ``array @> element-array``: left contains all of right.

    ``right`` usually evaluates to a short literal array, so membership is
    checked against a set built from the (per-row) left side.
    """

    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: Sequence[object]) -> bool:
            haystack = left(row)
            needles = right(row)
            if haystack is None or needles is None:
                return False
            haystack_set = set(haystack)  # type: ignore[arg-type]
            return all(n in haystack_set for n in needles)  # type: ignore[union-attr]

        return evaluate


@dataclass(eq=False)
class ArrayContainedBy(Expression):
    """PostgreSQL ``ARRAY[v] <@ vlist``: left's elements all appear in right."""

    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        return ArrayContains(self.right, self.left).bind(schema)


@dataclass(eq=False)
class ArrayAppend(Expression):
    """``vlist + v``: a new array with ``element`` appended.

    Deliberately copies the array — this copy is exactly the expensive
    per-record append that makes combined-table/split-by-vlist commits slow
    in Figure 4.1(b), so it must not be optimized into an in-place mutation.
    """

    array: Expression
    element: Expression

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        array = self.array.bind(schema)
        element = self.element.bind(schema)

        def evaluate(row: Sequence[object]) -> list[object]:
            current = array(row)
            appended = list(current) if current is not None else []
            appended.append(element(row))
            return appended

        return evaluate


@dataclass(eq=False)
class InSet(Expression):
    """``expr IN (v1, v2, ...)`` against a precomputed value set.

    The set plays the role of the uncorrelated subquery results in the
    Table 4.1 translations (``rid IN (SELECT rid FROM T')``).
    """

    expr: Expression
    values: frozenset

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        evaluate = self.expr.bind(schema)
        values = self.values
        return lambda row: evaluate(row) in values


@dataclass(eq=False)
class FunctionCall(Expression):
    """A scalar function call, e.g. ``abs`` or ``array_length``."""

    name: str
    args: tuple[Expression, ...]

    _FUNCTIONS: dict[str, Callable[..., object]] = None  # type: ignore[assignment]

    def bind(self, schema: Schema) -> Callable[[Sequence[object]], object]:
        functions: dict[str, Callable[..., object]] = {
            "abs": abs,
            "array_length": lambda a: len(a) if a is not None else 0,
            "lower": lambda s: s.lower() if s is not None else None,
            "upper": lambda s: s.upper() if s is not None else None,
        }
        try:
            func = functions[self.name]
        except KeyError:
            raise RelationalError(f"unknown function {self.name!r}") from None
        bound_args = [a.bind(schema) for a in self.args]
        return lambda row: func(*(arg(row) for arg in bound_args))


def col(name: str) -> Column:
    """Shorthand constructor for a column reference."""
    return Column(name)


def lit(value: object) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)
