"""Secondary index structures: hash and ordered (B-tree stand-in)."""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Iterator


class HashIndex:
    """A hash index from a key to the set of row positions holding it.

    This is the physical structure behind primary-key lookups (``rid`` in
    the data table, ``vid`` in the versioning table of split-by-rlist).
    """

    def __init__(self) -> None:
        self._buckets: dict[Hashable, list[int]] = {}

    def add(self, key: Hashable, position: int) -> None:
        self._buckets.setdefault(key, []).append(position)

    def remove(self, key: Hashable, position: int) -> None:
        positions = self._buckets.get(key)
        if positions is None:
            return
        try:
            positions.remove(position)
        except ValueError:
            return
        if not positions:
            del self._buckets[key]

    def lookup(self, key: Hashable) -> list[int]:
        """Row positions with this key (empty list if absent)."""
        return list(self._buckets.get(key, ()))

    def contains(self, key: Hashable) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    def keys(self) -> Iterable[Hashable]:
        return self._buckets.keys()

    def approximate_bytes(self) -> int:
        """Rough index size: key + pointer per entry plus bucket overhead."""
        entries = len(self)
        return 16 * entries + 8 * len(self._buckets)


class OrderedIndex:
    """A sorted index supporting range scans, emulating a B-tree.

    Keys must be mutually comparable. Internally a sorted list of
    ``(key, position)`` pairs maintained with :mod:`bisect`; adequate for
    the scan patterns in the experiments (bulk build, point and range
    lookups, few deletes).
    """

    def __init__(self) -> None:
        self._entries: list[tuple[Hashable, int]] = []

    def add(self, key: Hashable, position: int) -> None:
        bisect.insort(self._entries, (key, position))

    def remove(self, key: Hashable, position: int) -> None:
        i = bisect.bisect_left(self._entries, (key, position))
        if i < len(self._entries) and self._entries[i] == (key, position):
            del self._entries[i]

    def lookup(self, key: Hashable) -> list[int]:
        lo = bisect.bisect_left(self._entries, (key,))
        positions = []
        for stored_key, position in self._entries[lo:]:
            if stored_key != key:
                break
            positions.append(position)
        return positions

    def range(self, low: Hashable, high: Hashable) -> Iterator[tuple[Hashable, int]]:
        """Yield (key, position) pairs with low <= key <= high."""
        lo = bisect.bisect_left(self._entries, (low,))
        for stored_key, position in self._entries[lo:]:
            if stored_key > high:  # type: ignore[operator]
                break
            yield stored_key, position

    def __len__(self) -> int:
        return len(self._entries)

    def approximate_bytes(self) -> int:
        return 16 * len(self._entries)
