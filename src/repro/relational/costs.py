"""Device-independent cost accounting.

Wall-clock time on a laptop is noisy and incomparable with the paper's
workstation numbers, so every physical operator in the engine also reports
its work to a :class:`CostAccountant`: rows scanned sequentially, rows
fetched by random access, rows written, index probes, and bytes touched.
Benchmarks report both wall-clock and these counters; the counters are what
make the Figure 5.7 cost-model validation deterministic.

Every charge is mirrored into the process telemetry registry under the
``storage.io.*`` counter family, so the accumulated
``.orpheus/telemetry.json`` (and therefore ``orpheus stats``) carries
*lifetime* I/O totals across invocations — not just the per-EXPLAIN
snapshots a single command sees. While telemetry is disabled (the
default for embedding programs) the mirror costs one branch per charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry


@dataclass(frozen=True)
class CostSnapshot:
    """An immutable point-in-time copy of the accountant's counters."""

    seq_rows: int
    random_rows: int
    rows_written: int
    index_probes: int
    bytes_read: int
    bytes_written: int
    page_reads: int = 0
    page_writes: int = 0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            self.seq_rows - other.seq_rows,
            self.random_rows - other.random_rows,
            self.rows_written - other.rows_written,
            self.index_probes - other.index_probes,
            self.bytes_read - other.bytes_read,
            self.bytes_written - other.bytes_written,
            self.page_reads - other.page_reads,
            self.page_writes - other.page_writes,
        )

    def total_rows_read(self) -> int:
        return self.seq_rows + self.random_rows

    def weighted_io(self, random_penalty: float = 10.0) -> float:
        """A single scalar cost: random accesses cost ``random_penalty``
        times a sequential row touch, mirroring rotating-disk economics
        that drive the paper's checkout-cost analysis (Section 5.5.5)."""
        return self.seq_rows + random_penalty * self.random_rows


class CostAccountant:
    """Mutable counters that physical operators charge work against."""

    def __init__(self) -> None:
        self.seq_rows = 0
        self.random_rows = 0
        self.rows_written = 0
        self.index_probes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.page_reads = 0
        self.page_writes = 0

    def charge_seq_scan(self, rows: int, row_bytes: int = 0) -> None:
        self.seq_rows += rows
        self.bytes_read += row_bytes
        telemetry.count("storage.io.seq_rows", rows)
        if row_bytes:
            telemetry.count("storage.io.bytes_read", row_bytes)

    def charge_random_read(self, rows: int = 1, row_bytes: int = 0) -> None:
        self.random_rows += rows
        self.bytes_read += row_bytes
        telemetry.count("storage.io.random_rows", rows)
        if row_bytes:
            telemetry.count("storage.io.bytes_read", row_bytes)

    def charge_write(self, rows: int, row_bytes: int = 0) -> None:
        self.rows_written += rows
        self.bytes_written += row_bytes
        telemetry.count("storage.io.rows_written", rows)
        if row_bytes:
            telemetry.count("storage.io.bytes_written", row_bytes)

    def charge_index_probe(self, probes: int = 1) -> None:
        self.index_probes += probes
        telemetry.count("storage.io.index_probes", probes)

    def charge_page_read(self, pages: int, page_bytes: int = 0) -> None:
        """A buffer-pool fault: whole pages read from disk. Folds into
        ``bytes_read`` so the amplification report sees real page I/O."""
        self.page_reads += pages
        self.bytes_read += page_bytes
        telemetry.count("storage.io.page_reads", pages)
        if page_bytes:
            telemetry.count("storage.io.page_bytes_read", page_bytes)
            telemetry.count("storage.io.bytes_read", page_bytes)

    def charge_page_write(self, pages: int, page_bytes: int = 0) -> None:
        """Dirty-page write-back during a paged save."""
        self.page_writes += pages
        self.bytes_written += page_bytes
        telemetry.count("storage.io.page_writes", pages)
        if page_bytes:
            telemetry.count("storage.io.page_bytes_written", page_bytes)
            telemetry.count("storage.io.bytes_written", page_bytes)

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            self.seq_rows,
            self.random_rows,
            self.rows_written,
            self.index_probes,
            self.bytes_read,
            self.bytes_written,
            self.page_reads,
            self.page_writes,
        )

    def reset(self) -> None:
        self.seq_rows = 0
        self.random_rows = 0
        self.rows_written = 0
        self.index_probes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.page_reads = 0
        self.page_writes = 0
