"""Range encoding for integer arrays (the Section 4.2 remark).

The versioning table's ``rlist`` arrays are long, sorted, and dense —
rids are allocated sequentially and versions inherit contiguous runs
from their parents — so run-length (range) encoding compresses them
well. The paper notes array-based storage "can be further reduced by
applying compression techniques like range-encoding [41]"; this module
provides that codec and a transparent storage estimate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


def encode_ranges(values: Sequence[int]) -> list[tuple[int, int]]:
    """Encode a sorted, duplicate-free integer sequence as closed ranges.

    ``[1, 2, 3, 7, 9, 10]`` becomes ``[(1, 3), (7, 7), (9, 10)]``.
    Raises ValueError on unsorted or duplicated input — rlists are
    maintained sorted by construction and silent misuse would corrupt
    version membership.
    """
    ranges: list[tuple[int, int]] = []
    start: int | None = None
    previous: int | None = None
    for value in values:
        if previous is not None and value <= previous:
            raise ValueError("input must be strictly increasing")
        if start is None:
            start = previous = value
            continue
        if value == previous + 1:
            previous = value
            continue
        ranges.append((start, previous))
        start = previous = value
    if start is not None:
        ranges.append((start, previous))  # type: ignore[arg-type]
    return ranges


def decode_ranges(ranges: Iterable[tuple[int, int]]) -> list[int]:
    """Inverse of :func:`encode_ranges`."""
    values: list[int] = []
    for start, end in ranges:
        if end < start:
            raise ValueError(f"invalid range ({start}, {end})")
        values.extend(range(start, end + 1))
    return values


class RangeEncodedArray:
    """A sorted integer set stored as ranges, with list-like reads.

    Supports the operations the versioning table needs: membership,
    iteration (unnest), length, and byte-size accounting. Immutable —
    rlists are written once per version.
    """

    __slots__ = ("_ranges", "_length")

    def __init__(self, values: Sequence[int]) -> None:
        self._ranges = encode_ranges(values)
        self._length = sum(end - start + 1 for start, end in self._ranges)

    @classmethod
    def from_ranges(cls, ranges: list[tuple[int, int]]) -> "RangeEncodedArray":
        instance = cls([])
        instance._ranges = list(ranges)
        instance._length = sum(end - start + 1 for start, end in ranges)
        return instance

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for start, end in self._ranges:
            yield from range(start, end + 1)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int):
            return False
        import bisect

        position = bisect.bisect_right(self._ranges, (value, float("inf")))
        if position == 0:
            return False
        start, end = self._ranges[position - 1]
        return start <= value <= end

    def to_list(self) -> list[int]:
        return list(self)

    @property
    def num_ranges(self) -> int:
        return len(self._ranges)

    def encoded_bytes(self) -> int:
        """8 bytes per range (two 4-byte ints)."""
        return 8 * len(self._ranges) + 4

    def plain_bytes(self) -> int:
        """What the uncompressed array would cost."""
        return 4 * self._length + 4

    def compression_ratio(self) -> float:
        return self.plain_bytes() / max(self.encoded_bytes(), 1)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RangeEncodedArray):
            return self._ranges == other._ranges
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"RangeEncodedArray({self._ranges!r})"
