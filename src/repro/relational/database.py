"""The database: a namespace of tables sharing one cost accountant."""

from __future__ import annotations

from typing import Iterator

from repro.relational.costs import CostAccountant
from repro.relational.errors import TableExistsError, UnknownTableError
from repro.relational.schema import Schema
from repro.relational.table import ClusterOrder, Table


class Database:
    """A named collection of tables, the backend OrpheusDB wraps.

    The database is deliberately unaware of versioning — just like the
    PostgreSQL instance under the original system — so every versioning
    behaviour must be expressed through ordinary tables and queries.
    """

    def __init__(self, name: str = "orpheus") -> None:
        self.name = name
        self.accountant = CostAccountant()
        self._tables: dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        schema: Schema,
        enforce_primary_key: bool = True,
        cluster_order: ClusterOrder = ClusterOrder.INSERTION,
    ) -> Table:
        if name in self._tables:
            raise TableExistsError(f"table {name!r} already exists")
        table = Table(
            name,
            schema,
            accountant=self.accountant,
            enforce_primary_key=enforce_primary_key,
            cluster_order=cluster_order,
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str, missing_ok: bool = False) -> None:
        if name not in self._tables:
            if missing_ok:
                return
            raise UnknownTableError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def total_storage_bytes(self, include_indexes: bool = True) -> int:
        return sum(
            t.storage_bytes(include_indexes=include_indexes)
            for t in self._tables.values()
        )

    def reset_costs(self) -> None:
        self.accountant.reset()
