"""The heap table: rows, constraints, indexes, and cost-charged access."""

from __future__ import annotations

import enum
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro.relational.costs import CostAccountant
from repro.relational.errors import DuplicateKeyError
from repro.relational.expressions import Expression
from repro.relational.index import HashIndex, OrderedIndex
from repro.relational.schema import Schema

Row = tuple[object, ...]


class ClusterOrder(enum.Enum):
    """Physical ordering of the heap.

    Section 5.5.5 distinguishes a data table *clustered on rid* from one
    clustered on the relation primary key; the clustering determines
    whether an index scan on ``rid`` degrades into random I/O.
    """

    INSERTION = "insertion"
    RID = "rid"
    PRIMARY_KEY = "primary_key"


class Table:
    """An append-mostly heap of tuples with optional indexes.

    Deleted rows leave tombstoned slots (``None``) so that index entries
    stay position-stable; :meth:`vacuum` compacts when needed.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        accountant: CostAccountant | None = None,
        enforce_primary_key: bool = True,
        cluster_order: ClusterOrder = ClusterOrder.INSERTION,
    ) -> None:
        self.name = name
        self.schema = schema
        self.accountant = accountant or CostAccountant()
        self.enforce_primary_key = enforce_primary_key and bool(schema.primary_key)
        self.cluster_order = cluster_order
        self._rows: list[Row | None] = []
        self._live_count = 0
        self._bytes = 0
        self._pk_index: HashIndex | None = (
            HashIndex() if self.enforce_primary_key else None
        )
        self._secondary: dict[str, HashIndex] = {}
        self._ordered: dict[str, OrderedIndex] = {}
        # Paged-layout plumbing: a write-version stamp (bumped by every
        # mutator; lets a save skip re-encoding untouched tables), and a
        # pager set by the paged loader in place of _rows/_indexes.
        self._stamp = 0
        self._pager = None
        self._saved_ref = None
        self._saved_stamp = -1

    # ------------------------------------------------------------------
    # Paged loading
    # ------------------------------------------------------------------
    def _ensure_page_load(self) -> None:
        """Fault in this table's row segment if it is still paged out.

        Every row-touching entry point gates through here; metadata
        reads (``len``, ``row_count``, ``has_index``, ``schema``) answer
        from the skeleton without any I/O.
        """
        pager = self._pager
        if pager is None:
            return
        self._pager = None  # block re-entry from index rebuild below
        try:
            rows = pager.load(self.accountant)
            self._rows = rows
            if pager.index_spec.get("pk") and self.enforce_primary_key:
                pk_index = HashIndex()
                for slot, row in enumerate(rows):
                    if row is not None:
                        pk_index.add(self.schema.key_of(row), slot)
                self._pk_index = pk_index
            else:
                self._pk_index = None
            self._secondary = {}
            self._ordered = {}
            for column in pager.index_spec.get("secondary", ()):
                self.create_index(column, ordered=False)
            for column in pager.index_spec.get("ordered", ()):
                self.create_index(column, ordered=True)
        except BaseException:
            self._pager = pager  # stay paged-out; retry can succeed
            raise

    @property
    def paged_out(self) -> bool:
        """True while the row segment has not been faulted in."""
        return self._pager is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    @property
    def row_count(self) -> int:
        return self._live_count

    def storage_bytes(self, include_indexes: bool = True) -> int:
        """Approximate total storage including index structures."""
        total = self._bytes
        if self._pager is not None:
            # Paged out: answer from the skeleton's byte counter alone
            # rather than faulting in rows just to size their indexes.
            return total
        if include_indexes:
            if self._pk_index is not None:
                total += self._pk_index.approximate_bytes()
            for index in self._secondary.values():
                total += index.approximate_bytes()
            for index in self._ordered.values():
                total += index.approximate_bytes()
        return total

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column: str, ordered: bool = False) -> None:
        """Create a secondary index on ``column`` over existing rows."""
        self._ensure_page_load()
        position = self.schema.position(column)
        if ordered:
            index = OrderedIndex()
            for slot, row in enumerate(self._rows):
                if row is not None:
                    index.add(row[position], slot)  # type: ignore[arg-type]
            self._ordered[column] = index
        else:
            hash_index = HashIndex()
            for slot, row in enumerate(self._rows):
                if row is not None:
                    hash_index.add(row[position], slot)
            self._secondary[column] = hash_index

    def has_index(self, column: str) -> bool:
        if self._pager is not None:
            spec = self._pager.index_spec
            return column in spec.get("secondary", ()) or column in spec.get(
                "ordered", ()
            )
        return column in self._secondary or column in self._ordered

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[object]) -> int:
        """Insert one row; returns its slot position."""
        self._ensure_page_load()
        self._stamp += 1
        self.schema.validate_row(row)
        stored: Row = tuple(row)
        if self._pk_index is not None:
            key = self.schema.key_of(stored)
            if self._pk_index.contains(key):
                raise DuplicateKeyError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
        slot = len(self._rows)
        self._rows.append(stored)
        self._live_count += 1
        row_bytes = self.schema.row_bytes(stored)
        self._bytes += row_bytes
        self.accountant.charge_write(1, row_bytes)
        if self._pk_index is not None:
            self._pk_index.add(self.schema.key_of(stored), slot)
        for column, index in self._secondary.items():
            index.add(stored[self.schema.position(column)], slot)
        for column, ordered_index in self._ordered.items():
            ordered_index.add(
                stored[self.schema.position(column)],  # type: ignore[arg-type]
                slot,
            )
        return slot

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_at(self, slot: int) -> None:
        """Tombstone the row in ``slot``."""
        self._ensure_page_load()
        row = self._rows[slot]
        if row is not None:
            self._stamp += 1
        if row is None:
            return
        self._rows[slot] = None
        self._live_count -= 1
        row_bytes = self.schema.row_bytes(row)
        self._bytes -= row_bytes
        self.accountant.charge_write(1, row_bytes)
        if self._pk_index is not None:
            self._pk_index.remove(self.schema.key_of(row), slot)
        for column, index in self._secondary.items():
            index.remove(row[self.schema.position(column)], slot)
        for column, ordered_index in self._ordered.items():
            ordered_index.remove(
                row[self.schema.position(column)],  # type: ignore[arg-type]
                slot,
            )

    def delete_where(self, predicate: Expression) -> int:
        """Delete all rows matching ``predicate``; returns count deleted."""
        test = predicate.bind(self.schema)
        doomed = []
        for slot, row in self._iter_slots():
            if test(row):
                doomed.append(slot)
        for slot in doomed:
            self.delete_at(slot)
        return len(doomed)

    def update_where(
        self,
        predicate: Expression | None,
        assignments: dict[str, Expression],
    ) -> int:
        """UPDATE ... SET col = expr [WHERE pred]; returns rows updated.

        Each update rewrites the full row (delete + insert in place), which
        is what makes array-append commits expensive for combined-table.
        """
        test = predicate.bind(self.schema) if predicate is not None else None
        bound = {
            self.schema.position(column): expr.bind(self.schema)
            for column, expr in assignments.items()
        }
        updated = 0
        for slot, row in self._iter_slots():
            self.accountant.charge_seq_scan(1, self.schema.row_bytes(row))
            if test is not None and not test(row):
                continue
            new_row = list(row)
            for position, evaluate in bound.items():
                new_row[position] = evaluate(row)
            self._replace_at(slot, tuple(new_row))
            updated += 1
        return updated

    def _replace_at(self, slot: int, new_row: Row) -> None:
        self._stamp += 1
        old_row = self._rows[slot]
        assert old_row is not None
        self.schema.validate_row(new_row)
        old_bytes = self.schema.row_bytes(old_row)
        new_bytes = self.schema.row_bytes(new_row)
        if self._pk_index is not None:
            old_key = self.schema.key_of(old_row)
            new_key = self.schema.key_of(new_row)
            if old_key != new_key:
                if self._pk_index.contains(new_key):
                    raise DuplicateKeyError(
                        f"duplicate primary key {new_key!r} in {self.name!r}"
                    )
                self._pk_index.remove(old_key, slot)
                self._pk_index.add(new_key, slot)
        for column, index in self._secondary.items():
            position = self.schema.position(column)
            if old_row[position] != new_row[position]:
                index.remove(old_row[position], slot)
                index.add(new_row[position], slot)
        for column, ordered_index in self._ordered.items():
            position = self.schema.position(column)
            if old_row[position] != new_row[position]:
                ordered_index.remove(old_row[position], slot)  # type: ignore[arg-type]
                ordered_index.add(new_row[position], slot)  # type: ignore[arg-type]
        self._rows[slot] = new_row
        self._bytes += new_bytes - old_bytes
        self.accountant.charge_write(1, new_bytes)

    # ------------------------------------------------------------------
    # ALTER TABLE (Section 4.3: schema evolution over physical tables)
    # ------------------------------------------------------------------
    def add_column(self, column) -> None:
        """ALTER TABLE ADD COLUMN: existing rows read NULL for it."""
        self._ensure_page_load()
        self._stamp += 1
        from repro.relational.schema import Schema

        self.schema = Schema(
            self.schema.columns + [column], self.schema.primary_key
        )
        for slot, row in enumerate(self._rows):
            if row is not None:
                self._rows[slot] = row + (None,)
                self._bytes += column.dtype.sizeof(None)
        self.accountant.charge_write(self._live_count)

    def widen_column(self, name: str, dtype) -> None:
        """ALTER TABLE ALTER COLUMN TYPE to a more general type; existing
        values are coerced in place."""
        self._ensure_page_load()
        self._stamp += 1
        from repro.relational.schema import ColumnDef, Schema
        from repro.relational.types import generalize_types

        position = self.schema.position(name)
        widened = generalize_types(self.schema.columns[position].dtype, dtype)
        columns = list(self.schema.columns)
        columns[position] = ColumnDef(name, widened)
        self.schema = Schema(columns, self.schema.primary_key)
        for slot, row in enumerate(self._rows):
            if row is None or row[position] is None:
                continue
            coerced = widened.coerce(row[position])
            if coerced != row[position] or type(coerced) is not type(
                row[position]
            ):
                mutable = list(row)
                mutable[position] = coerced
                self._rows[slot] = tuple(mutable)
        self.accountant.charge_write(self._live_count)

    def vacuum(self) -> None:
        """Compact tombstones and rebuild indexes."""
        self._ensure_page_load()
        self._stamp += 1
        live = [row for row in self._rows if row is not None]
        self._rows = list(live)
        if self._pk_index is not None:
            self._pk_index = HashIndex()
            for slot, row in enumerate(self._rows):
                self._pk_index.add(self.schema.key_of(row), slot)  # type: ignore[arg-type]
        for column in list(self._secondary):
            self._secondary.pop(column)
            self.create_index(column, ordered=False)
        for column in list(self._ordered):
            self._ordered.pop(column)
            self.create_index(column, ordered=True)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def _iter_slots(self) -> Iterator[tuple[int, Row]]:
        self._ensure_page_load()
        for slot, row in enumerate(self._rows):
            if row is not None:
                yield slot, row

    def scan(self) -> Iterator[Row]:
        """Full sequential scan; charges one sequential row per live row."""
        for _slot, row in self._iter_slots():
            self.accountant.charge_seq_scan(1, self.schema.row_bytes(row))
            yield row

    def scan_where(self, predicate: Expression) -> Iterator[Row]:
        """Sequential scan with a pushed-down filter."""
        test = predicate.bind(self.schema)
        for row in self.scan():
            if test(row):
                yield row

    def fetch_slot(self, slot: int) -> Row | None:
        """Random access by heap position (charged as random I/O)."""
        self._ensure_page_load()
        row = self._rows[slot]
        if row is not None:
            self.accountant.charge_random_read(1, self.schema.row_bytes(row))
        return row

    def lookup(self, column: str, key: Hashable) -> list[Row]:
        """Index lookup; falls back to a sequential scan without an index.

        Whether the fetches after the probe are charged as random or
        sequential depends on the clustering: probing ``rid`` on a table
        clustered by ``rid`` touches adjacent pages.
        """
        self._ensure_page_load()
        index = self._index_for(column)
        if index is None:
            position = self.schema.position(column)
            return [row for row in self.scan() if row[position] == key]
        self.accountant.charge_index_probe(1)
        rows: list[Row] = []
        clustered = self._is_clustered_on(column)
        for slot in index.lookup(key):
            row = self._rows[slot]
            if row is None:
                continue
            row_bytes = self.schema.row_bytes(row)
            if clustered:
                self.accountant.charge_seq_scan(1, row_bytes)
            else:
                self.accountant.charge_random_read(1, row_bytes)
            rows.append(row)
        return rows

    def lookup_many(self, column: str, keys: Iterable[Hashable]) -> list[Row]:
        """Batched index lookups, preserving key order."""
        rows: list[Row] = []
        for key in keys:
            rows.extend(self.lookup(column, key))
        return rows

    def _index_for(self, column: str) -> HashIndex | OrderedIndex | None:
        if (
            self._pk_index is not None
            and self.schema.primary_key == (column,)
        ):
            return _PkAdapter(self._pk_index)
        if column in self._secondary:
            return self._secondary[column]
        if column in self._ordered:
            return self._ordered[column]
        return None

    def _is_clustered_on(self, column: str) -> bool:
        if self.cluster_order is ClusterOrder.RID:
            return column == "rid"
        if self.cluster_order is ClusterOrder.PRIMARY_KEY:
            return self.schema.primary_key == (column,)
        return False

    def rows_snapshot(self) -> list[Row]:
        """All live rows without charging I/O (for assertions in tests)."""
        return [row for _slot, row in self._iter_slots()]

    def first_where(self, predicate: Expression) -> Row | None:
        for row in self.scan_where(predicate):
            return row
        return None

    def apply_projection(
        self, names: Sequence[str]
    ) -> Callable[[Row], Row]:
        positions = self.schema.project_positions(names)
        return lambda row: tuple(row[i] for i in positions)

    # ------------------------------------------------------------------
    # Pickling (legacy/plain layout; the paged layout bypasses these
    # via its reducer_override)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        self._ensure_page_load()  # a plain pickle must carry the rows
        state = dict(self.__dict__)
        for transient in ("_pager", "_saved_ref", "_saved_stamp"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Pickles from before the paged layout lack these attributes.
        self.__dict__.setdefault("_stamp", 0)
        self.__dict__.setdefault("_pager", None)
        self.__dict__.setdefault("_saved_ref", None)
        self.__dict__.setdefault("_saved_stamp", -1)


class _PkAdapter:
    """Adapts the primary-key hash index to the single-key lookup shape."""

    def __init__(self, pk_index: HashIndex) -> None:
        self._pk_index = pk_index

    def lookup(self, key: Hashable) -> list[int]:
        return self._pk_index.lookup((key,))
