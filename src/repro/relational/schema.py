"""Relation schemas: ordered, named, typed columns with optional keys."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.relational.errors import SchemaError, UnknownColumnError
from repro.relational.types import DataType, generalize_types


@dataclass(frozen=True)
class ColumnDef:
    """A single column: a name plus a :class:`DataType`."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass
class Schema:
    """An ordered list of columns with an optional (composite) primary key.

    The primary key in OrpheusDB is the *relation* primary key: it is
    enforced per materialized version, not across the whole CVD (records
    with equal keys may coexist in different versions).
    """

    columns: list[ColumnDef]
    primary_key: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._positions = {name: i for i, name in enumerate(names)}
        for key_col in self.primary_key:
            if key_col not in self._positions:
                raise SchemaError(f"primary key column {key_col!r} not in schema")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def position(self, name: str) -> int:
        """Return the ordinal position of a column, raising if unknown."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownColumnError(
                f"unknown column {name!r}; have {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._positions

    def dtype_of(self, name: str) -> DataType:
        return self.columns[self.position(name)].dtype

    def key_positions(self) -> tuple[int, ...]:
        """Ordinal positions of the primary-key columns."""
        return tuple(self.position(c) for c in self.primary_key)

    def key_of(self, row: Sequence[object]) -> tuple[object, ...]:
        """Extract the primary-key tuple from a row."""
        return tuple(row[i] for i in self.key_positions())

    def validate_row(self, row: Sequence[object]) -> None:
        """Raise :class:`SchemaError` unless the row matches this schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if not column.dtype.validate(value):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{column.name!r} of type {column.dtype.name}"
                )

    def project_positions(self, names: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def with_column(self, column: ColumnDef) -> "Schema":
        """Return a new schema with ``column`` appended."""
        return Schema(self.columns + [column], self.primary_key)

    def with_widened_column(self, name: str, dtype: DataType) -> "Schema":
        """Return a new schema with ``name``'s type widened to ``dtype``."""
        position = self.position(name)
        current = self.columns[position].dtype
        widened = generalize_types(current, dtype)
        columns = list(self.columns)
        columns[position] = ColumnDef(name, widened)
        return Schema(columns, self.primary_key)

    def row_bytes(self, row: Sequence[object]) -> int:
        """Approximate on-disk byte size of one row under this schema."""
        return sum(c.dtype.sizeof(v) for v, c in zip(row, self.columns))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.columns == other.columns and self.primary_key == other.primary_key
        )
