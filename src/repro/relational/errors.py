"""Exception hierarchy for the embedded relational engine."""


class RelationalError(Exception):
    """Base class for all errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A schema is malformed or a value does not fit its column type."""


class UnknownTableError(RelationalError):
    """A statement referenced a table that does not exist."""


class TableExistsError(RelationalError):
    """A CREATE TABLE named a table that already exists."""


class UnknownColumnError(RelationalError):
    """An expression referenced a column not present in the schema."""


class DuplicateKeyError(RelationalError):
    """An insert violated a primary-key constraint."""
