"""Deterministic fault injection for crash-consistency testing.

A *failpoint* is a named site in a durability-critical code path (state
store, journal, intent log, CSV writer, telemetry save) where a test can
inject a fault. Sites call :func:`fire`, which is a dict lookup + branch
when nothing is armed, so the hooks stay in production code permanently.

Three actions::

    crash        os._exit(CRASH_EXIT_CODE) — simulates SIGKILL/power loss
                 (no finally blocks, no atexit, buffers dropped)
    error        raise FailpointError — exercises the exception paths
    delay:SECS   sleep, then continue — widens race windows for
                 concurrency tests

Activation:

* ``ORPHEUS_FAILPOINTS="statestore.after_temp_write=crash"`` in the
  environment, parsed at import — the subprocess mode crash tests use
  this (a real process dies at the injection point, then the next
  invocation must auto-recover).
* :func:`activate` / :func:`clear` for in-process tests.

Multiple points separate with ``,`` or ``;``::

    ORPHEUS_FAILPOINTS="journal.before_append=delay:0.2,intent.before_done=error"

Every fireable site must be listed in :data:`REGISTERED`; firing or
arming an unknown name raises, so the crash-matrix test can enumerate
``REGISTERED`` and know it covers every injection point that exists.
"""

from __future__ import annotations

import os
import sys
import time

ENV_VAR = "ORPHEUS_FAILPOINTS"

#: Exit code used by the ``crash`` action, distinctive so tests can tell
#: "died at the failpoint" from ordinary failure (1) or success (0).
CRASH_EXIT_CODE = 86

#: Every injection point threaded through the codebase. The crash-matrix
#: test iterates this set; adding a site without registering it here is
#: an error at fire time.
REGISTERED = frozenset(
    {
        # intent log (repro.resilience.intents)
        "intent.after_begin",
        "intent.before_done",
        # transactional state store (repro.resilience.statestore)
        "statestore.after_temp_write",
        "statestore.before_replace",
        "statestore.after_replace",
        # operation journal (repro.observe.journal)
        "journal.before_append",
        "journal.after_append",
        # CSV writer (repro.core.csvio) — torn checkout files
        "csv.mid_write",
        # telemetry accumulator save (repro.cli)
        "telemetry.before_save",
        # paged state layout (repro.pagestore.store) — dirty-page
        # write-back and the page-directory swap
        "pagestore.before_page_write",
        "pagestore.after_page_write",
        "pagestore.before_directory_swap",
        "pagestore.after_directory_swap",
    }
)


class FailpointError(RuntimeError):
    """Raised by the ``error`` action at an armed failpoint."""


#: name -> ("crash", exit_code) | ("error", None) | ("delay", seconds)
_active: dict[str, tuple[str, float | int | None]] = {}


def parse_spec(spec: str) -> dict[str, tuple[str, float | int | None]]:
    """Parse an ``ORPHEUS_FAILPOINTS`` value into an activation map."""
    parsed: dict[str, tuple[str, float | int | None]] = {}
    for item in spec.replace(";", ",").split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"malformed failpoint spec {item!r}: expected name=action"
            )
        name, action = item.split("=", 1)
        name = name.strip()
        if name not in REGISTERED:
            raise ValueError(
                f"unknown failpoint {name!r}; registered: "
                f"{', '.join(sorted(REGISTERED))}"
            )
        kind, _, arg = action.strip().partition(":")
        if kind == "crash":
            parsed[name] = ("crash", int(arg) if arg else CRASH_EXIT_CODE)
        elif kind == "error":
            parsed[name] = ("error", None)
        elif kind == "delay":
            parsed[name] = ("delay", float(arg) if arg else 0.05)
        else:
            raise ValueError(
                f"unknown failpoint action {action!r} for {name!r}; "
                f"have crash[:code], error, delay[:seconds]"
            )
    return parsed


def configure(spec: str) -> None:
    """Replace the active set from an env-style spec string."""
    parsed = parse_spec(spec)
    _active.clear()
    _active.update(parsed)


def activate(name: str, action: str = "error", arg: float | None = None) -> None:
    """Arm one failpoint programmatically (in-process tests)."""
    if name not in REGISTERED:
        raise ValueError(f"unknown failpoint {name!r}")
    if action == "crash":
        _active[name] = ("crash", int(arg) if arg is not None else CRASH_EXIT_CODE)
    elif action == "error":
        _active[name] = ("error", None)
    elif action == "delay":
        _active[name] = ("delay", float(arg) if arg is not None else 0.05)
    else:
        raise ValueError(f"unknown failpoint action {action!r}")


def deactivate(name: str) -> None:
    _active.pop(name, None)


def clear() -> None:
    """Disarm everything."""
    _active.clear()


def active() -> dict[str, tuple[str, float | int | None]]:
    return dict(_active)


def fire(name: str) -> None:
    """Trigger the failpoint ``name`` if armed; no-op otherwise."""
    armed = _active.get(name)
    if armed is None:
        if name not in REGISTERED:
            raise ValueError(f"fired unregistered failpoint {name!r}")
        return
    kind, arg = armed
    if kind == "delay":
        time.sleep(float(arg))
        return
    if kind == "error":
        raise FailpointError(f"failpoint {name} triggered")
    # crash: die the way SIGKILL would — no unwinding, no cleanup.
    sys.stderr.write(f"failpoint {name}: crashing (exit {arg})\n")
    sys.stderr.flush()
    os._exit(int(arg))


# Arm from the environment at import so a subprocess under test needs no
# cooperation beyond inheriting ORPHEUS_FAILPOINTS.
_env_spec = os.environ.get(ENV_VAR, "")
if _env_spec:
    configure(_env_spec)
