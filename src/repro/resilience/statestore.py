"""The transactional state store: checksummed, crash-safe ``state.pkl``.

The repository's whole in-memory engine persists as one pickle. The bare
``pickle.load(open(...))`` the CLI started with turns a truncated or
bit-flipped file into an unhandled traceback and leaves no second copy
to fall back to. This store replaces it with:

* **Checksummed container format** — an 8-byte magic, the payload
  length, and a SHA-256 digest precede the pickle payload, so
  truncation and corruption are *detected* rather than exploding inside
  the unpickler. Legacy bare-pickle files (pre-upgrade repositories)
  still load; the next save rewrites them in container format.
* **write-temp / fsync / rename / fsync-dir** — the live file is only
  ever replaced atomically by a fully-written, fully-synced temp file.
* **Rotating backup generations** — before each replace, the current
  file is hard-linked to ``state.pkl.bak`` (the previous ``.bak``
  rotating to ``.bak.1``), so the last two known-good states survive.
* **Fallback load path** — a corrupt live file falls back through the
  backup generations with a clear warning; only when *every* candidate
  is corrupt does loading raise :class:`StateCorruptionError` with an
  actionable message.

Failpoints (``statestore.after_temp_write`` / ``before_replace`` /
``after_replace``) bracket the commit sequence for crash testing.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.resilience import failpoints

MAGIC = b"ORPHSTA1"
#: Paged-layout container: same header, but the payload is a pagestore
#: outer document (skeleton + segment refs) instead of the full pickle.
MAGIC2 = b"ORPHSTA2"
_LEN_STRUCT = struct.Struct(">Q")
HEADER_SIZE = len(MAGIC) + _LEN_STRUCT.size + hashlib.sha256().digest_size

#: Force the layout ``save`` writes: ``paged`` or ``pickle``. Unset =
#: keep whatever layout the repository already uses.
LAYOUT_ENV = "ORPHEUS_STATE_LAYOUT"

STATE_DIR = ".orpheus"
STATE_FILE = "state.pkl"
#: Backup generations, newest first.
BACKUP_SUFFIXES = (".bak", ".bak.1")


class StateCorruptionError(RuntimeError):
    """The state file (and every backup generation) failed verification."""


@dataclass
class LoadInfo:
    """How a load resolved: which file served it, what was skipped."""

    source: str | None = None  # filename that served the load, None = fresh
    legacy: bool = False  # loaded from a pre-container bare pickle
    fallback: bool = False  # a backup served instead of the live file
    paged: bool = False  # loaded from the ORPHSTA2 paged layout
    warnings: list[str] = field(default_factory=list)


def _default_warn(message: str) -> None:
    sys.stderr.write(f"warning: {message}\n")


class StateStore:
    """Crash-safe persistence for one repository's pickled state."""

    def __init__(self, root: str | None = None, filename: str = STATE_FILE):
        self.dir = Path(root or ".") / STATE_DIR
        self.path = self.dir / filename

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def backup_paths(self) -> list[Path]:
        return [
            self.path.with_name(self.path.name + suffix)
            for suffix in BACKUP_SUFFIXES
        ]

    def stray_temps(self) -> list[Path]:
        """Leftover ``state.pkl.*.tmp`` files from interrupted writes."""
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob(self.path.name + ".*.tmp"))

    def clean_stray_temps(self) -> list[Path]:
        removed = []
        for temp in self.stray_temps():
            try:
                temp.unlink()
                removed.append(temp)
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save_layout(self) -> str:
        """Layout the next ``save`` writes: the ``ORPHEUS_STATE_LAYOUT``
        override if set, else whatever the live file already uses
        (fresh repositories default to pickle)."""
        env = os.environ.get(LAYOUT_ENV, "").strip().lower()
        if env in ("paged", "pickle"):
            return env
        try:
            with open(self.path, "rb") as handle:
                if handle.read(len(MAGIC2)) == MAGIC2:
                    return "paged"
        except OSError:
            pass
        return "pickle"

    def save(self, obj: object) -> None:
        if self.save_layout() == "paged":
            from repro.pagestore.store import paged_save

            paged_save(self, obj)
        else:
            self.save_bytes(pickle.dumps(obj))

    def save_bytes(self, payload: bytes, magic: bytes = MAGIC) -> None:
        """Durably replace the state file with ``payload``.

        Sequence: temp write + fsync → backup rotation (hard links, so
        the live name never vanishes) → atomic rename → directory fsync.
        A crash at any point leaves either the old state or the new
        state fully intact, never a torn file.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        blob = (
            magic
            + _LEN_STRUCT.pack(len(payload))
            + hashlib.sha256(payload).digest()
            + payload
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.dir, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            failpoints.fire("statestore.after_temp_write")
            self._rotate_backups()
            failpoints.fire("statestore.before_replace")
            os.replace(tmp_name, self.path)
            failpoints.fire("statestore.after_replace")
            self._fsync_dir()
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        telemetry.count("resilience.state.saves")

    def _rotate_backups(self) -> None:
        """Shift ``state.pkl`` → ``.bak`` → ``.bak.1`` without ever
        removing the live name (hard link, then rename over the old
        backup)."""
        if not self.path.exists():
            return
        bak, bak1 = self.backup_paths
        if bak.exists():
            os.replace(bak, bak1)
        link_tmp = self.path.with_name(self.path.name + ".bak.tmp")
        try:
            link_tmp.unlink(missing_ok=True)
            os.link(self.path, link_tmp)
        except OSError:
            # Filesystem without hard links: fall back to a copy.
            link_tmp.write_bytes(self.path.read_bytes())
        os.replace(link_tmp, bak)

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.dir, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, warn=_default_warn) -> tuple[object | None, LoadInfo]:
        """Load the newest verifiable state.

        Returns ``(obj, info)``; ``obj`` is ``None`` when no state file
        exists at all (a fresh repository). Falls back through the
        backup generations on corruption, calling ``warn`` for each
        skipped candidate. Raises :class:`StateCorruptionError` only
        when files exist but none verifies.
        """
        info = LoadInfo()
        candidates = [self.path, *self.backup_paths]
        existed = False
        for candidate in candidates:
            if not candidate.exists():
                continue
            existed = True
            paged = False
            try:
                blob = candidate.read_bytes()
                payload, legacy = self.verify_blob(blob)
                paged = blob.startswith(MAGIC2)
                if paged:
                    from repro.pagestore.store import paged_load

                    obj = paged_load(self, payload)
                else:
                    obj = pickle.loads(payload)
            except StateCorruptionError as error:
                telemetry.count("resilience.state.corruption_detected")
                info.warnings.append(f"{candidate.name}: {error}")
                if warn is not None:
                    warn(f"state file {candidate.name} is corrupt: {error}")
                continue
            except Exception as error:  # unpicklable payload
                telemetry.count("resilience.state.corruption_detected")
                info.warnings.append(
                    f"{candidate.name}: unpicklable ({type(error).__name__}: "
                    f"{error})"
                )
                if warn is not None:
                    warn(
                        f"state file {candidate.name} failed to unpickle: "
                        f"{error}"
                    )
                continue
            info.source = candidate.name
            info.legacy = legacy
            info.fallback = candidate is not self.path
            info.paged = paged
            # Physical read footprint of serving this load: the whole
            # container for the pickle layout, just the skeleton for
            # the paged one (segments charge storage.io.page_* as they
            # fault). The gap is the layouts' read amplification.
            telemetry.count("storage.io.state_bytes_read", len(blob))
            if paged:
                telemetry.count("resilience.state.paged_loads")
            if legacy:
                telemetry.count("resilience.state.legacy_loads")
            if info.fallback:
                telemetry.count("resilience.state.backup_restores")
                if warn is not None:
                    warn(
                        f"restored repository state from backup "
                        f"{candidate.name}; the most recent operation(s) "
                        f"may be lost — check `orpheus log --ops`"
                    )
            return obj, info
        if existed:
            raise StateCorruptionError(
                f"{self.path} and all backup generations are corrupt "
                f"({'; '.join(info.warnings)}). Restore {self.path.name} "
                f"from an external copy, or run `orpheus recover` for a "
                f"report and re-init from the operation journal."
            )
        return None, info

    @staticmethod
    def verify_blob(blob: bytes) -> tuple[bytes, bool]:
        """Return ``(payload, legacy)`` or raise :class:`StateCorruptionError`.

        ``legacy`` is True for pre-container bare-pickle files, which
        carry no checksum (their integrity is only proven by a
        successful unpickle in the caller).
        """
        if not blob:
            raise StateCorruptionError("empty file")
        if not (blob.startswith(MAGIC) or blob.startswith(MAGIC2)):
            if len(blob) < len(MAGIC) and (
                MAGIC.startswith(blob) or MAGIC2.startswith(blob)
            ):
                # Shorter than the magic and a strict prefix of it: a
                # truncated container, not a legacy pickle.
                raise StateCorruptionError("truncated header")
            return blob, True  # legacy bare pickle
        if len(blob) < HEADER_SIZE:
            raise StateCorruptionError(
                f"truncated header ({len(blob)} of {HEADER_SIZE} bytes)"
            )
        offset = len(MAGIC)
        (length,) = _LEN_STRUCT.unpack_from(blob, offset)
        offset += _LEN_STRUCT.size
        digest = blob[offset : offset + hashlib.sha256().digest_size]
        payload = blob[HEADER_SIZE:]
        if len(payload) != length:
            raise StateCorruptionError(
                f"truncated payload ({len(payload)} of {length} bytes)"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise StateCorruptionError("checksum mismatch (corrupted bytes)")
        return payload, False

    # ------------------------------------------------------------------
    # Integrity report (for `orpheus doctor` / `orpheus recover`)
    # ------------------------------------------------------------------
    def integrity(self) -> dict:
        """Verify every on-disk generation without unpickling anything."""
        report: dict = {
            "path": str(self.path),
            "status": "missing",
            "detail": "",
            "bytes": 0,
            "layout": None,
            "backups": [],
            "stray_temps": [str(p.name) for p in self.stray_temps()],
        }
        if self.path.exists():
            blob = self.path.read_bytes()
            report["bytes"] = len(blob)
            try:
                _payload, legacy = self.verify_blob(blob)
                report["status"] = "legacy" if legacy else "ok"
                report["layout"] = (
                    "legacy"
                    if legacy
                    else "paged" if blob.startswith(MAGIC2) else "pickle"
                )
                if legacy:
                    report["detail"] = (
                        "pre-checksum format; next save upgrades it"
                    )
            except StateCorruptionError as error:
                report["status"] = "corrupt"
                report["detail"] = str(error)
        for backup in self.backup_paths:
            if not backup.exists():
                continue
            blob = backup.read_bytes()
            entry = {"name": backup.name, "bytes": len(blob), "ok": True}
            try:
                self.verify_blob(blob)
            except StateCorruptionError as error:
                entry["ok"] = False
                entry["detail"] = str(error)
            report["backups"].append(entry)
        return report
