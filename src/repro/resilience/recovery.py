"""Torn-operation recovery: make the next invocation after a crash safe.

A mutating command's durable effects land in this order (each step
atomic on its own):

1. intent ``begin``                      (intent log)
2. CSV artifact, for checkout           (user-named file)
3. state save                           (transactional state store)
4. operation-journal append             (``ops.jsonl``)
5. intent ``done``                      (intent log)

A crash between any two steps leaves a *torn* operation: a pending
intent whose side effects are some prefix of that list.
:func:`run_recovery` classifies each pending intent by inspecting which
effects actually landed and repairs the repository:

* effects stopped before the state save → **roll back**: delete the
  torn checkout artifact (if provably ours: named in the intent, newer
  than the intent timestamp, untracked by staging) and stray state
  temp files; the operation simply never happened.
* state saved but never journaled → **reconcile forward**: synthesize
  the missing operation-journal record from the version graph (marked
  ``"recovered": true``) so ``orpheus log --verify`` and the doctor
  journal probe agree with reality again.
* journaled but the intent was never closed → just resolve the intent.

Recovery runs automatically before any command when pending intents
exist (under the exclusive repository lock), and explicitly via
``orpheus recover [--dry-run]``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.observe.journal import Journal, journal_expected_state, verify_journal
from repro.resilience.intents import IntentLog
from repro.resilience.statestore import StateCorruptionError, StateStore

#: Grace window when comparing a file's mtime against the intent
#: timestamp (coarse filesystem timestamps, small clock skew).
_MTIME_SLACK = 1.0


@dataclass
class RecoveryAction:
    """One repair (taken, or planned under ``--dry-run``)."""

    kind: str  # clean-temp | rollback-artifact | synthesize-journal | resolve-intent
    detail: str


@dataclass
class RecoveryReport:
    """Everything a recovery pass did or would do."""

    dry_run: bool = False
    actions: list[RecoveryAction] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    state_source: str | None = None

    @property
    def clean(self) -> bool:
        return not self.problems

    def render_text(self) -> str:
        prefix = "would " if self.dry_run else ""
        lines = []
        if not self.actions and not self.problems:
            lines.append("nothing to recover: no torn operations found")
        for action in self.actions:
            lines.append(f"{prefix}{action.kind}: {action.detail}")
        for problem in self.problems:
            lines.append(f"UNRESOLVED: {problem}")
        if self.state_source and self.state_source != "state.pkl":
            lines.append(f"state loaded from fallback: {self.state_source}")
        lines.append(
            f"recovery {'plan' if self.dry_run else 'complete'}: "
            f"{len(self.actions)} action(s), {len(self.problems)} problem(s)"
        )
        return "\n".join(lines) + "\n"


def run_recovery(
    root: str | None = None, dry_run: bool = False
) -> RecoveryReport:
    """One recovery pass. Caller must hold the exclusive repository lock
    (or be single-process, e.g. tests)."""
    with telemetry.span("resilience.recover"):
        report = _run_recovery(root, dry_run)
    telemetry.count("resilience.recover.runs")
    if not report.dry_run:
        telemetry.count(
            "resilience.recover.actions", len(report.actions)
        )
    return report


def _run_recovery(root: str | None, dry_run: bool) -> RecoveryReport:
    report = RecoveryReport(dry_run=dry_run)
    store = StateStore(root)
    intents = IntentLog(root)
    journal = Journal(root)

    for temp in store.stray_temps():
        report.actions.append(
            RecoveryAction(
                "clean-temp", f"remove interrupted state write {temp.name}"
            )
        )
        if not dry_run:
            try:
                temp.unlink()
            except OSError:
                pass

    # Paged layout: a save that died between page write-back and the
    # state swap leaves orphaned page files (and possibly a torn page
    # directory). Clean them with the same dry-run discipline.
    try:
        from repro.pagestore.store import clean_pagestore

        for kind, detail in clean_pagestore(root, dry_run=dry_run):
            report.actions.append(RecoveryAction(kind, detail))
    except Exception as error:
        report.problems.append(f"page store cleanup failed: {error}")

    orpheus = None
    corrupt = False
    try:
        orpheus, info = store.load(warn=None)
        report.state_source = info.source
        for warning in info.warnings:
            report.actions.append(
                RecoveryAction("note", f"skipped corrupt generation: {warning}")
            )
    except StateCorruptionError as error:
        corrupt = True
        report.problems.append(str(error))

    pending = intents.pending()
    if not pending:
        return report

    records = journal.read()
    journaled_traces = {r.get("trace_id") for r in records}
    if orpheus is not None:
        expected, alive = journal_expected_state(records)
        live = set(orpheus.ls())
    else:
        expected, alive, live = {}, set(), set()

    telemetry.count("resilience.recover.torn_ops", len(pending))
    for intent in pending:
        trace_id = intent.get("trace_id", "")
        command = intent.get("command", "?")
        label = f"{command} (trace {trace_id or '-'})"
        if trace_id in journaled_traces:
            report.actions.append(
                RecoveryAction(
                    "resolve-intent",
                    f"{label} already journaled; closing intent",
                )
            )
        elif corrupt:
            report.problems.append(
                f"cannot reconcile torn {label}: state is unreadable"
            )
            continue  # leave the intent pending for a later attempt
        else:
            synthesized = _reconcile_intent(
                intent, orpheus, expected, alive, live, report, dry_run, journal
            )
            if synthesized:
                telemetry.count(
                    "resilience.recover.journal_records_synthesized",
                    synthesized,
                )
        if not dry_run:
            intents.done(trace_id, status="recovered")

    if orpheus is not None and not dry_run:
        leftovers = verify_journal(orpheus, journal.read())
        for divergence in leftovers:
            report.problems.append(
                f"journal still diverges after recovery: {divergence}"
            )
    return report


def _reconcile_intent(
    intent: dict,
    orpheus,
    expected: dict,
    alive: set,
    live: set,
    report: RecoveryReport,
    dry_run: bool,
    journal: Journal,
) -> int:
    """Repair one torn, unjournaled intent. Returns the number of
    journal records synthesized."""
    command = intent.get("command", "?")
    trace_id = intent.get("trace_id", "")
    dataset = intent.get("dataset")
    label = f"{command} (trace {trace_id or '-'})"

    if command in ("init", "commit") and dataset:
        if dataset not in live:
            report.actions.append(
                RecoveryAction(
                    "resolve-intent", f"{label} died before saving state"
                )
            )
            return 0
        cvd = orpheus.cvd(dataset)
        known = expected.get(dataset, {})
        missing = [v for v in cvd.versions.vids() if v not in known]
        if not missing:
            report.actions.append(
                RecoveryAction(
                    "resolve-intent", f"{label} left no unjournaled versions"
                )
            )
            return 0
        for vid in missing:
            metadata = cvd.versions.get(vid)
            record = {
                "trace_id": trace_id,
                "command": "init" if not metadata.parents else "commit",
                "status": "ok",
                "ts": intent.get("ts", telemetry.now()),
                "user": intent.get("user", ""),
                "dataset": dataset,
                "output_version": vid,
                "rows": metadata.record_count,
                "recovered": True,
            }
            if metadata.parents:
                record["input_versions"] = list(metadata.parents)
            report.actions.append(
                RecoveryAction(
                    "synthesize-journal",
                    f"{label}: v{vid} of {dataset!r} exists in the graph "
                    f"but was never journaled",
                )
            )
            if not dry_run:
                journal.append(record)
            known = expected.setdefault(dataset, {})
            known[vid] = (tuple(metadata.parents), metadata.record_count)
            alive.add(dataset)
        return len(missing)

    if command == "checkout":
        target = intent.get("file")
        staged = getattr(orpheus.staging, "_staged", {})
        if target and target in staged:
            info = staged[target]
            record = {
                "trace_id": trace_id,
                "command": "checkout",
                "status": "ok",
                "ts": intent.get("ts", telemetry.now()),
                "user": intent.get("user", ""),
                "dataset": dataset,
                "input_versions": list(info.parents),
                "recovered": True,
            }
            report.actions.append(
                RecoveryAction(
                    "synthesize-journal",
                    f"{label}: {target} is staged in state but was never "
                    f"journaled",
                )
            )
            if not dry_run:
                journal.append(record)
            return 1
        if target and _is_torn_artifact(target, intent):
            report.actions.append(
                RecoveryAction(
                    "rollback-artifact",
                    f"{label}: remove torn checkout file {target}",
                )
            )
            if not dry_run:
                try:
                    os.unlink(target)
                    telemetry.count("resilience.recover.artifacts_removed")
                except OSError:
                    pass
        else:
            report.actions.append(
                RecoveryAction(
                    "resolve-intent", f"{label} died before saving state"
                )
            )
        return 0

    if command == "drop" and dataset:
        if dataset not in live and dataset in alive:
            record = {
                "trace_id": trace_id,
                "command": "drop",
                "status": "ok",
                "ts": intent.get("ts", telemetry.now()),
                "user": intent.get("user", ""),
                "dataset": dataset,
                "recovered": True,
            }
            report.actions.append(
                RecoveryAction(
                    "synthesize-journal",
                    f"{label}: {dataset!r} is gone from state but still "
                    f"journaled as live",
                )
            )
            if not dry_run:
                journal.append(record)
            alive.discard(dataset)
            expected.pop(dataset, None)
            return 1
        report.actions.append(
            RecoveryAction(
                "resolve-intent", f"{label} left journal and state agreeing"
            )
        )
        return 0

    # optimize (and anything future): repartitioning carries no
    # version-graph footprint the journal verifier checks, so the only
    # repair is closing the intent.
    report.actions.append(
        RecoveryAction(
            "resolve-intent", f"{label} has no journal-visible footprint"
        )
    )
    return 0


def _is_torn_artifact(target: str, intent: dict) -> bool:
    """Only remove a file we can prove the torn operation created:
    it exists, and its mtime is at or after the intent was logged (a
    pre-existing user file untouched by the crash stays put)."""
    try:
        mtime = Path(target).stat().st_mtime
    except OSError:
        return False
    ts = intent.get("ts")
    return ts is None or mtime >= float(ts) - _MTIME_SLACK
