"""Advisory repository locking with retry, backoff, and stale detection.

Two concurrent ``orpheus`` processes used to read the same ``state.pkl``,
mutate independently, and clobber each other on save — the classic lost
update. Every CLI invocation now brackets its work in a
:class:`RepositoryLock` on ``.orpheus/repo.lock``:

* **exclusive** for mutating commands (init/checkout/commit/drop/
  optimize/user management/recover/stats --reset),
* **shared** for readers (ls/log/diff/doctor/stats), so reads never
  queue behind each other.

The primary implementation is ``fcntl.flock`` — the kernel releases it
when the holder dies, so a crashed process can never wedge the
repository. On platforms without ``fcntl`` an ``O_EXCL`` lock-file
fallback takes over; there stale locks *are* possible, so the fallback
breaks locks whose recorded pid is dead or whose file has not been
touched within ``stale_after`` seconds.

Contention is surfaced in telemetry: ``resilience.lock.acquired`` /
``.contention`` / ``.stale_broken`` counters and the
``resilience.lock.wait_seconds`` histogram, all visible in
``orpheus stats``. Waiters retry with jittered exponential backoff and
give up after ``timeout`` seconds (``ORPHEUS_LOCK_TIMEOUT`` overrides)
with an error naming the holder.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

from repro import telemetry

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

LOCK_FILE = "repo.lock"
ENV_TIMEOUT = "ORPHEUS_LOCK_TIMEOUT"
DEFAULT_TIMEOUT = 10.0
#: Fallback mode only: a lock file older than this with a dead holder is
#: broken automatically.
DEFAULT_STALE_AFTER = 15 * 60.0
_BACKOFF_BASE = 0.005
_BACKOFF_CAP = 0.25


class LockTimeoutError(RuntimeError):
    """Could not acquire the repository lock within the timeout."""


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def holder_info(root: str | None = None) -> dict | None:
    """The metadata last written by an exclusive holder, or None."""
    path = Path(root or ".") / ".orpheus" / LOCK_FILE
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class RepositoryLock:
    """Advisory lock over one repository's ``.orpheus`` directory.

    Use as a context manager::

        with RepositoryLock(root, shared=False):
            ...mutate state...
    """

    def __init__(
        self,
        root: str | None = None,
        shared: bool = False,
        timeout: float | None = None,
        stale_after: float = DEFAULT_STALE_AFTER,
        use_fcntl: bool | None = None,
        command: str = "",
    ) -> None:
        self.dir = Path(root or ".") / ".orpheus"
        self.path = self.dir / LOCK_FILE
        self.shared = shared
        if timeout is None:
            env = os.environ.get(ENV_TIMEOUT)
            timeout = float(env) if env else DEFAULT_TIMEOUT
        self.timeout = timeout
        self.stale_after = stale_after
        self.use_fcntl = (fcntl is not None) if use_fcntl is None else use_fcntl
        self.command = command
        self._fd: int | None = None
        self._fallback_path = self.dir / (LOCK_FILE + ".excl")
        self._held_fallback = False

    # ------------------------------------------------------------------
    def acquire(self) -> "RepositoryLock":
        self.dir.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        started = time.monotonic()
        attempt = 0
        contended = False
        while True:
            if self._try_acquire():
                break
            if not contended:
                contended = True
                telemetry.count("resilience.lock.contention")
            if time.monotonic() >= deadline:
                raise LockTimeoutError(self._timeout_message())
            delay = min(_BACKOFF_CAP, _BACKOFF_BASE * (2**attempt))
            time.sleep(delay * random.uniform(0.5, 1.0))
            attempt += 1
        waited = time.monotonic() - started
        telemetry.count("resilience.lock.acquired")
        telemetry.observe("resilience.lock.wait_seconds", waited)
        if not self.shared:
            self._write_holder_metadata()
        return self

    def release(self) -> None:
        if self._fd is not None:
            if self.use_fcntl and fcntl is not None:
                try:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                except OSError:
                    pass
            os.close(self._fd)
            self._fd = None
        if self._held_fallback:
            try:
                self._fallback_path.unlink()
            except OSError:
                pass
            self._held_fallback = False

    def __enter__(self) -> "RepositoryLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if self.use_fcntl and fcntl is not None:
            return self._try_flock()
        return self._try_fallback()

    def _try_flock(self) -> bool:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        mode = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
        try:
            fcntl.flock(fd, mode | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def _try_fallback(self) -> bool:
        """``O_EXCL`` lock file (no shared mode: readers serialize too).

        Unlike ``flock``, a killed process leaves the file behind, so
        stale detection by pid liveness + mtime is load-bearing here.
        """
        try:
            fd = os.open(
                self._fallback_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            self._maybe_break_stale()
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump({"pid": os.getpid(), "ts": telemetry.now()}, handle)
        self._held_fallback = True
        return True

    def _maybe_break_stale(self) -> None:
        try:
            stat = self._fallback_path.stat()
            data = json.loads(self._fallback_path.read_text())
        except (OSError, ValueError):
            return
        pid = int(data.get("pid", 0)) if isinstance(data, dict) else 0
        dead = not _pid_alive(pid)
        expired = (time.time() - stat.st_mtime) > self.stale_after
        if dead or expired:
            try:
                self._fallback_path.unlink()
            except OSError:
                return
            telemetry.count("resilience.lock.stale_broken")
            sys.stderr.write(
                f"warning: broke stale repository lock (holder pid {pid} "
                f"{'dead' if dead else 'expired'})\n"
            )

    def _write_holder_metadata(self) -> None:
        """Record who holds the exclusive lock (doctor probe + timeout
        diagnostics). Best-effort: the flock itself is the truth."""
        if self._fd is None:
            return
        try:
            payload = json.dumps(
                {
                    "pid": os.getpid(),
                    "ts": telemetry.now(),
                    "command": self.command,
                }
            ).encode()
            os.ftruncate(self._fd, 0)
            os.pwrite(self._fd, payload, 0)
        except OSError:
            pass

    def _timeout_message(self) -> str:
        holder = holder_info(self.dir.parent) or {}
        pid = holder.get("pid")
        detail = ""
        if pid:
            state = "alive" if _pid_alive(int(pid)) else "dead"
            detail = (
                f" (last exclusive holder: pid {pid}, {state}, "
                f"command {holder.get('command') or '?'!r})"
            )
        return (
            f"timed out after {self.timeout:.1f}s waiting for the "
            f"repository lock on {self.path}{detail}; retry, raise "
            f"{ENV_TIMEOUT}, or remove the lock file if the holder is gone"
        )
