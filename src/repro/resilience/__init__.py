"""repro.resilience — crash safety and concurrency safety for the CLI.

OrpheusDB proper delegates durability and isolation to the host RDBMS;
this bolt-on reproduction persists everything in flat files under
``.orpheus/`` and therefore has to supply both itself. The pieces:

* :mod:`repro.resilience.statestore` — checksummed, atomically-replaced
  ``state.pkl`` with rotating backup generations and a corruption-
  tolerant load path.
* :mod:`repro.resilience.lock` — advisory repository lock (exclusive
  for writers, shared for readers) with backoff, stale detection, and
  telemetry.
* :mod:`repro.resilience.intents` — write-ahead intent log marking the
  begin/done window of every mutating command.
* :mod:`repro.resilience.recovery` — classifies torn operations after a
  crash and rolls back or reconciles them (``orpheus recover``).
* :mod:`repro.resilience.failpoints` — deterministic crash/error/delay
  injection (``ORPHEUS_FAILPOINTS``) proving all of the above.

See ``docs/resilience.md`` for the on-disk layout and the recovery
walkthrough.
"""

from __future__ import annotations

from repro.resilience.failpoints import (
    CRASH_EXIT_CODE,
    FailpointError,
    REGISTERED,
)
from repro.resilience.intents import IntentLog, has_pending_intents
from repro.resilience.lock import (
    LockTimeoutError,
    RepositoryLock,
    holder_info,
)
from repro.resilience.statestore import (
    LoadInfo,
    StateCorruptionError,
    StateStore,
)

# recovery imports repro.observe.journal, which itself fires failpoints
# from this package — resolve those names lazily to keep the import
# graph acyclic (observe.journal → failpoints must not re-enter here).
_LAZY = {"RecoveryAction", "RecoveryReport", "run_recovery"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.resilience import recovery

        return getattr(recovery, name)
    raise AttributeError(name)


__all__ = [
    "CRASH_EXIT_CODE",
    "FailpointError",
    "IntentLog",
    "LoadInfo",
    "LockTimeoutError",
    "RecoveryAction",
    "RecoveryReport",
    "REGISTERED",
    "RepositoryLock",
    "StateCorruptionError",
    "StateStore",
    "has_pending_intents",
    "holder_info",
    "run_recovery",
]
