"""Write-ahead intent log: detect operations that died halfway.

Before a mutating command touches any repository state it appends a
``begin`` record to ``.orpheus/journal/intents.jsonl``; after the state
save *and* the operation-journal append have both landed it appends a
matching ``done`` record. A ``begin`` with no ``done`` therefore marks a
*torn* operation — the process died somewhere between intent and
completion — and :mod:`repro.resilience.recovery` uses the pair set to
decide what to roll back or reconcile.

Records are single fsynced JSON lines (same torn-tail-tolerant idiom as
the operation journal). Completed pairs are garbage: once the file
accumulates more than :data:`COMPACT_THRESHOLD` records it is compacted
down to just the pending ``begin`` records via an atomic rewrite.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro import telemetry
from repro.resilience import failpoints

INTENTS_FILE = "intents.jsonl"
JOURNAL_DIR = "journal"
COMPACT_THRESHOLD = 256


class IntentLog:
    """Reader/writer for one repository's intent log."""

    def __init__(self, root: str | None = None) -> None:
        self.path = (
            Path(root or ".") / ".orpheus" / JOURNAL_DIR / INTENTS_FILE
        )

    # ------------------------------------------------------------------
    def begin(self, trace_id: str, command: str, **details) -> None:
        """Durably record the intent to run ``command`` before any state
        is touched."""
        record = {
            "phase": "begin",
            "trace_id": trace_id,
            "command": command,
            "ts": telemetry.now(),
        }
        for key, value in details.items():
            if value is not None:
                record[key] = value
        self._append(record)
        failpoints.fire("intent.after_begin")

    def done(self, trace_id: str, status: str = "ok") -> None:
        """Mark the operation complete (state + journal both durable)."""
        failpoints.fire("intent.before_done")
        self._append(
            {
                "phase": "done",
                "trace_id": trace_id,
                "status": status,
                "ts": telemetry.now(),
            }
        )
        self.compact_if_needed()

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def read(self) -> list[dict]:
        """All well-formed records; torn tail lines are skipped."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def pending(self) -> list[dict]:
        """``begin`` records with no matching ``done`` — torn operations."""
        records = self.read()
        done = {
            r.get("trace_id")
            for r in records
            if r.get("phase") == "done" and r.get("trace_id")
        }
        return [
            r
            for r in records
            if r.get("phase") == "begin" and r.get("trace_id") not in done
        ]

    # ------------------------------------------------------------------
    def compact_if_needed(self, threshold: int = COMPACT_THRESHOLD) -> bool:
        records = self.read()
        if len(records) <= threshold:
            return False
        self._rewrite(self.pending())
        return True

    def _rewrite(self, records: list[dict]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(
                        json.dumps(record, sort_keys=True, default=str) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def has_pending_intents(root: str | None = None) -> bool:
    """Cheap pre-lock check: does this repository have torn operations?

    A false positive (an operation currently in flight in another live
    process) is harmless — the recovery path re-checks under the
    exclusive lock and no-ops once the other process completes.
    """
    log = IntentLog(root)
    if not log.path.exists():
        return False
    return bool(log.pending())
