"""Version graphs, version trees, and the partitioning cost model.

Definitions follow Section 5.1: given versions V and records R, the
version-record bipartite graph G=(V,R,E) has an edge (v,r) when version v
contains record r. A *partitioning* assigns every version to exactly one
partition; each partition stores the union of its versions' records, so
records may be duplicated across partitions. The two costs are

* storage  S      = Σ_k |R_k|
* checkout C_avg  = Σ_k |V_k|·|R_k| / n

The version graph G=(V,E) is the far smaller structure LyreSplit works
on: nodes annotated with |R(v)|, edges (parent, child) annotated with
w(parent, child) = |common records|.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

MembershipMap = Mapping[int, frozenset[int]]
"""vid -> rids of that version."""


@dataclass
class VersionGraph:
    """The derivation DAG with record counts and common-record weights.

    Attributes:
        nodes: vid -> |R(v)|.
        parents: vid -> parent vids in derivation order.
        weights: (parent, child) -> w(parent, child).
        order: vids in topological (commit) order.
    """

    nodes: dict[int, int] = field(default_factory=dict)
    parents: dict[int, tuple[int, ...]] = field(default_factory=dict)
    weights: dict[tuple[int, int], int] = field(default_factory=dict)
    order: list[int] = field(default_factory=list)

    @property
    def num_versions(self) -> int:
        return len(self.nodes)

    @property
    def num_bipartite_edges(self) -> int:
        """|E| of the bipartite graph: Σ|R(v)|."""
        return sum(self.nodes.values())

    def is_tree(self) -> bool:
        return all(len(p) <= 1 for p in self.parents.values())

    def to_tree(self) -> "VersionTree":
        """The DAG→tree reduction of Section 5.3.1.

        Each merge version keeps only its max-weight incoming edge; the
        records it inherited from other parents count as conceptual
        duplicates R̂ charged to the estimated storage.
        """
        tree_parent: dict[int, int | None] = {}
        tree_weight: dict[int, int] = {}
        for vid in self.order:
            incoming = self.parents[vid]
            if not incoming:
                tree_parent[vid] = None
                tree_weight[vid] = 0
                continue
            best = max(incoming, key=lambda p: (self.weights[(p, vid)], -p))
            tree_parent[vid] = best
            tree_weight[vid] = self.weights[(best, vid)]
        return VersionTree(
            nodes=dict(self.nodes),
            parent=tree_parent,
            weight_to_parent=tree_weight,
            order=list(self.order),
        )


@dataclass
class VersionTree:
    """A rooted forest of versions (the input LyreSplit actually splits).

    Attributes:
        nodes: vid -> |R(v)|.
        parent: vid -> parent vid (None for roots).
        weight_to_parent: vid -> w(parent(v), v); 0 for roots.
        order: topological order (parents precede children).
    """

    nodes: dict[int, int]
    parent: dict[int, int | None]
    weight_to_parent: dict[int, int]
    order: list[int]

    def children_map(self) -> dict[int, list[int]]:
        children: dict[int, list[int]] = {vid: [] for vid in self.nodes}
        for vid, parent in self.parent.items():
            if parent is not None:
                children[parent].append(vid)
        return children

    def estimated_component_stats(
        self, component: Sequence[int]
    ) -> tuple[int, int, int]:
        """(|V|, |R|, |E|) of a connected subtree, from counts alone.

        |R| uses the tree identity of Lemma 5.1's proof:
        |R| = Σ R(v) − Σ w(v, parent(v)) over in-component edges. Exact
        for tree-shaped histories where each record's occurrence set is a
        connected subtree.
        """
        members = set(component)
        total_records = 0
        total_edges = 0
        shared = 0
        for vid in component:
            size = self.nodes[vid]
            total_edges += size
            total_records += size
            parent = self.parent[vid]
            if parent is not None and parent in members:
                shared += self.weight_to_parent[vid]
        return len(members), total_records - shared, total_edges


def build_version_graph(membership: MembershipMap, order: Sequence[int],
                        parents: Mapping[int, Sequence[int]]) -> VersionGraph:
    """Build a :class:`VersionGraph` from version memberships."""
    graph = VersionGraph()
    for vid in order:
        graph.nodes[vid] = len(membership[vid])
        parent_tuple = tuple(parents[vid])
        graph.parents[vid] = parent_tuple
        for parent in parent_tuple:
            graph.weights[(parent, vid)] = len(
                membership[parent] & membership[vid]
            )
        graph.order.append(vid)
    return graph


def graph_from_history(history) -> VersionGraph:
    """Convenience builder from a :class:`~repro.datasets.VersionedHistory`."""
    membership = {c.vid: c.rids for c in history.commits}
    order = [c.vid for c in history.commits]
    parents = {c.vid: c.parents for c in history.commits}
    return build_version_graph(membership, order, parents)


@dataclass
class Partitioning:
    """An assignment of versions to partitions, plus its cost model."""

    groups: list[frozenset[int]]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen & group
            if overlap:
                raise ValueError(
                    f"versions {sorted(overlap)[:5]} appear in more than "
                    "one partition"
                )
            seen |= group

    @property
    def num_partitions(self) -> int:
        return len(self.groups)

    def partition_of(self, vid: int) -> int:
        for index, group in enumerate(self.groups):
            if vid in group:
                return index
        raise KeyError(f"version {vid} is in no partition")

    def assignment(self) -> dict[int, int]:
        """vid -> partition index."""
        result: dict[int, int] = {}
        for index, group in enumerate(self.groups):
            for vid in group:
                result[vid] = index
        return result

    # ------------------------------------------------------------------
    # Exact costs (from real record sets)
    # ------------------------------------------------------------------
    def partition_records(
        self, membership: MembershipMap
    ) -> list[frozenset[int]]:
        """R_k: the union of member versions' records, per partition."""
        result: list[frozenset[int]] = []
        for group in self.groups:
            union: set[int] = set()
            for vid in group:
                union |= membership[vid]
            result.append(frozenset(union))
        return result

    def storage_cost(self, membership: MembershipMap) -> int:
        """S = Σ|R_k| (in records)."""
        return sum(len(r) for r in self.partition_records(membership))

    def checkout_cost(self, membership: MembershipMap) -> float:
        """C_avg = Σ|V_k||R_k| / n (in records)."""
        total_versions = sum(len(g) for g in self.groups)
        if total_versions == 0:
            return 0.0
        total = 0
        for group, records in zip(
            self.groups, self.partition_records(membership)
        ):
            total += len(group) * len(records)
        return total / total_versions

    def weighted_checkout_cost(
        self, membership: MembershipMap, frequencies: Mapping[int, float]
    ) -> float:
        """C_w = Σ_i f_i·C_i / Σ_i f_i (Section 5.3.2)."""
        total_weight = 0.0
        total = 0.0
        for group, records in zip(
            self.groups, self.partition_records(membership)
        ):
            for vid in group:
                weight = frequencies.get(vid, 1.0)
                total += weight * len(records)
                total_weight += weight
        return total / total_weight if total_weight else 0.0

    # ------------------------------------------------------------------
    # Estimated costs (tree formula; what LyreSplit optimizes)
    # ------------------------------------------------------------------
    def estimated_costs(self, tree: VersionTree) -> tuple[int, float]:
        """(S, C_avg) from subtree counts, treating R̂ as distinct."""
        total_storage = 0
        weighted = 0
        total_versions = 0
        for group in self.groups:
            num_versions, num_records, _edges = (
                tree.estimated_component_stats(sorted(group))
            )
            total_storage += num_records
            weighted += num_versions * num_records
            total_versions += num_versions
        checkout = weighted / total_versions if total_versions else 0.0
        return total_storage, checkout

    def validate_cover(self, vids: Sequence[int]) -> None:
        """Every vid in exactly one partition."""
        covered: set[int] = set()
        for group in self.groups:
            covered |= group
        missing = set(vids) - covered
        if missing:
            raise ValueError(f"versions not covered: {sorted(missing)[:5]}")
