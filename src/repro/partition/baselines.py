"""The NScale-derived baselines: Agglo and Kmeans (Section 5.5.1).

Both operate on the *bipartite* graph — each version's actual record set —
which is why they are orders of magnitude slower than LyreSplit on large
histories; that asymmetry is itself one of the paper's results
(Figure 5.10/5.12), so these implementations intentionally work at the
record-set level rather than borrowing LyreSplit's count-only shortcuts.
"""

from __future__ import annotations

import random
import time
from repro.partition.version_graph import MembershipMap, Partitioning


_SIGNATURE_SAMPLE_CAP = 4_000


def _minhash_signature(
    records: frozenset[int], hash_seeds: list[int], modulus: int = (1 << 61) - 1
) -> tuple[int, ...]:
    """k-minhash signature of a record set (the NScale 'shingles').

    Very large sets are sampled deterministically before hashing —
    NScale's shingles are likewise sampling-based — keeping signature
    cost bounded while preserving similarity estimates.
    """
    if len(records) > _SIGNATURE_SAMPLE_CAP:
        stride = len(records) // _SIGNATURE_SAMPLE_CAP + 1
        sampled = sorted(records)[::stride]
    else:
        sampled = records  # type: ignore[assignment]
    signature = []
    for seed in hash_seeds:
        best = modulus
        for rid in sampled:
            value = (rid * seed + 0x9E3779B9) % modulus
            if value < best:
                best = value
        signature.append(best)
    return tuple(signature)


def agglo_partition(
    membership: MembershipMap,
    capacity: float,
    num_hashes: int = 16,
    lookahead: int = 100,
    seed: int = 1,
    time_budget: float | None = None,
) -> Partitioning:
    """Agglomerative clustering (NScale Algorithm 4 mapped to versions).

    Every version starts as its own partition; partitions are ordered by
    their shingle signatures, and each partition greedily merges with the
    following candidate (within ``lookahead``) sharing the most common
    shingles, provided (1) the overlap exceeds a sampled threshold τ and
    (2) the merged record count stays within ``capacity`` (the BC knob
    binary-searched to hit a storage budget).

    Args:
        time_budget: Optional wall-clock cutoff in seconds, mirroring the
            paper's 10-hour cap on the baselines.
    """
    started = time.monotonic()
    rng = random.Random(seed)
    hash_seeds = [rng.randrange(1, (1 << 61) - 2) for _ in range(num_hashes)]

    vids = list(membership)
    signatures = {
        vid: _minhash_signature(membership[vid], hash_seeds) for vid in vids
    }

    # Sampled threshold τ: median common-shingle count over random pairs.
    sample_overlaps = []
    for _ in range(min(64, len(vids) * 2)):
        a, b = rng.choice(vids), rng.choice(vids)
        if a == b:
            continue
        common = sum(
            1 for x, y in zip(signatures[a], signatures[b]) if x == y
        )
        sample_overlaps.append(common)
    sample_overlaps.sort()
    tau = sample_overlaps[len(sample_overlaps) // 2] if sample_overlaps else 0

    # Partition state: list of (version set, record set, signature).
    partitions: list[tuple[set[int], set[int], tuple[int, ...]]] = [
        ({vid}, set(membership[vid]), signatures[vid]) for vid in vids
    ]
    partitions.sort(key=lambda item: item[2])

    merged = True
    while merged:
        merged = False
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        next_round: list[tuple[set[int], set[int], tuple[int, ...]]] = []
        consumed = [False] * len(partitions)
        out_of_time = False
        for i, (versions, records, signature) in enumerate(partitions):
            if consumed[i]:
                continue
            if (
                not out_of_time
                and i % 32 == 0
                and time_budget is not None
                and time.monotonic() - started > time_budget
            ):
                out_of_time = True
            if out_of_time:
                # Budget exhausted mid-round: pass survivors through.
                next_round.append((versions, records, signature))
                consumed[i] = True
                continue
            best_j = -1
            best_common = tau
            for j in range(i + 1, min(i + 1 + lookahead, len(partitions))):
                if consumed[j]:
                    continue
                other_versions, other_records, other_signature = partitions[j]
                common = sum(
                    1
                    for x, y in zip(signature, other_signature)
                    if x == y
                )
                if common <= best_common:
                    continue
                if len(records | other_records) > capacity:
                    continue
                best_common = common
                best_j = j
            if best_j >= 0:
                other_versions, other_records, _ = partitions[best_j]
                consumed[best_j] = True
                union_records = records | other_records
                union_versions = versions | other_versions
                next_round.append(
                    (
                        union_versions,
                        union_records,
                        _minhash_signature(
                            frozenset(union_records), hash_seeds
                        ),
                    )
                )
                merged = True
            else:
                next_round.append((versions, records, signature))
            consumed[i] = True
        partitions = sorted(next_round, key=lambda item: item[2])

    return Partitioning([frozenset(p[0]) for p in partitions])


def kmeans_partition(
    membership: MembershipMap,
    k: int,
    capacity: float = float("inf"),
    iterations: int = 10,
    seed: int = 1,
    time_budget: float | None = None,
) -> Partitioning:
    """K-means-style clustering (NScale Algorithm 5 mapped to versions).

    K random versions seed the partitions; every other version joins the
    centroid sharing the most records; centroids become record-set
    unions; subsequent iterations move versions to whichever partition
    minimizes the total record count, respecting ``capacity``.
    """
    started = time.monotonic()
    rng = random.Random(seed)
    vids = list(membership)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, len(vids))
    seeds = rng.sample(vids, k)

    assignment: dict[int, int] = {}
    centroids: list[set[int]] = [set(membership[vid]) for vid in seeds]
    for index, vid in enumerate(seeds):
        assignment[vid] = index

    # Initial assignment by max record overlap with a centroid.
    for vid in vids:
        if vid in assignment:
            continue
        records = membership[vid]
        best = max(
            range(k), key=lambda c: len(records & centroids[c])
        )
        assignment[vid] = best
        centroids[best] |= records

    for _ in range(iterations):
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        moved = False
        for step, vid in enumerate(vids):
            if (
                step % 16 == 0
                and time_budget is not None
                and time.monotonic() - started > time_budget
            ):
                break
            records = membership[vid]
            current = assignment[vid]
            # Cost delta of moving vid into partition c: growth of R_c.
            best_partition = current
            best_growth = 0  # moving nowhere costs nothing
            others_in_current = [
                v for v, c in assignment.items() if c == current and v != vid
            ]
            current_without: set[int] = set()
            for other in others_in_current:
                current_without |= membership[other]
            shrink = len(centroids[current]) - len(current_without)
            for c in range(k):
                if c == current:
                    continue
                growth = len(records - centroids[c]) - shrink
                if growth < best_growth:
                    if len(centroids[c] | records) > capacity:
                        continue
                    best_growth = growth
                    best_partition = c
            if best_partition != current:
                assignment[vid] = best_partition
                centroids[best_partition] |= records
                centroids[current] = current_without
                moved = True
        if not moved:
            break

    groups: dict[int, set[int]] = {}
    for vid, c in assignment.items():
        groups.setdefault(c, set()).add(vid)
    return Partitioning([frozenset(g) for g in groups.values() if g])


def binary_search_capacity(
    membership: MembershipMap,
    storage_budget: float,
    algorithm: str = "agglo",
    max_iterations: int = 12,
    time_budget: float | None = None,
    seed: int = 1,
) -> Partitioning:
    """Binary search the baseline's knob (BC for Agglo, K for Kmeans) to
    find the best partitioning with S ≤ storage_budget (Problem 5.1).

    ``time_budget`` caps *each* clustering call and also the overall
    search (the paper's 10-hour experiment cutoff, scaled): once the
    total elapsed time crosses it, the search stops with the best
    feasible partitioning found so far.
    """
    started = time.monotonic()

    def out_of_time() -> bool:
        return (
            time_budget is not None
            and time.monotonic() - started > time_budget
        )

    total_records = len(
        frozenset().union(*membership.values()) if membership else frozenset()
    )
    best: Partitioning | None = None
    best_checkout = float("inf")
    if algorithm == "agglo":
        low, high = float(max(len(r) for r in membership.values())), float(
            total_records
        )
        for _ in range(max_iterations):
            if out_of_time():
                break
            mid = (low + high) / 2
            candidate = agglo_partition(
                membership, capacity=mid, time_budget=time_budget, seed=seed
            )
            storage = candidate.storage_cost(membership)
            if storage <= storage_budget:
                checkout = candidate.checkout_cost(membership)
                if checkout < best_checkout:
                    best, best_checkout = candidate, checkout
                # Smaller capacity → more partitions → more storage;
                # a feasible capacity can shrink to cut checkout further.
                high = mid
            else:
                low = mid
    elif algorithm == "kmeans":
        low, high = 1, max(1, len(membership))
        while low <= high:
            if out_of_time():
                break
            mid = (low + high) // 2
            candidate = kmeans_partition(
                membership, k=mid, time_budget=time_budget, seed=seed
            )
            storage = candidate.storage_cost(membership)
            if storage <= storage_budget:
                checkout = candidate.checkout_cost(membership)
                if checkout < best_checkout:
                    best, best_checkout = candidate, checkout
                low = mid + 1  # more partitions still fit the budget
            else:
                high = mid - 1
    else:
        raise ValueError(f"unknown baseline {algorithm!r}")
    if best is None:
        best = Partitioning([frozenset(membership)])
    return best
