"""LyreSplit (Algorithm 5.1) and the δ binary search for Problem 5.1.

LyreSplit operates only on the version tree: starting from all versions
in one partition, it recursively splits any component violating
``|R|·|V| < |E|/δ`` by cutting a light edge (weight ≤ δ|R|), whose
existence Lemma 5.1 guarantees. The result is a
((1+δ)^ℓ, 1/δ)-approximation (Theorem 5.2), where ℓ is the recursion
depth. For a storage budget γ, :func:`lyresplit_for_budget` binary
searches δ using the superset property of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro import telemetry
from repro.partition.version_graph import (
    Partitioning,
    VersionGraph,
    VersionTree,
)

EdgeRule = Literal["balanced", "min_weight"]


@dataclass
class LyreSplitResult:
    """Outcome of one LyreSplit run.

    Attributes:
        partitioning: The version partitioning.
        delta: The δ used.
        recursion_depth: ℓ, the deepest recursion level reached (0 when
            no split happened) — the exponent in the storage guarantee.
        estimated_storage: S from the tree formula (counts R̂ as new).
        estimated_checkout: C_avg from the tree formula.
    """

    partitioning: Partitioning
    delta: float
    recursion_depth: int
    estimated_storage: int
    estimated_checkout: float


def lyresplit(
    graph: VersionGraph | VersionTree,
    delta: float,
    edge_rule: EdgeRule = "balanced",
) -> LyreSplitResult:
    """Run LyreSplit with a fixed δ.

    Args:
        graph: A version graph (reduced to a tree first if it has merges)
            or an already-built version tree.
        delta: δ ∈ (0, 1]; larger δ → more partitions, less checkout
            cost, more storage.
        edge_rule: How to choose among candidate light edges —
            ``balanced`` (the paper's experimental choice: minimize the
            version-count difference between the two sides, tie-breaking
            on record balance) or ``min_weight``.
    """
    if not 0.0 < delta <= 1.0:
        raise ValueError("delta must be in (0, 1]")
    with telemetry.span("lyresplit.run", delta=round(delta, 6)):
        return _lyresplit(graph, delta, edge_rule)


def _lyresplit(
    graph: VersionGraph | VersionTree,
    delta: float,
    edge_rule: EdgeRule,
) -> LyreSplitResult:
    tree = graph.to_tree() if isinstance(graph, VersionGraph) else graph
    # Per-call precomputation (rebuilding these per split would make the
    # algorithm quadratic in |V| instead of the paper's O(n*levels)).
    children = tree.children_map()
    order_index = {vid: i for i, vid in enumerate(tree.order)}
    roots = [vid for vid, parent in tree.parent.items() if parent is None]

    groups: list[frozenset[int]] = []
    max_depth = 0

    # Explicit work stack of (component_members, cut_edges_forbidden,
    # depth); recursion in Python would overflow on long chains.
    stack: list[tuple[list[int], set[int], int]] = []
    for root in roots:
        component = _subtree_members(root, children)
        stack.append((component, set(), 0))

    while stack:
        component, severed, depth = stack.pop()
        telemetry.count("lyresplit.components_examined")
        max_depth = max(max_depth, depth)
        members = set(component)
        num_versions, num_records, num_edges = tree.estimated_component_stats(
            component
        )
        if num_records * num_versions < num_edges / delta or num_versions <= 1:
            groups.append(frozenset(component))
            continue
        edge_child = _pick_edge(
            tree,
            component,
            members,
            severed,
            delta,
            num_records,
            edge_rule,
            children,
            order_index,
        )
        if edge_child is None:
            # No light edge (can occur off the tree-history assumptions);
            # accept the component rather than loop forever.
            groups.append(frozenset(component))
            continue
        severed = severed | {edge_child}
        below = [
            vid
            for vid in _subtree_members(
                edge_child, children, blocked=severed - {edge_child}
            )
            if vid in members
        ]
        below_set = set(below)
        above = [vid for vid in component if vid not in below_set]
        stack.append((above, severed, depth + 1))
        stack.append((below, severed, depth + 1))

    telemetry.count("lyresplit.levels_explored", max_depth)
    telemetry.count("lyresplit.partitions_produced", len(groups))
    partitioning = Partitioning(groups)
    storage, checkout = partitioning.estimated_costs(tree)
    return LyreSplitResult(
        partitioning=partitioning,
        delta=delta,
        recursion_depth=max_depth,
        estimated_storage=storage,
        estimated_checkout=checkout,
    )


def _subtree_members(
    root: int,
    children: dict[int, list[int]],
    blocked: set[int] | None = None,
) -> list[int]:
    """All nodes reachable downward from ``root`` without crossing into a
    ``blocked`` child (a previously severed edge)."""
    members = []
    stack = [root]
    while stack:
        node = stack.pop()
        members.append(node)
        for child in children[node]:
            if blocked is None or child not in blocked:
                stack.append(child)
    return members


def _pick_edge(
    tree: VersionTree,
    component: list[int],
    members: set[int],
    severed: set[int],
    delta: float,
    num_records: int,
    edge_rule: EdgeRule,
    children: dict[int, list[int]],
    order_index: dict[int, int],
) -> int | None:
    """Pick the edge to cut; returns the child endpoint, or None.

    Candidate edges Ω are in-component tree edges with weight ≤ δ|R|.
    """
    threshold = delta * num_records
    candidates = [
        vid
        for vid in component
        if vid not in severed
        and tree.parent[vid] is not None
        and tree.parent[vid] in members
        and tree.weight_to_parent[vid] <= threshold
    ]
    if not candidates:
        return None
    if edge_rule == "min_weight":
        return min(
            candidates, key=lambda vid: (tree.weight_to_parent[vid], vid)
        )

    # "balanced": minimize |versions(below) - versions(above)|, breaking
    # ties on the record balance between the two sides. One O(|component|)
    # bottom-up pass over the component.
    subtree_versions: dict[int, int] = {}
    subtree_records: dict[int, int] = {}
    for vid in sorted(component, key=order_index.__getitem__, reverse=True):
        versions_below = 1
        records_below = tree.nodes[vid]
        for child in children[vid]:
            if child in members and child not in severed:
                versions_below += subtree_versions[child]
                records_below += (
                    subtree_records[child] - tree.weight_to_parent[child]
                )
        subtree_versions[vid] = versions_below
        subtree_records[vid] = records_below

    total_versions = len(component)
    total_records = num_records

    def balance_key(vid: int) -> tuple[int, int, int]:
        below_v = subtree_versions[vid]
        below_r = subtree_records[vid]
        return (
            abs((total_versions - below_v) - below_v),
            abs((total_records - below_r) - below_r),
            vid,
        )

    return min(candidates, key=balance_key)


def lyresplit_for_budget(
    graph: VersionGraph | VersionTree,
    storage_budget: float,
    membership=None,
    edge_rule: EdgeRule = "balanced",
    max_iterations: int = 40,
    tolerance: float = 0.01,
) -> LyreSplitResult:
    """Solve Problem 5.1: minimize C_avg subject to S ≤ γ.

    Binary search on δ over [|E|/(|R||V|), 1]. As δ grows the cut-edge
    set only grows (superset property), so storage is monotonically
    non-decreasing in δ and binary search applies. Storage during the
    search is the estimated cost unless ``membership`` is given, in which
    case the exact record-union storage is used (the form the benchmarks
    report).

    Returns the best feasible result found; if even the single-partition
    solution exceeds γ, that minimal-storage solution is returned.
    """
    with telemetry.span("lyresplit.budget_search", budget=storage_budget):
        return _lyresplit_for_budget(
            graph, storage_budget, membership, edge_rule, max_iterations,
            tolerance,
        )


def _lyresplit_for_budget(
    graph: VersionGraph | VersionTree,
    storage_budget: float,
    membership,
    edge_rule: EdgeRule,
    max_iterations: int,
    tolerance: float,
) -> LyreSplitResult:
    tree = graph.to_tree() if isinstance(graph, VersionGraph) else graph
    num_records_total = tree.estimated_component_stats(list(tree.nodes))[1]
    num_edges = sum(tree.nodes.values())
    num_versions = len(tree.nodes)

    def storage_of(result: LyreSplitResult) -> float:
        if membership is not None:
            return result.partitioning.storage_cost(membership)
        return result.estimated_storage

    low = num_edges / max(num_records_total * num_versions, 1)
    low = min(max(low, 1e-9), 1.0)
    high = 1.0

    # The minimal-storage solution: everything in one partition per root.
    roots_partitioning = Partitioning(
        [frozenset(tree.nodes)]
    )
    storage_all, checkout_all = roots_partitioning.estimated_costs(tree)
    single = LyreSplitResult(
        partitioning=roots_partitioning,
        delta=low,
        recursion_depth=0,
        estimated_storage=storage_all,
        estimated_checkout=checkout_all,
    )
    if storage_of(single) > storage_budget:
        return single  # budget below even the unpartitioned storage
    best: LyreSplitResult | None = single

    for _ in range(max_iterations):
        mid = (low + high) / 2
        telemetry.count("lyresplit.search_iterations")
        result = lyresplit(tree, mid, edge_rule)
        storage = storage_of(result)
        if storage <= storage_budget:
            if (
                best is None
                or result.estimated_checkout < best.estimated_checkout
            ):
                best = result
            low = mid
            if storage >= (1.0 - tolerance) * storage_budget:
                break
        else:
            high = mid
    return best
