"""The partition optimizer (Chapter 5).

Partitions a CVD's version-record bipartite graph so a checkout touches a
single small partition instead of the whole data table. Contains:

* :mod:`repro.partition.version_graph` — the version graph/tree built
  from version memberships, and the :class:`Partitioning` cost model
  (storage cost S, checkout cost C_avg, both estimated and exact);
* :mod:`repro.partition.lyresplit` — the LyreSplit algorithm with its
  ((1+δ)^ℓ, 1/δ) guarantee, plus the binary search on δ that solves the
  storage-constrained Problem 5.1;
* :mod:`repro.partition.baselines` — the NScale-derived Agglo and Kmeans
  baselines the paper compares against;
* :mod:`repro.partition.weighted` — the weighted-checkout-frequency
  generalization (Section 5.3.2);
* :mod:`repro.partition.schema_aware` — the schema-change-aware splitting
  rule (Section 5.3.3);
* :mod:`repro.partition.partitioned_store` — a partitioned
  split-by-rlist data model with online maintenance and the migration
  engine (Section 5.4).
"""

from repro.partition.baselines import agglo_partition, kmeans_partition
from repro.partition.lyresplit import (
    LyreSplitResult,
    lyresplit,
    lyresplit_for_budget,
)
from repro.partition.partitioned_store import PartitionedRlistStore
from repro.partition.schema_aware import lyresplit_schema_aware
from repro.partition.version_graph import (
    Partitioning,
    VersionGraph,
    VersionTree,
    build_version_graph,
)
from repro.partition.weighted import lyresplit_weighted

__all__ = [
    "LyreSplitResult",
    "Partitioning",
    "PartitionedRlistStore",
    "VersionGraph",
    "VersionTree",
    "agglo_partition",
    "build_version_graph",
    "kmeans_partition",
    "lyresplit",
    "lyresplit_for_budget",
    "lyresplit_schema_aware",
    "lyresplit_weighted",
]
