"""A partitioned split-by-rlist store with online maintenance & migration.

This is the hybrid representation Chapter 5 builds: split-by-rlist within
each partition, a-table-per-version in the limit of one version per
partition. Each partition owns a data table (union of its versions'
records — records duplicate across partitions) and a versioning table; a
checkout touches exactly one partition.

Online maintenance (Section 5.4): a committed version joins its closest
parent's partition when it shares enough records (w > δ*·|R|) and the
storage budget allows, otherwise it opens a new partition. When the live
checkout cost C_avg drifts beyond µ·C*_avg (C*_avg re-computed by
LyreSplit), the migration engine rebuilds partitions — intelligently
reusing the closest existing partitions instead of rebuilding from
scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import telemetry
from repro.core.models.base import DataModel, RecordRow
from repro.core.models.split_by_rlist import SplitByRlistModel
from repro.partition.lyresplit import lyresplit_for_budget
from repro.partition.version_graph import (
    Partitioning,
    build_version_graph,
)


@dataclass
class MigrationStats:
    """Bookkeeping for one migration-engine invocation."""

    commits_at: int
    records_inserted: int
    records_deleted: int
    partitions_rebuilt: int
    partitions_reused: int
    wall_seconds: float
    strategy: str


class PartitionedRlistStore(DataModel):
    """Drop-in :class:`DataModel` storing split-by-rlist per partition."""

    model_name = "partitioned_rlist"

    def __init__(
        self,
        database,
        cvd_name,
        data_schema,
        storage_threshold_factor: float = 2.0,
        tolerance: float = 1.5,
        auto_migrate: bool = False,
        migration_strategy: str = "intelligent",
        join_algorithm: str = "hash",
    ) -> None:
        """Args:
        storage_threshold_factor: γ/|R| — the storage budget as a
            multiple of the distinct record count.
        tolerance: µ — migration triggers when C_avg > µ·C*_avg.
        auto_migrate: When True, every commit checks the tolerance and
            migrates on violation (the streaming experiment mode).
        migration_strategy: ``intelligent`` (reuse closest partitions) or
            ``naive`` (rebuild everything from scratch).
        """
        super().__init__(database, cvd_name, data_schema)
        self.storage_threshold_factor = storage_threshold_factor
        self.tolerance = tolerance
        self.auto_migrate = auto_migrate
        self.migration_strategy = migration_strategy
        self.join_algorithm = join_algorithm
        self._partitions: list[SplitByRlistModel] = []
        self._partition_records: list[set[int]] = []
        self._partition_versions: list[set[int]] = []
        self._partition_of: dict[int, int] = {}
        self._suffix_counter = 0
        #: CVD-wide state mirrored from commits.
        self._payloads: dict[int, tuple] = {}
        self._membership: dict[int, frozenset[int]] = {}
        self._parents: dict[int, tuple[int, ...]] = {}
        self._order: list[int] = []
        #: δ* from the last LyreSplit run (splitting parameter reused by
        #: the online rule); starts permissive so early commits cluster.
        self._delta_star = 0.1
        self.migrations: list[MigrationStats] = []

    # ------------------------------------------------------------------
    # DataModel interface
    # ------------------------------------------------------------------
    def table_names(self) -> list[str]:
        names: list[str] = []
        for partition in self._partitions:
            names.extend(partition.table_names())
        return names

    def commit_version(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
        new_records: Mapping[int, tuple],
        parent_membership: Mapping[int, frozenset[int]],
    ) -> None:
        self._payloads.update(new_records)
        self._membership[vid] = membership
        self._parents[vid] = tuple(parents)
        self._order.append(vid)

        target = self._route_commit(vid, parents, membership)
        self._add_version_to_partition(vid, membership, target)

        if self.auto_migrate and len(self._order) > 1:
            self.maybe_migrate()

    def checkout_rids(self, vid: int) -> list[RecordRow]:
        index = self._partition_of[vid]
        return self._partitions[index].checkout_rids(vid)

    def storage_bytes(self) -> int:
        return sum(p.storage_bytes() for p in self._partitions)

    def explain_checkout(self, vid: int):
        """Partition dispatch: a checkout touches exactly one partition."""
        from repro.observe.explain import ExplainNode

        index = self._partition_of.get(vid)
        node = ExplainNode(
            op="partition.dispatch",
            detail={
                "vid": vid,
                "partitions_touched": 1 if index is not None else 0,
                "partitions_total": len(self._partitions),
                "partition": index if index is not None else "(none)",
                "partition_versions": (
                    len(self._partition_versions[index])
                    if index is not None
                    else 0
                ),
                "partition_records": (
                    len(self._partition_records[index])
                    if index is not None
                    else 0
                ),
            },
            span_match=("model.checkout", {"vid": vid}),
        )
        if index is not None:
            node.add(self._partitions[index].explain_checkout(vid))
        return node

    def explain_commit(self, estimated_rows, parent_sizes):
        """Online routing: join the closest parent's partition when the
        overlap beats δ*·|R| and the budget allows, else open a new one."""
        from repro.observe.explain import ExplainNode, io_cost

        node = ExplainNode(
            op="partition.route",
            detail={
                "partitions_total": len(self._partitions),
                "delta_star": round(self._delta_star, 4),
                "rule": "join parent partition if overlap > δ*·|R| "
                "and storage budget allows",
            },
            estimated_rows=estimated_rows,
            span_match=("model.commit", {}),
        )
        node.add(
            ExplainNode(
                op="partition.copy_missing",
                detail={"note": "records absent from the target partition"},
                estimated_rows=estimated_rows,
                estimated_cost=io_cost(seq_rows=estimated_rows),
            )
        )
        return node

    def drop(self) -> None:
        for partition in self._partitions:
            partition.drop()
        self._partitions.clear()
        self._partition_records.clear()
        self._partition_versions.clear()
        self._partition_of.clear()

    # ------------------------------------------------------------------
    # Online maintenance (Section 5.4)
    # ------------------------------------------------------------------
    def _route_commit(
        self,
        vid: int,
        parents: Sequence[int],
        membership: frozenset[int],
    ) -> int | None:
        """Choose an existing partition for the new version, or None to
        open a fresh one."""
        if not self._partitions:
            return None
        best_index: int | None = None
        best_weight = -1
        for parent in parents:
            index = self._partition_of.get(parent)
            if index is None:
                continue
            weight = len(self._membership[parent] & membership)
            if weight > best_weight:
                best_weight = weight
                best_index = index
        if best_index is None:
            return None
        total_records = len(self._payloads)
        budget = self.storage_threshold_factor * total_records
        current_storage = sum(len(r) for r in self._partition_records)
        # Open a new partition when the parent overlap is light *and*
        # storage allows; otherwise join the parent's partition.
        if (
            best_weight <= self._delta_star * total_records
            and current_storage + len(membership) <= budget
        ):
            return None
        return best_index

    def _add_version_to_partition(
        self, vid: int, membership: frozenset[int], index: int | None
    ) -> None:
        if index is None:
            partition = self._new_partition()
            index = len(self._partitions) - 1
        else:
            partition = self._partitions[index]
        missing = membership - self._partition_records[index]
        for rid in sorted(missing):
            partition.data_table.insert((rid, *self._payloads[rid]))
        telemetry.count("partition.commit.rows_copied", len(missing))
        partition.versioning_table.insert((vid, sorted(membership)))
        self._partition_records[index] |= membership
        self._partition_versions[index].add(vid)
        self._partition_of[vid] = index

    def _new_partition(self) -> SplitByRlistModel:
        telemetry.count("partition.partitions_opened")
        self._suffix_counter += 1
        partition = SplitByRlistModel(
            self.database,
            self.cvd_name,
            self.data_schema,
            join_algorithm=self.join_algorithm,
            table_suffix=f"_p{self._suffix_counter}",
        )
        self._partitions.append(partition)
        self._partition_records.append(set())
        self._partition_versions.append(set())
        return partition

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def current_partitioning(self) -> Partitioning:
        return Partitioning(
            [frozenset(v) for v in self._partition_versions if v]
        )

    def current_checkout_cost(self) -> float:
        """C_avg over the live partitions, in records."""
        total = 0
        for versions, records in zip(
            self._partition_versions, self._partition_records
        ):
            total += len(versions) * len(records)
        n = len(self._order)
        return total / n if n else 0.0

    def current_storage_cost(self) -> int:
        return sum(len(r) for r in self._partition_records)

    def best_partitioning(self) -> tuple[Partitioning, float]:
        """Run LyreSplit under the current budget; returns (P*, C*_avg)."""
        graph = build_version_graph(
            self._membership, self._order, self._parents
        )
        budget = self.storage_threshold_factor * len(self._payloads)
        result = lyresplit_for_budget(
            graph, budget, membership=self._membership
        )
        self._delta_star = result.delta
        checkout = result.partitioning.checkout_cost(self._membership)
        return result.partitioning, checkout

    def maybe_migrate(self) -> MigrationStats | None:
        """Trigger the migration engine if C_avg > µ·C*_avg."""
        target, best_cost = self.best_partitioning()
        if best_cost <= 0:
            return None
        if self.current_checkout_cost() <= self.tolerance * best_cost:
            return None
        return self.migrate_to(target)

    def optimize(
        self,
        storage_threshold_factor: float | None = None,
        tolerance: float | None = None,
    ) -> Partitioning:
        """The ``optimize`` command: recompute and migrate unconditionally."""
        with telemetry.span("partition.optimize"):
            if storage_threshold_factor is not None:
                self.storage_threshold_factor = storage_threshold_factor
            if tolerance is not None:
                self.tolerance = tolerance
            target, _cost = self.best_partitioning()
            self.migrate_to(target)
            return target

    # ------------------------------------------------------------------
    # Migration engine (Section 5.4)
    # ------------------------------------------------------------------
    def migrate_to(self, target: Partitioning) -> MigrationStats:
        with telemetry.span(
            "partition.migrate",
            strategy=self.migration_strategy,
            partitions=target.num_partitions,
        ):
            return self._migrate_to(target)

    def _migrate_to(self, target: Partitioning) -> MigrationStats:
        started = telemetry.monotonic()
        inserted = 0
        deleted = 0
        rebuilt = 0
        reused = 0

        new_groups = [set(group) for group in target.groups]
        new_records = [
            set().union(*(self._membership[v] for v in group))
            if group
            else set()
            for group in new_groups
        ]

        if self.migration_strategy == "naive":
            plan: list[tuple[int, int | None]] = [
                (i, None) for i in range(len(new_groups))
            ]
        else:
            plan = self._match_partitions(new_groups, new_records)

        old_partitions = self._partitions
        old_records = self._partition_records

        self._partitions = []
        self._partition_records = []
        self._partition_versions = []
        self._partition_of = {}

        used_old: set[int] = set()
        for new_index, old_index in plan:
            group = new_groups[new_index]
            records = new_records[new_index]
            if old_index is None:
                partition = self._new_partition()
                for rid in sorted(records):
                    partition.data_table.insert((rid, *self._payloads[rid]))
                inserted += len(records)
                rebuilt += 1
                index = len(self._partitions) - 1
            else:
                # Reuse: adjust the old partition's data table in place.
                used_old.add(old_index)
                partition = old_partitions[old_index]
                self._partitions.append(partition)
                self._partition_records.append(set())
                self._partition_versions.append(set())
                index = len(self._partitions) - 1
                existing = old_records[old_index]
                to_insert = records - existing
                to_delete = existing - records
                for rid in sorted(to_insert):
                    partition.data_table.insert((rid, *self._payloads[rid]))
                if to_delete:
                    from repro.relational.expressions import InSet, col

                    partition.data_table.delete_where(
                        InSet(col("rid"), frozenset(to_delete))
                    )
                inserted += len(to_insert)
                deleted += len(to_delete)
                reused += 1
                # Reset the versioning table for the new version set.
                self._reset_versioning(partition)
            self._partition_records[index] = set(records)
            self._partition_versions[index] = set(group)
            for vid in group:
                self._partition_of[vid] = index
                partition.versioning_table.insert(
                    (vid, sorted(self._membership[vid]))
                )

        # Drop old partitions that were not reused.
        for old_index, partition in enumerate(old_partitions):
            if old_index not in used_old:
                partition.drop()

        stats = MigrationStats(
            commits_at=len(self._order),
            records_inserted=inserted,
            records_deleted=deleted,
            partitions_rebuilt=rebuilt,
            partitions_reused=reused,
            wall_seconds=telemetry.monotonic() - started,
            strategy=self.migration_strategy,
        )
        telemetry.count("partition.migration.rows_inserted", inserted)
        telemetry.count("partition.migration.rows_deleted", deleted)
        telemetry.count("partition.migration.partitions_rebuilt", rebuilt)
        telemetry.count("partition.migration.partitions_reused", reused)
        telemetry.observe("partition.migration.seconds", stats.wall_seconds)
        self.migrations.append(stats)
        return stats

    def _reset_versioning(self, partition: SplitByRlistModel) -> None:
        from repro.relational.expressions import lit

        partition.versioning_table.delete_where(lit(True))
        partition.versioning_table.vacuum()

    def _match_partitions(
        self,
        new_groups: list[set[int]],
        new_records: list[set[int]],
    ) -> list[tuple[int, int | None]]:
        """Greedy closest-partition matching by modification cost.

        Modification cost of turning old partition j into new partition i
        is |R'_i \\ R_j| + |R_j \\ R'_i|, computed through version overlap
        (cheap: via the version graph / membership map) rather than raw
        record diffs. Build-from-scratch (cost |R'_i|) wins when cheaper.
        """
        candidates: list[tuple[int, int, int]] = []
        for i, records in enumerate(new_records):
            for j, old in enumerate(self._partition_records):
                if not (new_groups[i] & self._partition_versions[j]):
                    continue  # no common versions: unlikely to be close
                cost = len(records - old) + len(old - records)
                if cost < len(records):
                    candidates.append((cost, i, j))
        candidates.sort()
        assigned_new: set[int] = set()
        assigned_old: set[int] = set()
        plan: list[tuple[int, int | None]] = []
        for cost, i, j in candidates:
            if i in assigned_new or j in assigned_old:
                continue
            plan.append((i, j))
            assigned_new.add(i)
            assigned_old.add(j)
        for i in range(len(new_groups)):
            if i not in assigned_new:
                plan.append((i, None))
        return plan
