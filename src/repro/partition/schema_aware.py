"""Schema-change-aware partitioning (Section 5.3.3).

Under the single-pool schema-evolution scheme, versions can differ in
their *attributes* as well as their records. The splitting rule becomes:
edge (v_i, v_j) is a candidate when

    a(v_i, v_j) · w(v_i, v_j)  ≤  δ · |A| · |R|

where a(·,·) counts common attributes and |A| is the total number of
attributes across versions. With a fixed schema a(v_i, v_j) = |A| and the
rule reduces to plain LyreSplit's w ≤ δ|R|.
"""

from __future__ import annotations

from typing import Mapping

from repro.partition.lyresplit import LyreSplitResult
from repro.partition.version_graph import Partitioning, VersionTree


def lyresplit_schema_aware(
    tree: VersionTree,
    delta: float,
    version_attributes: Mapping[int, frozenset[int]],
) -> LyreSplitResult:
    """LyreSplit with the attribute-weighted splitting rule.

    Args:
        tree: The version tree (reduce a DAG first).
        delta: δ ∈ (0, 1].
        version_attributes: vid -> set of attribute ids present in that
            version (from the CVD's metadata table).
    """
    if not 0.0 < delta <= 1.0:
        raise ValueError("delta must be in (0, 1]")
    children = tree.children_map()
    roots = [vid for vid, parent in tree.parent.items() if parent is None]

    groups: list[frozenset[int]] = []
    max_depth = 0
    stack: list[tuple[list[int], int]] = [
        (_subtree(root, children), 0) for root in roots
    ]
    severed: set[int] = set()

    while stack:
        component, depth = stack.pop()
        max_depth = max(max_depth, depth)
        members = set(component)
        num_versions = len(component)
        # Cell-weighted stats: a version's weight is records × attributes
        # and an edge's weight is common records × common attributes, so
        # both storage and the split rule account for schema divergence.
        edge_cells = 0
        common_cells = 0
        for vid in component:
            edge_cells += tree.nodes[vid] * len(version_attributes[vid])
            parent = tree.parent[vid]
            if parent is not None and parent in members:
                common_cells += tree.weight_to_parent[vid] * len(
                    version_attributes[vid] & version_attributes[parent]
                )
        record_cells = edge_cells - common_cells
        if (
            record_cells * num_versions < edge_cells / delta
            or num_versions <= 1
        ):
            groups.append(frozenset(component))
            continue
        threshold = delta * record_cells
        candidates = []
        for vid in component:
            parent = tree.parent[vid]
            if parent is None or parent not in members or vid in severed:
                continue
            common_attributes = len(
                version_attributes[vid] & version_attributes[parent]
            )
            score = common_attributes * tree.weight_to_parent[vid]
            if score <= threshold:
                candidates.append((score, vid))
        if not candidates:
            groups.append(frozenset(component))
            continue
        _score, cut_child = min(candidates)
        severed.add(cut_child)
        below = [
            v
            for v in _subtree(cut_child, children, blocked=severed - {cut_child})
            if v in members
        ]
        below_set = set(below)
        above = [v for v in component if v not in below_set]
        stack.append((above, depth + 1))
        stack.append((below, depth + 1))

    partitioning = Partitioning(groups)
    storage, checkout = partitioning.estimated_costs(tree)
    return LyreSplitResult(
        partitioning=partitioning,
        delta=delta,
        recursion_depth=max_depth,
        estimated_storage=storage,
        estimated_checkout=checkout,
    )


def _subtree(
    root: int,
    children: dict[int, list[int]],
    blocked: set[int] | None = None,
) -> list[int]:
    members = []
    stack = [root]
    while stack:
        node = stack.pop()
        members.append(node)
        for child in children[node]:
            if blocked is None or child not in blocked:
                stack.append(child)
    return members
