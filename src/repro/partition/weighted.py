"""Weighted checkout frequencies (Section 5.3.2).

When versions are checked out with different frequencies f_i, LyreSplit
still applies after a reduction: duplicate each version f_i times into a
chain in a constructed tree T', run LyreSplit on T', then post-process by
pulling all replicas of a version into the replica partition with the
fewest records. The approximation bound carries over unchanged.
"""

from __future__ import annotations

from typing import Mapping

from repro.partition.lyresplit import EdgeRule, LyreSplitResult, lyresplit
from repro.partition.version_graph import (
    MembershipMap,
    Partitioning,
    VersionGraph,
    VersionTree,
)


def expand_weighted_tree(
    tree: VersionTree, frequencies: Mapping[int, int]
) -> tuple[VersionTree, dict[int, int]]:
    """Build T' by replicating each version f_i times into a chain.

    Returns the expanded tree plus a map from replica id to original vid.
    Replica ids are synthetic and dense, so they never collide with
    original vids.
    """
    nodes: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    weight: dict[int, int] = {}
    order: list[int] = []
    replica_of: dict[int, int] = {}
    first_replica: dict[int, int] = {}
    last_replica: dict[int, int] = {}
    next_id = 0
    for vid in tree.order:
        f = int(frequencies.get(vid, 1))
        if f < 1:
            raise ValueError(f"frequency for version {vid} must be >= 1")
        for j in range(f):
            replica = next_id
            next_id += 1
            replica_of[replica] = vid
            nodes[replica] = tree.nodes[vid]
            order.append(replica)
            if j == 0:
                first_replica[vid] = replica
                original_parent = tree.parent[vid]
                if original_parent is None:
                    parent[replica] = None
                    weight[replica] = 0
                else:
                    parent[replica] = last_replica[original_parent]
                    weight[replica] = tree.weight_to_parent[vid]
            else:
                parent[replica] = replica - 1
                # A version shares all its records with its own replica.
                weight[replica] = tree.nodes[vid]
            last_replica[vid] = replica
    expanded = VersionTree(
        nodes=nodes, parent=parent, weight_to_parent=weight, order=order
    )
    return expanded, replica_of


def lyresplit_weighted(
    graph: VersionGraph | VersionTree,
    delta: float,
    frequencies: Mapping[int, int],
    membership: MembershipMap | None = None,
    edge_rule: EdgeRule = "balanced",
) -> LyreSplitResult:
    """Run weighted LyreSplit; returns a result over the *original* vids.

    The post-processing step assigns each original version to, among the
    partitions its replicas landed in, the one with the fewest records
    (measured exactly when ``membership`` is given, otherwise by the
    estimated component record count).
    """
    tree = graph.to_tree() if isinstance(graph, VersionGraph) else graph
    expanded, replica_of = expand_weighted_tree(tree, frequencies)
    result = lyresplit(expanded, delta, edge_rule)

    # Collapse replica partitions back to original versions.
    replica_groups = result.partitioning.groups
    group_sizes: list[float] = []
    for group in replica_groups:
        if membership is not None:
            union: set[int] = set()
            for replica in group:
                union |= membership[replica_of[replica]]
            group_sizes.append(float(len(union)))
        else:
            originals = sorted({replica_of[r] for r in group})
            group_sizes.append(
                float(tree.estimated_component_stats(originals)[1])
            )

    chosen_group: dict[int, int] = {}
    for index, group in enumerate(replica_groups):
        for replica in group:
            vid = replica_of[replica]
            current = chosen_group.get(vid)
            if current is None or group_sizes[index] < group_sizes[current]:
                chosen_group[vid] = index

    collapsed: dict[int, set[int]] = {}
    for vid, index in chosen_group.items():
        collapsed.setdefault(index, set()).add(vid)
    partitioning = Partitioning([frozenset(g) for g in collapsed.values()])
    storage, checkout = partitioning.estimated_costs(tree)
    return LyreSplitResult(
        partitioning=partitioning,
        delta=delta,
        recursion_depth=result.recursion_depth,
        estimated_storage=storage,
        estimated_checkout=checkout,
    )
