"""repro — a reproduction of *Effective Data Versioning for Collaborative
Data Analytics* (Huang, 2019: the OrpheusDB line of work).

Subpackages:

* :mod:`repro.relational` — embedded relational engine (the PostgreSQL
  stand-in).
* :mod:`repro.core` — OrpheusDB: CVDs, data models, commands, queries.
* :mod:`repro.partition` — the LyreSplit partition optimizer (Chapter 5).
* :mod:`repro.vquel` — the VQuel query language (Chapter 6).
* :mod:`repro.storage` — the compact storage engine (Chapter 7).
* :mod:`repro.provenance` — lineage inference (Chapter 8).
* :mod:`repro.datasets` — SCI/CUR benchmark workload generators.
"""

__version__ = "1.0.0"
