"""Delta codecs: the differencing mechanisms of Section 7.2.1.

Three of the paper's delta variants are implemented, each with a
``diff``/``apply`` pair, a storage-cost measure, and a recreation-cost
measure:

* :class:`LineDeltaCodec` — UNIX-style line diffs for text artifacts
  (directed: the delta from A to B is not the delta from B to A);
* :class:`CellDeltaCodec` — cell-level diffs for tabular data keyed on a
  primary key (directed);
* :class:`XorDeltaCodec` — XOR of byte strings (symmetric: the same
  delta converts either version into the other).

Recreation cost defaults to being proportional to storage cost (the
Φ = Δ scenarios); codecs accept a ``recreation_factor`` to model the
Φ ≠ Δ scenario where applying a compact delta is expensive.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Delta:
    """An encoded difference between two artifacts.

    Attributes:
        payload: Codec-specific representation of the modification.
        storage_cost: Δ, bytes needed to store the delta.
        recreation_cost: Φ, time units to apply the delta.
        symmetric: True when the delta can be applied in both directions.
    """

    payload: object
    storage_cost: float
    recreation_cost: float
    symmetric: bool = False


class DeltaCodec(abc.ABC):
    """Interface every differencing mechanism implements."""

    name: str = ""
    symmetric: bool = False

    def __init__(self, recreation_factor: float = 1.0) -> None:
        """Args:
        recreation_factor: Multiplier turning storage bytes into
            recreation cost units (1.0 models the Φ = Δ scenario).
        """
        self.recreation_factor = recreation_factor

    @abc.abstractmethod
    def diff(self, source, target) -> Delta:
        """The delta that recreates ``target`` from ``source``."""

    @abc.abstractmethod
    def apply(self, source, delta: Delta):
        """Apply a delta to ``source``, returning the target artifact."""

    @abc.abstractmethod
    def materialize_cost(self, artifact) -> tuple[float, float]:
        """(Δ_ii, Φ_ii): cost to store and load the artifact in full."""


class LineDeltaCodec(DeltaCodec):
    """Line-based diffs over sequences of text lines.

    The payload is a minimal edit script of ``(op, position, lines)``
    operations computed from the longest-common-subsequence opcodes, so
    the delta size genuinely tracks how different the two versions are.
    """

    name = "line"
    symmetric = False

    def diff(self, source: Sequence[str], target: Sequence[str]) -> Delta:
        import difflib

        matcher = difflib.SequenceMatcher(a=source, b=target, autojunk=False)
        script: list[tuple[str, int, int, tuple[str, ...]]] = []
        for tag, i1, i2, j1, j2 in matcher.get_opcodes():
            if tag == "equal":
                continue
            inserted = tuple(target[j1:j2])
            script.append((tag, i1, i2, inserted))
        storage = self._script_bytes(script)
        return Delta(
            payload=tuple(script),
            storage_cost=storage,
            recreation_cost=storage * self.recreation_factor,
        )

    def apply(self, source: Sequence[str], delta: Delta) -> list[str]:
        result: list[str] = []
        cursor = 0
        for _tag, i1, i2, inserted in delta.payload:  # type: ignore[attr-defined]
            result.extend(source[cursor:i1])
            result.extend(inserted)
            cursor = i2
        result.extend(source[cursor:])
        return result

    def materialize_cost(self, artifact: Sequence[str]) -> tuple[float, float]:
        size = sum(len(line) + 1 for line in artifact)
        return float(size), float(size) * self.recreation_factor

    @staticmethod
    def _script_bytes(script) -> float:
        total = 0
        for _tag, _i1, _i2, inserted in script:
            total += 12  # opcode header
            total += sum(len(line) + 1 for line in inserted)
        return float(total)


class CellDeltaCodec(DeltaCodec):
    """Cell-level diffs over keyed tabular data.

    Artifacts are ``dict[key, tuple]`` mappings (primary key -> row). The
    delta records inserted rows, deleted keys, and per-cell updates — the
    "recording differences at the cell level" variant for relational
    data.
    """

    name = "cell"
    symmetric = False

    def __init__(self, recreation_factor: float = 1.0, cell_bytes: int = 8) -> None:
        super().__init__(recreation_factor)
        self.cell_bytes = cell_bytes

    def diff(self, source: dict, target: dict) -> Delta:
        inserted = {
            key: row for key, row in target.items() if key not in source
        }
        deleted = tuple(key for key in source if key not in target)
        updates: dict[object, tuple[tuple[int, object], ...]] = {}
        for key, row in target.items():
            old = source.get(key)
            if old is None or old == row:
                continue
            changed = tuple(
                (position, value)
                for position, (before, value) in enumerate(zip(old, row))
                if before != value
            )
            if changed:
                updates[key] = changed
        storage = float(
            sum(self.cell_bytes * (1 + len(row)) for row in inserted.values())
            + self.cell_bytes * len(deleted)
            + sum(
                self.cell_bytes * (1 + len(cells))
                for cells in updates.values()
            )
        )
        return Delta(
            payload=(inserted, deleted, updates),
            storage_cost=storage,
            recreation_cost=storage * self.recreation_factor,
        )

    def apply(self, source: dict, delta: Delta) -> dict:
        inserted, deleted, updates = delta.payload  # type: ignore[misc]
        result = dict(source)
        for key in deleted:
            result.pop(key, None)
        for key, cells in updates.items():
            row = list(result[key])
            for position, value in cells:
                row[position] = value
            result[key] = tuple(row)
        result.update(inserted)
        return result

    def materialize_cost(self, artifact: dict) -> tuple[float, float]:
        size = float(
            sum(
                self.cell_bytes * (1 + len(row))
                for row in artifact.values()
            )
        )
        return size, size * self.recreation_factor


class XorDeltaCodec(DeltaCodec):
    """XOR deltas over byte strings — symmetric by construction.

    The payload stores the XOR of the two (length-aligned) byte strings
    run-length compressed over zero bytes, so similar artifacts produce
    small deltas.
    """

    name = "xor"
    symmetric = True

    def diff(self, source: bytes, target: bytes) -> Delta:
        length = max(len(source), len(target))
        a = source.ljust(length, b"\0")
        b = target.ljust(length, b"\0")
        raw = bytes(x ^ y for x, y in zip(a, b))
        # Run-length encode zero runs: [(offset, chunk), ...].
        chunks: list[tuple[int, bytes]] = []
        i = 0
        while i < length:
            if raw[i] == 0:
                i += 1
                continue
            j = i
            while j < length and raw[j] != 0:
                j += 1
            chunks.append((i, raw[i:j]))
            i = j
        storage = float(
            sum(8 + len(chunk) for _offset, chunk in chunks) + 16
        )
        return Delta(
            payload=(length, len(source), len(target), tuple(chunks)),
            storage_cost=storage,
            recreation_cost=storage * self.recreation_factor,
            symmetric=True,
        )

    def apply(self, source: bytes, delta: Delta) -> bytes:
        length, len_a, len_b, chunks = delta.payload  # type: ignore[misc]
        buffer = bytearray(source.ljust(length, b"\0"))
        for offset, chunk in chunks:
            for position, value in enumerate(chunk):
                buffer[offset + position] ^= value
        # The delta applies in either direction; pick the target length.
        target_length = len_b if len(source) == len_a else len_a
        return bytes(buffer[:target_length])

    def materialize_cost(self, artifact: bytes) -> tuple[float, float]:
        return float(len(artifact)), float(len(artifact)) * self.recreation_factor


CODECS = {
    LineDeltaCodec.name: LineDeltaCodec,
    CellDeltaCodec.name: CellDeltaCodec,
    XorDeltaCodec.name: XorDeltaCodec,
}
