"""The expanded storage graph and storage plans (Section 7.2.2).

From the matrices we build a directed graph G over vertices {0, 1..n}
where 0 is the dummy root: edge (0, v) carries the materialization cost
of v, edge (u, v) the delta cost from u to v. By Lemma 7.1 every optimal
solution is a spanning tree rooted at 0 — a :class:`StoragePlan` is such
a tree, stored as parent pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.matrices import CostMatrices

ROOT = 0
"""The dummy vertex V0."""


@dataclass
class StorageGraph:
    """Directed weighted graph over {0} ∪ versions.

    Attributes:
        num_versions: n.
        edges: (source, target) -> (Δ, Φ). Root edges use source 0.
        symmetric: Whether delta edges exist in both directions with the
            same weight (the undirected scenario).
    """

    num_versions: int
    edges: dict[tuple[int, int], tuple[float, float]] = field(
        default_factory=dict
    )
    symmetric: bool = False

    @classmethod
    def from_matrices(cls, matrices: CostMatrices) -> "StorageGraph":
        matrices.validate()
        graph = cls(
            num_versions=matrices.num_versions, symmetric=matrices.symmetric
        )
        for source, target, delta, phi in matrices.edges():
            graph.edges[(source, target)] = (delta, phi)
        return graph

    def vertices(self) -> range:
        return range(1, self.num_versions + 1)

    def out_edges(self, vertex: int) -> Iterator[tuple[int, float, float]]:
        for (source, target), (delta, phi) in self.edges.items():
            if source == vertex:
                yield target, delta, phi

    def in_edges(self, vertex: int) -> Iterator[tuple[int, float, float]]:
        for (source, target), (delta, phi) in self.edges.items():
            if target == vertex:
                yield source, delta, phi

    def storage_weight(self, source: int, target: int) -> float:
        return self.edges[(source, target)][0]

    def recreation_weight(self, source: int, target: int) -> float:
        return self.edges[(source, target)][1]

    def adjacency(self) -> dict[int, list[tuple[int, float, float]]]:
        """source -> [(target, Δ, Φ), ...] for fast solver loops."""
        result: dict[int, list[tuple[int, float, float]]] = {
            v: [] for v in range(0, self.num_versions + 1)
        }
        for (source, target), (delta, phi) in self.edges.items():
            result[source].append((target, delta, phi))
        return result


@dataclass
class StoragePlan:
    """A spanning tree rooted at the dummy vertex, as parent pointers.

    ``parent[v] == 0`` means version v is materialized; otherwise v is
    stored as a delta from ``parent[v]``.
    """

    parent: dict[int, int]

    def materialized(self) -> list[int]:
        return sorted(v for v, p in self.parent.items() if p == ROOT)

    def validate(self, graph: StorageGraph) -> None:
        """Raise unless this is a spanning tree of ``graph`` rooted at 0."""
        versions = set(graph.vertices())
        if set(self.parent) != versions:
            missing = versions - set(self.parent)
            raise ValueError(f"plan misses versions {sorted(missing)[:5]}")
        for vertex, parent in self.parent.items():
            if (parent, vertex) not in graph.edges:
                raise ValueError(
                    f"plan uses unrevealed edge ({parent} -> {vertex})"
                )
        # Acyclicity / reachability: walk each vertex to the root.
        for vertex in versions:
            seen = {vertex}
            current = vertex
            while current != ROOT:
                current = self.parent[current]
                if current in seen:
                    raise ValueError(f"cycle in plan at vertex {current}")
                seen.add(current)

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def total_storage_cost(self, graph: StorageGraph) -> float:
        """C = Σ Δ over plan edges."""
        return sum(
            graph.storage_weight(parent, vertex)
            for vertex, parent in self.parent.items()
        )

    def recreation_costs(self, graph: StorageGraph) -> dict[int, float]:
        """R_i for every version, by memoized path walks to the root."""
        memo: dict[int, float] = {ROOT: 0.0}

        def cost_of(vertex: int) -> float:
            if vertex in memo:
                return memo[vertex]
            path = []
            current = vertex
            while current not in memo:
                path.append(current)
                current = self.parent[current]
            base = memo[current]
            for node in reversed(path):
                base = memo[self.parent[node]] + graph.recreation_weight(
                    self.parent[node], node
                )
                memo[node] = base
            return memo[vertex]

        return {v: cost_of(v) for v in graph.vertices()}

    def sum_recreation(self, graph: StorageGraph) -> float:
        return sum(self.recreation_costs(graph).values())

    def max_recreation(self, graph: StorageGraph) -> float:
        costs = self.recreation_costs(graph)
        return max(costs.values()) if costs else 0.0

    def depth_histogram(self) -> dict[int, int]:
        """Distribution of delta-chain lengths (0 = materialized)."""
        histogram: dict[int, int] = {}
        for vertex in self.parent:
            depth = 0
            current = vertex
            while self.parent[current] != ROOT:
                current = self.parent[current]
                depth += 1
            histogram[depth] = histogram.get(depth, 0) + 1
        return histogram
