"""The compact storage engine for data versioning (Chapter 7).

Given a collection of dataset versions of *any* structure, decide which
versions to materialize and which to store as deltas, trading total
storage cost C against per-version recreation costs R_i. The six problem
variants of Table 7.1 are solved by:

* Problem 1 (min C):             minimum spanning tree / arborescence
* Problem 2 (min all R_i):       shortest-path tree
* Problem 3 (min ΣR_i, C ≤ β):   LMG under a storage budget
* Problem 4 (min max R_i, C ≤ β): binary-searched MP
* Problem 5 (min C, ΣR_i ≤ θ):   LMG
* Problem 6 (min C, max R_i ≤ θ): MP (modified Prim's), or exact ILP

plus LAST for the undirected Φ=Δ scenario and a scipy-based ILP for
exact small instances. Delta codecs (line, cell, XOR) make the engine
work end-to-end on real artifacts, not just cost matrices.
"""

from repro.storage.deltas import (
    CellDeltaCodec,
    Delta,
    LineDeltaCodec,
    XorDeltaCodec,
)
from repro.storage.engine import StoredVersion, VersionedStore
from repro.storage.graph import StorageGraph, StoragePlan
from repro.storage.matrices import CostMatrices
from repro.storage.solvers import (
    ilp_min_storage_max_recreation,
    last_tree,
    lmg_min_storage,
    lmg_min_sum_recreation,
    minimum_arborescence,
    minimum_spanning_storage,
    mp_min_max_recreation,
    mp_min_storage,
    shortest_path_tree,
    solve,
)

__all__ = [
    "CellDeltaCodec",
    "CostMatrices",
    "Delta",
    "LineDeltaCodec",
    "StorageGraph",
    "StoragePlan",
    "StoredVersion",
    "VersionedStore",
    "XorDeltaCodec",
    "ilp_min_storage_max_recreation",
    "last_tree",
    "lmg_min_storage",
    "lmg_min_sum_recreation",
    "minimum_arborescence",
    "minimum_spanning_storage",
    "mp_min_max_recreation",
    "mp_min_storage",
    "shortest_path_tree",
    "solve",
]
