"""Synthetic workloads for the Chapter 7 experiments.

The paper's Section 7.5 evaluates on large real corpora (Wikipedia dumps
and synthetic version histories named LC — "linear chain" — and BC —
"branched chain"). Those corpora are not redistributable, so we generate
text-artifact histories with the same controllable shape parameters:
chain vs. branched derivation, edit locality, and edit volume per step.
The substitution preserves what the experiments measure — how the
solvers trade storage against recreation as the version graph's shape
and the delta sizes vary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.engine import VersionedStore, reveal_similar_pairs
from repro.storage.deltas import DeltaCodec, LineDeltaCodec


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape parameters for a synthetic artifact history.

    Attributes:
        num_versions: Number of versions to generate.
        base_lines: Lines in the root artifact.
        edits_per_version: Lines changed (replaced/inserted/deleted) per
            derivation step.
        branching_factor: 0 → pure linear chain (LC); larger values make
            more versions fork off earlier versions (BC).
        line_width: Characters per generated line.
        seed: RNG seed.
    """

    num_versions: int = 50
    base_lines: int = 400
    edits_per_version: int = 20
    branching_factor: float = 0.0
    line_width: int = 40
    seed: int = 13


def generate_text_history(
    config: SyntheticConfig,
) -> tuple[dict[int, list[str]], dict[int, tuple[int, ...]]]:
    """Generate artifacts and their derivation edges.

    Returns:
        (artifacts, parents): vid -> list of lines, vid -> parent vids.
    """
    rng = random.Random(config.seed)

    def random_line() -> str:
        return "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz ")
            for _ in range(config.line_width)
        )

    artifacts: dict[int, list[str]] = {}
    parents: dict[int, tuple[int, ...]] = {}
    artifacts[1] = [random_line() for _ in range(config.base_lines)]
    parents[1] = ()
    for vid in range(2, config.num_versions + 1):
        if config.branching_factor > 0 and rng.random() < config.branching_factor:
            parent = rng.randrange(1, vid)
        else:
            parent = vid - 1
        lines = list(artifacts[parent])
        for _ in range(config.edits_per_version):
            roll = rng.random()
            if roll < 0.5 and lines:
                lines[rng.randrange(len(lines))] = random_line()
            elif roll < 0.85:
                lines.insert(rng.randrange(len(lines) + 1), random_line())
            elif lines:
                del lines[rng.randrange(len(lines))]
        artifacts[vid] = lines
        parents[vid] = (parent,)
    return artifacts, parents


def build_store(
    config: SyntheticConfig,
    codec: DeltaCodec | None = None,
    extra_pairs: int = 0,
) -> VersionedStore:
    """Generate a history and load it into a :class:`VersionedStore`."""
    artifacts, parents = generate_text_history(config)
    store = VersionedStore(codec or LineDeltaCodec())
    for vid in sorted(artifacts):
        store.add_version(vid, artifacts[vid], parents[vid])
    if extra_pairs:
        existing = {
            (p, v) for v, ps in parents.items() for p in ps
        }
        for source, target in reveal_similar_pairs(
            artifacts, existing, budget=extra_pairs
        ):
            store.reveal_pair(source, target)
    return store
