"""The Δ (storage) and Φ (recreation) cost matrices of Section 7.2.1.

Sparse: computing all-pairs deltas is infeasible, so only *revealed*
entries exist — typically the version-graph edges plus extra pairs chosen
by a similarity heuristic. Diagonal entries are materialization costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro import telemetry


@dataclass
class CostMatrices:
    """Sparse Δ/Φ matrices over versions 1..n (0 is the dummy root).

    Attributes:
        num_versions: n.
        storage: (i, j) -> Δ_ij for revealed off-diagonal entries;
            (i, i) -> Δ_ii materialization cost. Keys use 1-based ids.
        recreation: Same keys -> Φ values.
        symmetric: True when Δ_ij = Δ_ji by construction (undirected).
    """

    num_versions: int
    storage: dict[tuple[int, int], float] = field(default_factory=dict)
    recreation: dict[tuple[int, int], float] = field(default_factory=dict)
    symmetric: bool = False

    def set_materialization(self, vid: int, delta: float, phi: float) -> None:
        self.storage[(vid, vid)] = delta
        self.recreation[(vid, vid)] = phi

    def set_delta(
        self, source: int, target: int, delta: float, phi: float
    ) -> None:
        self.storage[(source, target)] = delta
        self.recreation[(source, target)] = phi
        if self.symmetric:
            self.storage[(target, source)] = delta
            self.recreation[(target, source)] = phi

    def has_entry(self, source: int, target: int) -> bool:
        return (source, target) in self.storage

    def delta(self, source: int, target: int) -> float:
        return self.storage[(source, target)]

    def phi(self, source: int, target: int) -> float:
        return self.recreation[(source, target)]

    def edges(self) -> Iterator[tuple[int, int, float, float]]:
        """All revealed entries as (source, target, Δ, Φ); the diagonal
        appears as (0, v, Δ_vv, Φ_vv) — edges from the dummy root."""
        for (source, target), delta in self.storage.items():
            phi = self.recreation[(source, target)]
            if source == target:
                yield 0, target, delta, phi
            else:
                yield source, target, delta, phi

    def validate(self) -> None:
        """Every version must be materializable, and Φ keys must mirror Δ."""
        for vid in range(1, self.num_versions + 1):
            if (vid, vid) not in self.storage:
                raise ValueError(
                    f"version {vid} has no materialization cost"
                )
        missing = set(self.storage) ^ set(self.recreation)
        if missing:
            raise ValueError(
                f"storage/recreation keys disagree on {sorted(missing)[:5]}"
            )

    def check_triangle_inequality(self, tolerance: float = 1e-9) -> list[str]:
        """Return violations of Equations 7.3/7.4 among revealed entries.

        Only meaningful for the symmetric Δ = Φ scenario where deltas
        record literal modifications.
        """
        violations: list[str] = []
        revealed = {
            (s, t): d for (s, t), d in self.storage.items() if s != t
        }
        full = {v: self.storage[(v, v)] for v in range(1, self.num_versions + 1)}
        for (p, q), d_pq in revealed.items():
            # |Δpp − Δpq| ≤ Δqq ≤ Δpp + Δpq
            if p in full and q in full:
                if full[q] > full[p] + d_pq + tolerance or full[q] < abs(
                    full[p] - d_pq
                ) - tolerance:
                    violations.append(
                        f"materialization triangle violated at ({p},{q})"
                    )
            for (q2, w), d_qw in revealed.items():
                if q2 != q or (p, w) not in revealed:
                    continue
                d_pw = revealed[(p, w)]
                if d_pw > d_pq + d_qw + tolerance:
                    violations.append(
                        f"path triangle violated at ({p},{q},{w})"
                    )
        return violations

    @classmethod
    def from_artifacts(
        cls,
        artifacts: dict[int, object],
        codec,
        pairs: Iterable[tuple[int, int]],
    ) -> tuple["CostMatrices", dict[tuple[int, int], object]]:
        """Compute matrices by running a codec over selected pairs.

        Args:
            artifacts: vid -> artifact (1-based vids).
            codec: A :class:`~repro.storage.deltas.DeltaCodec`.
            pairs: Ordered (source, target) pairs to reveal.

        Returns:
            (matrices, deltas) where ``deltas`` maps revealed pairs to
            the actual :class:`Delta` payloads for later application.
        """
        matrices = cls(num_versions=len(artifacts), symmetric=codec.symmetric)
        deltas: dict[tuple[int, int], object] = {}
        for vid, artifact in artifacts.items():
            delta_cost, phi_cost = codec.materialize_cost(artifact)
            matrices.set_materialization(vid, delta_cost, phi_cost)
        for source, target in pairs:
            started = telemetry.monotonic()
            delta = codec.diff(artifacts[source], artifacts[target])
            telemetry.observe(
                "storage.delta.encode_seconds", telemetry.monotonic() - started
            )
            matrices.set_delta(
                source, target, delta.storage_cost, delta.recreation_cost
            )
            deltas[(source, target)] = delta
            if codec.symmetric:
                deltas[(target, source)] = delta
        telemetry.count("storage.delta.pairs_encoded", len(deltas))
        return matrices, deltas
