"""Online storage planning (the Chapter 7 future-work extension).

The chapter studies the *static* problem: all versions known up front.
In practice versions arrive continuously; re-running a global solver per
arrival is wasteful. :class:`OnlineVersionedStore` plans incrementally:

* each arriving version is stored as the cheapest delta among its
  revealed candidates (derivation parents plus a similarity probe
  against recently materialized versions) **subject to** a recreation
  budget θ — the online analogue of Problem 6;
* when no candidate satisfies θ, the version is materialized;
* a drift trigger (like Section 5.4's tolerance factor) re-runs the
  static MP solver when the online plan's storage exceeds µ times the
  static optimum, and rebuilds the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.deltas import DeltaCodec
from repro.storage.graph import ROOT, StorageGraph, StoragePlan
from repro.storage.solvers.mp import mp_min_storage


@dataclass
class OnlineStats:
    """Counters for the online planner's behaviour."""

    versions_added: int = 0
    materialized: int = 0
    delta_stored: int = 0
    replans: int = 0


class OnlineVersionedStore:
    """Incrementally planned compact storage for arriving versions."""

    def __init__(
        self,
        codec: DeltaCodec,
        max_recreation: float,
        tolerance: float = 1.5,
        probe_materialized: int = 3,
    ) -> None:
        """Args:
        codec: Delta codec for artifacts.
        max_recreation: θ — no version's recreation cost may exceed it.
        tolerance: µ — replan when online storage > µ x static optimum.
        probe_materialized: How many recently materialized versions to
            diff against, besides the declared parents, when a new
            version arrives (cheap extra "revealed" entries).
        """
        self.codec = codec
        self.max_recreation = max_recreation
        self.tolerance = tolerance
        self.probe_materialized = probe_materialized
        self.stats = OnlineStats()
        self._artifacts: dict[int, object] = {}
        self._parent: dict[int, int] = {}
        self._deltas: dict[tuple[int, int], object] = {}
        self._recreation: dict[int, float] = {}
        self._storage_cost: dict[int, float] = {}
        #: revealed graph entries for replanning: (u, v) -> (Δ, Φ).
        self._edges: dict[tuple[int, int], tuple[float, float]] = {}

    # ------------------------------------------------------------------
    def add_version(
        self, vid: int, artifact: object, parents: tuple[int, ...] = ()
    ) -> None:
        """Store an arriving version under the online policy."""
        if vid in self._artifacts:
            raise ValueError(f"version {vid} already stored")
        self._artifacts[vid] = artifact
        self.stats.versions_added += 1

        materialize_delta, materialize_phi = self.codec.materialize_cost(
            artifact
        )
        self._edges[(ROOT, vid)] = (materialize_delta, materialize_phi)

        candidates = list(parents)
        recent_materialized = [
            v
            for v, parent in self._parent.items()
            if parent == ROOT and v not in candidates
        ][-self.probe_materialized :]
        candidates.extend(recent_materialized)

        best_source = ROOT
        best_cost = materialize_delta
        best_delta = None
        best_recreation = materialize_phi
        for source in candidates:
            if source not in self._artifacts:
                raise ValueError(f"unknown candidate version {source}")
            delta = self.codec.diff(self._artifacts[source], artifact)
            self._edges[(source, vid)] = (
                delta.storage_cost,
                delta.recreation_cost,
            )
            recreation = self._recreation[source] + delta.recreation_cost
            if recreation > self.max_recreation:
                continue
            if delta.storage_cost < best_cost:
                best_source = source
                best_cost = delta.storage_cost
                best_delta = delta
                best_recreation = recreation

        if materialize_phi > self.max_recreation and best_delta is None:
            raise ValueError(
                f"version {vid} cannot meet recreation budget "
                f"{self.max_recreation}"
            )

        self._parent[vid] = best_source
        self._storage_cost[vid] = best_cost
        self._recreation[vid] = best_recreation
        if best_source == ROOT:
            self.stats.materialized += 1
        else:
            self._deltas[(best_source, vid)] = best_delta
            self.stats.delta_stored += 1

        self._maybe_replan()

    # ------------------------------------------------------------------
    def _maybe_replan(self) -> None:
        if len(self._artifacts) < 4:
            return
        online_storage = self.total_storage_cost()
        graph = self.graph()
        static_plan = mp_min_storage(graph, self.max_recreation)
        static_storage = static_plan.total_storage_cost(graph)
        if online_storage > self.tolerance * static_storage:
            self._adopt(static_plan)
            self.stats.replans += 1

    def _adopt(self, plan: StoragePlan) -> None:
        self._parent = dict(plan.parent)
        self._deltas = {}
        graph = self.graph()
        recreation = plan.recreation_costs(graph)
        for vid, parent in self._parent.items():
            self._recreation[vid] = recreation[vid]
            self._storage_cost[vid] = graph.storage_weight(parent, vid)
            if parent != ROOT:
                self._deltas[(parent, vid)] = self.codec.diff(
                    self._artifacts[parent], self._artifacts[vid]
                )

    # ------------------------------------------------------------------
    def graph(self) -> StorageGraph:
        graph = StorageGraph(
            num_versions=len(self._artifacts),
            symmetric=self.codec.symmetric,
        )
        graph.edges.update(self._edges)
        return graph

    def plan(self) -> StoragePlan:
        return StoragePlan(dict(self._parent))

    def total_storage_cost(self) -> float:
        return sum(self._storage_cost.values())

    def recreation_cost(self, vid: int) -> float:
        return self._recreation[vid]

    def retrieve(self, vid: int):
        chain: list[int] = []
        current = vid
        while self._parent[current] != ROOT:
            chain.append(current)
            current = self._parent[current]
        artifact = self._artifacts[current]  # materialized copy
        for node in reversed(chain):
            delta = self._deltas.get((self._parent[node], node))
            if delta is None:
                delta = self.codec.diff(
                    self._artifacts[self._parent[node]],
                    self._artifacts[node],
                )
            artifact = self.codec.apply(artifact, delta)
        return artifact
