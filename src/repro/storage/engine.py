"""The end-to-end versioned store: artifacts in, plans out, bytes back.

:class:`VersionedStore` ties the chapter together: register artifact
versions (text, tables, or bytes) with their derivation edges, compute
the Δ/Φ matrices with a delta codec, solve one of the six problems for a
storage plan, *materialize* the plan (actually keeping full copies for
materialized versions and codec deltas for the rest), and retrieve any
version by walking its delta chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import telemetry
from repro.storage.deltas import Delta, DeltaCodec
from repro.storage.graph import ROOT, StorageGraph, StoragePlan
from repro.storage.matrices import CostMatrices
from repro.storage.solvers import solve


@dataclass
class StoredVersion:
    """How one version is physically kept."""

    vid: int
    parent: int  # 0 = materialized
    content: object | None  # full artifact when materialized
    delta: Delta | None  # codec delta otherwise


class VersionedStore:
    """Compact storage for a set of related artifact versions."""

    def __init__(self, codec: DeltaCodec) -> None:
        self.codec = codec
        self._artifacts: dict[int, object] = {}
        self._edges: set[tuple[int, int]] = set()
        self._matrices: CostMatrices | None = None
        self._deltas: dict[tuple[int, int], Delta] = {}
        self._plan: StoragePlan | None = None
        self._stored: dict[int, StoredVersion] = {}
        self._graph: StorageGraph | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_version(
        self, vid: int, artifact: object, parents: Iterable[int] = ()
    ) -> None:
        """Register a version and its derivation edges.

        Each (parent, vid) pair becomes a revealed delta; callers may
        reveal additional pairs with :meth:`reveal_pair` (e.g. found by a
        similarity heuristic).
        """
        if vid in self._artifacts:
            raise ValueError(f"version {vid} already added")
        self._artifacts[vid] = artifact
        for parent in parents:
            if parent not in self._artifacts:
                raise ValueError(f"unknown parent version {parent}")
            self._edges.add((parent, vid))
        self._invalidate()

    def reveal_pair(self, source: int, target: int) -> None:
        """Reveal an extra Δ/Φ entry beyond the version-graph edges."""
        if source not in self._artifacts or target not in self._artifacts:
            raise ValueError("both versions must be registered first")
        self._edges.add((source, target))
        self._invalidate()

    def _invalidate(self) -> None:
        self._matrices = None
        self._graph = None
        self._plan = None
        self._stored.clear()

    # ------------------------------------------------------------------
    # Costing and planning
    # ------------------------------------------------------------------
    def matrices(self) -> CostMatrices:
        if self._matrices is None:
            # Contiguity: the store requires vids 1..n.
            expected = set(range(1, len(self._artifacts) + 1))
            if set(self._artifacts) != expected:
                raise ValueError("version ids must be 1..n")
            self._matrices, deltas = CostMatrices.from_artifacts(
                self._artifacts, self.codec, sorted(self._edges)
            )
            self._deltas = dict(deltas)  # type: ignore[arg-type]
        return self._matrices

    def graph(self) -> StorageGraph:
        if self._graph is None:
            self._graph = StorageGraph.from_matrices(self.matrices())
        return self._graph

    def plan(
        self, problem: int, threshold: float | None = None, alpha: float = 2.0
    ) -> StoragePlan:
        """Compute and adopt a storage plan for a Table 7.1 problem."""
        with telemetry.span("storage.plan", problem=problem):
            started = telemetry.monotonic()
            plan = solve(self.graph(), problem, threshold=threshold, alpha=alpha)
            telemetry.observe(
                "storage.plan.solve_seconds", telemetry.monotonic() - started
            )
            self.adopt_plan(plan)
            return plan

    def adopt_plan(self, plan: StoragePlan) -> None:
        """Materialize a plan: store full copies and deltas per the tree."""
        plan.validate(self.graph())
        self.matrices()  # ensure deltas are computed
        self._plan = plan
        self._stored.clear()
        materialized = 0
        delta_stored = 0
        for vid, parent in plan.parent.items():
            if parent == ROOT:
                self._stored[vid] = StoredVersion(
                    vid=vid,
                    parent=ROOT,
                    content=self._artifacts[vid],
                    delta=None,
                )
                materialized += 1
            else:
                delta = self._deltas.get((parent, vid))
                if delta is None:
                    started = telemetry.monotonic()
                    delta = self.codec.diff(
                        self._artifacts[parent], self._artifacts[vid]
                    )
                    telemetry.observe(
                        "storage.delta.encode_seconds",
                        telemetry.monotonic() - started,
                    )
                self._stored[vid] = StoredVersion(
                    vid=vid, parent=parent, content=None, delta=delta
                )
                delta_stored += 1
        telemetry.count("storage.plan.versions_materialized", materialized)
        telemetry.count("storage.plan.versions_delta_stored", delta_stored)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(self, vid: int):
        """Recreate a version by walking its delta chain from a
        materialized ancestor."""
        if self._plan is None:
            raise RuntimeError("no plan adopted; call plan() first")
        with telemetry.span("storage.retrieve", vid=vid):
            chain: list[StoredVersion] = []
            current = self._stored[vid]
            while current.parent != ROOT:
                chain.append(current)
                current = self._stored[current.parent]
            telemetry.observe("storage.retrieve.chain_length", len(chain))
            artifact = current.content
            for stored in reversed(chain):
                assert stored.delta is not None
                started = telemetry.monotonic()
                artifact = self.codec.apply(artifact, stored.delta)
                telemetry.observe(
                    "storage.delta.decode_seconds",
                    telemetry.monotonic() - started,
                )
            telemetry.count("storage.delta.applied", len(chain))
            return artifact

    def retrieval_chain_length(self, vid: int) -> int:
        if self._plan is None:
            raise RuntimeError("no plan adopted")
        length = 0
        current = self._stored[vid]
        while current.parent != ROOT:
            length += 1
            current = self._stored[current.parent]
        return length

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, float]:
        """Cost summary of the adopted plan."""
        if self._plan is None:
            raise RuntimeError("no plan adopted")
        graph = self.graph()
        costs = self._plan.recreation_costs(graph)
        return {
            "total_storage": self._plan.total_storage_cost(graph),
            "sum_recreation": sum(costs.values()),
            "max_recreation": max(costs.values()),
            "materialized": float(len(self._plan.materialized())),
            "num_versions": float(graph.num_versions),
        }


def reveal_similar_pairs(
    artifacts: dict[int, Sequence[str]],
    existing: set[tuple[int, int]],
    budget: int,
    window: int = 5,
) -> list[tuple[int, int]]:
    """A cheap similarity heuristic (Douglis-style) to reveal extra pairs:
    compare line-set overlap within a sliding vid window and return the
    ``budget`` most-similar unrevealed pairs."""
    scored: list[tuple[float, int, int]] = []
    vids = sorted(artifacts)
    signatures = {vid: set(artifacts[vid]) for vid in vids}
    for i, source in enumerate(vids):
        for target in vids[i + 1 : i + 1 + window]:
            if (source, target) in existing or (target, source) in existing:
                continue
            a, b = signatures[source], signatures[target]
            union = len(a | b)
            if union == 0:
                continue
            scored.append((len(a & b) / union, source, target))
    scored.sort(reverse=True)
    return [(s, t) for _score, s, t in scored[:budget]]
