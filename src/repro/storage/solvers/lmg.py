"""LMG — the Local Move Greedy heuristic (Problems 3 and 5).

Start from the minimum-storage tree. Each *move* re-parents one version
onto the dummy root (materializes it), which lowers the recreation cost
of the whole subtree hanging below it at the price of extra storage. LMG
repeatedly applies the move with the best ratio

    ρ = (reduction in Σ R_i) / (increase in storage)

until the constraint is met (Problem 5: stop once Σ R_i ≤ θ) or the
budget is exhausted (Problem 3: apply moves while C stays ≤ β).
"""

from __future__ import annotations

from repro.storage.graph import ROOT, StorageGraph, StoragePlan
from repro.storage.solvers.mst import minimum_spanning_storage


def _children_map(plan: StoragePlan) -> dict[int, list[int]]:
    children: dict[int, list[int]] = {ROOT: []}
    for vertex in plan.parent:
        children.setdefault(vertex, [])
    for vertex, parent in plan.parent.items():
        children.setdefault(parent, []).append(vertex)
    return children


def _subtree_size(plan: StoragePlan, vertex: int) -> int:
    children = _children_map(plan)
    count = 0
    stack = [vertex]
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(children.get(node, ()))
    return count


def _best_materialization_move(
    graph: StorageGraph, plan: StoragePlan
) -> tuple[float, float, int] | None:
    """The move maximizing ρ; returns (ρ, storage_increase, vertex)."""
    recreation = plan.recreation_costs(graph)
    children = _children_map(plan)

    # Subtree sizes in one pass (children lists are a forest under ROOT).
    sizes: dict[int, int] = {}

    def size_of(node: int) -> int:
        if node in sizes:
            return sizes[node]
        total = 1
        for child in children.get(node, ()):
            total += size_of(child)
        sizes[node] = total
        return total

    best: tuple[float, float, int] | None = None
    for vertex, parent in plan.parent.items():
        if parent == ROOT:
            continue
        if (ROOT, vertex) not in graph.edges:
            continue
        new_recreation = graph.recreation_weight(ROOT, vertex)
        recreation_drop = recreation[vertex] - new_recreation
        if recreation_drop <= 0:
            continue
        storage_increase = graph.storage_weight(
            ROOT, vertex
        ) - graph.storage_weight(parent, vertex)
        total_drop = recreation_drop * size_of(vertex)
        if storage_increase <= 0:
            # Free improvement: take it immediately with infinite ratio.
            return (float("inf"), storage_increase, vertex)
        ratio = total_drop / storage_increase
        if best is None or ratio > best[0]:
            best = (ratio, storage_increase, vertex)
    return best


def lmg_min_storage(
    graph: StorageGraph, sum_recreation_budget: float
) -> StoragePlan:
    """Problem 5: minimize C subject to Σ R_i ≤ θ.

    Phase one applies the paper's materialization moves by best ratio;
    if those alone cannot reach the budget (possible when the residual
    slack lives in delta-edge choices, not materializations), a second
    phase re-parents vertices onto cheaper-recreation in-edges, which
    converges to the shortest-path tree — feasible whenever θ is.
    """
    plan = minimum_spanning_storage(graph)
    while plan.sum_recreation(graph) > sum_recreation_budget:
        move = _best_materialization_move(graph, plan)
        if move is None:
            break  # no materialization can reduce recreation further
        _ratio, _cost, vertex = move
        plan.parent[vertex] = ROOT
    while plan.sum_recreation(graph) > sum_recreation_budget:
        move = _best_reparent_move(graph, plan)
        if move is None:
            break  # θ below the SPT sum: infeasible instance
        vertex, new_parent = move
        plan.parent[vertex] = new_parent
    return plan


def _best_reparent_move(
    graph: StorageGraph, plan: StoragePlan
) -> tuple[int, int] | None:
    """The re-parenting move with the best recreation-drop/storage ratio.

    Cycle safety: vertex v may only adopt a parent outside its own
    subtree.
    """
    recreation = plan.recreation_costs(graph)
    children = _children_map(plan)

    def subtree(vertex: int) -> set[int]:
        members = set()
        stack = [vertex]
        while stack:
            node = stack.pop()
            members.add(node)
            stack.extend(children.get(node, ()))
        return members

    best: tuple[float, int, int] | None = None
    for vertex, parent in plan.parent.items():
        below = None
        for source, delta, phi in graph.in_edges(vertex):
            if source == parent:
                continue
            if source != ROOT:
                if below is None:
                    below = subtree(vertex)
                if source in below:
                    continue
                new_recreation = recreation[source] + phi
            else:
                new_recreation = phi
            drop = recreation[vertex] - new_recreation
            if drop <= 0:
                continue
            storage_increase = delta - graph.storage_weight(parent, vertex)
            size = len(below) if below is not None else len(subtree(vertex))
            total_drop = drop * size
            ratio = (
                total_drop / storage_increase
                if storage_increase > 0
                else float("inf")
            )
            if best is None or ratio > best[0]:
                best = (ratio, vertex, source)
    if best is None:
        return None
    return best[1], best[2]


def lmg_min_sum_recreation(
    graph: StorageGraph, storage_budget: float
) -> StoragePlan:
    """Problem 3: minimize Σ R_i subject to C ≤ β."""
    plan = minimum_spanning_storage(graph)
    if plan.total_storage_cost(graph) > storage_budget:
        # Even the min-storage tree violates β: return it anyway (the
        # instance is infeasible; callers can check).
        return plan
    while True:
        move = _best_materialization_move(graph, plan)
        if move is None:
            break
        _ratio, storage_increase, vertex = move
        if (
            plan.total_storage_cost(graph) + storage_increase
            > storage_budget
        ):
            # Try the next-best affordable move before giving up.
            affordable = _best_affordable_move(
                graph, plan, storage_budget
            )
            if affordable is None:
                break
            vertex = affordable
        plan.parent[vertex] = ROOT
    return plan


def _best_affordable_move(
    graph: StorageGraph, plan: StoragePlan, storage_budget: float
) -> int | None:
    recreation = plan.recreation_costs(graph)
    current_storage = plan.total_storage_cost(graph)
    best_vertex: int | None = None
    best_ratio = 0.0
    for vertex, parent in plan.parent.items():
        if parent == ROOT or (ROOT, vertex) not in graph.edges:
            continue
        storage_increase = graph.storage_weight(
            ROOT, vertex
        ) - graph.storage_weight(parent, vertex)
        if current_storage + storage_increase > storage_budget:
            continue
        drop = recreation[vertex] - graph.recreation_weight(ROOT, vertex)
        if drop <= 0:
            continue
        size = _subtree_size(plan, vertex)
        ratio = (
            drop * size / storage_increase
            if storage_increase > 0
            else float("inf")
        )
        if ratio > best_ratio:
            best_ratio = ratio
            best_vertex = vertex
    return best_vertex
