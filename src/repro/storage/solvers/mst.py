"""Problem 1 — minimize total storage.

Undirected case: Prim's algorithm over Δ weights. Directed case: the
Chu-Liu/Edmonds minimum arborescence rooted at the dummy vertex,
implemented from scratch (tests cross-check it against networkx).
"""

from __future__ import annotations

import heapq

from repro.storage.graph import ROOT, StorageGraph, StoragePlan


def minimum_spanning_storage(graph: StorageGraph) -> StoragePlan:
    """Minimum-storage spanning structure: Prim for symmetric graphs,
    Edmonds for directed ones."""
    if graph.symmetric:
        return _prim(graph)
    return minimum_arborescence(graph)


def _prim(graph: StorageGraph) -> StoragePlan:
    adjacency: dict[int, list[tuple[float, int]]] = {
        v: [] for v in range(0, graph.num_versions + 1)
    }
    for (source, target), (delta, _phi) in graph.edges.items():
        adjacency[source].append((delta, target))
        # Symmetric graphs also admit storing the delta the other way,
        # except materialization edges which only leave the root.
        if source != ROOT:
            adjacency[target].append((delta, source))

    parent: dict[int, int] = {}
    in_tree = {ROOT}
    heap: list[tuple[float, int, int]] = []
    for delta, target in adjacency[ROOT]:
        heapq.heappush(heap, (delta, target, ROOT))
    while heap and len(in_tree) <= graph.num_versions:
        delta, vertex, source = heapq.heappop(heap)
        if vertex in in_tree:
            continue
        in_tree.add(vertex)
        parent[vertex] = source
        for next_delta, neighbor in adjacency[vertex]:
            if neighbor not in in_tree and neighbor != ROOT:
                heapq.heappush(heap, (next_delta, neighbor, vertex))
    _require_spanning(graph, parent)
    return StoragePlan(parent)


def minimum_arborescence(graph: StorageGraph) -> StoragePlan:
    """Chu-Liu/Edmonds minimum-weight arborescence rooted at 0."""
    edges = [
        (source, target, delta)
        for (source, target), (delta, _phi) in graph.edges.items()
    ]
    nodes = set(range(1, graph.num_versions + 1)) | {ROOT}
    chosen = _edmonds(nodes, edges, ROOT)
    parent = {target: source for source, target in chosen}
    _require_spanning(graph, parent)
    return StoragePlan(parent)


def _edmonds(
    nodes: set[int], edges: list[tuple[int, int, float]], root: int
) -> set[tuple[int, int]]:
    """Recursive Chu-Liu/Edmonds. Returns the set of (source, target)
    arborescence edges in terms of the *original* edge endpoints."""
    # Step 1: cheapest incoming edge per non-root node.
    best_in: dict[int, tuple[int, float]] = {}
    for source, target, weight in edges:
        if target == root or source == target:
            continue
        current = best_in.get(target)
        if current is None or weight < current[1]:
            best_in[target] = (source, weight)
    for node in nodes:
        if node != root and node not in best_in:
            raise ValueError(f"vertex {node} unreachable from the root")

    # Step 2: find a cycle among the chosen edges.
    cycle = _find_cycle(best_in, root)
    if cycle is None:
        return {(source, target) for target, (source, _w) in best_in.items()}

    # Step 3: contract the cycle into a supernode and recurse.
    cycle_set = set(cycle)
    supernode = max(nodes) + 1
    contracted_nodes = (nodes - cycle_set) | {supernode}
    contracted_edges: list[tuple[int, int, float]] = []
    #: map from contracted edge identity to original edge
    origin: dict[tuple[int, int, float], tuple[int, int, float]] = {}
    for source, target, weight in edges:
        in_cycle_source = source in cycle_set
        in_cycle_target = target in cycle_set
        if in_cycle_source and in_cycle_target:
            continue
        if in_cycle_target:
            adjusted = weight - best_in[target][1]
            key = (source, supernode, adjusted)
            contracted_edges.append(key)
            origin[key] = (source, target, weight)
        elif in_cycle_source:
            key = (supernode, target, weight)
            contracted_edges.append(key)
            origin[key] = (source, target, weight)
        else:
            key = (source, target, weight)
            contracted_edges.append(key)
            origin[key] = (source, target, weight)

    sub_solution = _edmonds(contracted_nodes, contracted_edges, root)

    # Step 4: expand the supernode. Exactly one chosen edge enters it;
    # the original target of that edge breaks the cycle there.
    result: set[tuple[int, int]] = set()
    broken_target: int | None = None
    for source, target in sub_solution:
        candidates = [
            key
            for key in origin
            if key[0] == source and key[1] == target
        ]
        key = min(candidates, key=lambda k: k[2])
        original = origin[key]
        result.add((original[0], original[1]))
        if target == supernode:
            broken_target = original[1]
    assert broken_target is not None
    for node in cycle:
        if node != broken_target:
            result.add((best_in[node][0], node))
    return result


def _find_cycle(
    best_in: dict[int, tuple[int, float]], root: int
) -> list[int] | None:
    color: dict[int, int] = {}
    for start in best_in:
        if color.get(start):
            continue
        path = []
        node = start
        while node != root and color.get(node) is None:
            color[node] = 1  # in progress
            path.append(node)
            node = best_in[node][0]
        if node != root and color.get(node) == 1:
            # Found a cycle; slice it from the path.
            cycle_start = path.index(node)
            for visited in path:
                color[visited] = 2
            return path[cycle_start:]
        for visited in path:
            color[visited] = 2
    return None


def _require_spanning(graph: StorageGraph, parent: dict[int, int]) -> None:
    missing = set(graph.vertices()) - set(parent)
    if missing:
        raise ValueError(
            f"graph is not spanning-connected; no path to {sorted(missing)[:5]}"
        )
