"""Solvers for the six storage-recreation problems of Table 7.1."""

from repro.storage.solvers.ilp import (
    ilp_min_storage_max_recreation,
    ilp_min_storage_sum_recreation,
)
from repro.storage.solvers.last import last_tree
from repro.storage.solvers.lmg import lmg_min_storage, lmg_min_sum_recreation
from repro.storage.solvers.mp import mp_min_max_recreation, mp_min_storage
from repro.storage.solvers.mst import minimum_arborescence, minimum_spanning_storage
from repro.storage.solvers.spt import shortest_path_tree

from repro.storage.graph import StorageGraph, StoragePlan


def solve(
    graph: StorageGraph,
    problem: int,
    threshold: float | None = None,
    alpha: float = 2.0,
) -> StoragePlan:
    """Dispatch a Table 7.1 problem to its solver.

    Args:
        graph: The expanded storage graph.
        problem: 1-6 per the paper's numbering.
        threshold: β (storage budget) for problems 3/4, θ (recreation
            budget) for problems 5/6. Unused for 1/2.
        alpha: LAST balance parameter, used only when the graph is
            symmetric and problem is 4 or 6.
    """
    if problem == 1:
        return minimum_spanning_storage(graph)
    if problem == 2:
        return shortest_path_tree(graph)
    if threshold is None:
        raise ValueError(f"problem {problem} needs a threshold")
    if problem == 3:
        return lmg_min_sum_recreation(graph, storage_budget=threshold)
    if problem == 4:
        if graph.symmetric:
            return _last_for_budget(graph, threshold, alpha)
        return mp_min_max_recreation(graph, storage_budget=threshold)
    if problem == 5:
        return lmg_min_storage(graph, sum_recreation_budget=threshold)
    if problem == 6:
        if graph.symmetric:
            plan = last_tree(graph, alpha)
            if plan.max_recreation(graph) <= threshold:
                return plan
        return mp_min_storage(graph, max_recreation_budget=threshold)
    raise ValueError(f"unknown problem {problem}")


def _last_for_budget(
    graph: StorageGraph, storage_budget: float, alpha: float
) -> StoragePlan:
    """Problem 4 via LAST: sweep α down until storage fits the budget,
    keeping the smallest max-recreation plan that fits."""
    best: StoragePlan | None = None
    best_max = float("inf")
    for candidate_alpha in (1.05, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0):
        plan = last_tree(graph, candidate_alpha)
        if plan.total_storage_cost(graph) > storage_budget:
            continue
        max_recreation = plan.max_recreation(graph)
        if max_recreation < best_max:
            best, best_max = plan, max_recreation
    if best is None:
        best = minimum_spanning_storage(graph)
    return best


__all__ = [
    "ilp_min_storage_max_recreation",
    "ilp_min_storage_sum_recreation",
    "last_tree",
    "lmg_min_storage",
    "lmg_min_sum_recreation",
    "minimum_arborescence",
    "minimum_spanning_storage",
    "mp_min_max_recreation",
    "mp_min_storage",
    "shortest_path_tree",
    "solve",
]
