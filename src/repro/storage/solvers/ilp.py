"""Exact ILP solutions via scipy's MILP solver (Section 7.2.3).

The formulation is Equation 7.1: binary x_uv per revealed edge, a
continuous recreation potential r_v per version, in-degree-one
constraints, and big-M linking constraints

    Φ_uv + r_u − r_v ≤ (1 − x_uv)·M

which double as cycle eliminators (any directed cycle of chosen edges
with positive Φ is infeasible). Intended for small instances and as the
optimality reference the heuristics are judged against in tests.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.storage.graph import ROOT, StorageGraph, StoragePlan

_EPSILON = 1e-6


def _solve(
    graph: StorageGraph,
    max_recreation: float | None,
    sum_recreation: float | None,
) -> StoragePlan:
    edges = sorted(graph.edges)
    num_edges = len(edges)
    versions = list(graph.vertices())
    num_versions = len(versions)
    version_index = {v: i for i, v in enumerate(versions)}

    # Variables: x_e (binary) for each edge, then r_v (continuous).
    num_vars = num_edges + num_versions
    cost = np.zeros(num_vars)
    for e, (source, target) in enumerate(edges):
        cost[e] = graph.edges[(source, target)][0]

    constraints: list[LinearConstraint] = []

    # In-degree exactly one per version.
    in_degree = np.zeros((num_versions, num_vars))
    for e, (_source, target) in enumerate(edges):
        in_degree[version_index[target], e] = 1.0
    constraints.append(LinearConstraint(in_degree, lb=1.0, ub=1.0))

    # Recreation bound used to size the big-M.
    if max_recreation is not None:
        r_cap = max_recreation
    elif sum_recreation is not None:
        r_cap = sum_recreation
    else:
        raise ValueError("one of the recreation bounds is required")
    big_m = 2.0 * r_cap + max(
        (phi for (_d, phi) in graph.edges.values()), default=1.0
    )

    # Linking: Φ_uv + r_u − r_v ≤ (1 − x_uv)·M   (r_0 ≡ 0).
    linking = np.zeros((num_edges, num_vars))
    upper = np.zeros(num_edges)
    for e, (source, target) in enumerate(edges):
        phi = max(graph.edges[(source, target)][1], _EPSILON)
        linking[e, e] = big_m
        if source != ROOT:
            linking[e, num_edges + version_index[source]] = 1.0
        linking[e, num_edges + version_index[target]] = -1.0
        upper[e] = big_m - phi
    constraints.append(
        LinearConstraint(linking, lb=-np.inf, ub=upper)
    )

    if sum_recreation is not None:
        row = np.zeros((1, num_vars))
        row[0, num_edges:] = 1.0
        constraints.append(
            LinearConstraint(row, lb=-np.inf, ub=sum_recreation)
        )

    lower = np.zeros(num_vars)
    upper_bounds = np.ones(num_vars)
    upper_bounds[num_edges:] = r_cap if max_recreation is not None else np.inf
    bounds = Bounds(lb=lower, ub=upper_bounds)
    integrality = np.zeros(num_vars)
    integrality[:num_edges] = 1.0

    result = milp(
        c=cost,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
    )
    if not result.success:
        raise ValueError(
            f"ILP infeasible or failed: {result.message}"
        )
    chosen = result.x[:num_edges] > 0.5
    parent: dict[int, int] = {}
    for e, (source, target) in enumerate(edges):
        if chosen[e]:
            parent[target] = source
    plan = StoragePlan(parent)
    plan.validate(graph)
    return plan


def ilp_min_storage_max_recreation(
    graph: StorageGraph, max_recreation_budget: float
) -> StoragePlan:
    """Problem 6 exactly: min C subject to max R_i ≤ θ."""
    return _solve(graph, max_recreation=max_recreation_budget, sum_recreation=None)


def ilp_min_storage_sum_recreation(
    graph: StorageGraph, sum_recreation_budget: float
) -> StoragePlan:
    """Problem 5 exactly: min C subject to Σ R_i ≤ θ."""
    return _solve(graph, max_recreation=None, sum_recreation=sum_recreation_budget)
