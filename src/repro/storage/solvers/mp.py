"""MP — the Modified Prim's heuristic (Problems 4 and 6).

Grow the storage tree from the dummy root, always attaching the cheapest
(by Δ) *feasible* edge, where edge (u, v) is feasible when the recreation
cost through it stays within the budget: r(u) + Φ_uv ≤ θ. Minimizes
storage under a max-recreation constraint (Problem 6); Problem 4 binary
searches θ for the tightest value whose MP tree fits the storage budget.
"""

from __future__ import annotations

import heapq

from repro.storage.graph import ROOT, StorageGraph, StoragePlan
from repro.storage.solvers.spt import shortest_path_distances


def mp_min_storage(
    graph: StorageGraph, max_recreation_budget: float
) -> StoragePlan:
    """Problem 6: minimize C subject to max R_i ≤ θ.

    Raises ValueError when θ is below some version's cheapest possible
    recreation cost (the instance is infeasible).
    """
    adjacency: dict[int, list[tuple[int, float, float]]] = {
        v: [] for v in range(0, graph.num_versions + 1)
    }
    for (source, target), (delta, phi) in graph.edges.items():
        adjacency[source].append((target, delta, phi))
        if graph.symmetric and source != ROOT:
            adjacency[target].append((source, delta, phi))

    parent: dict[int, int] = {}
    recreation: dict[int, float] = {ROOT: 0.0}
    attached = {ROOT}
    heap: list[tuple[float, float, int, int]] = []

    def push_edges(vertex: int) -> None:
        base = recreation[vertex]
        for target, delta, phi in adjacency[vertex]:
            if target in attached or target == ROOT:
                continue
            if base + phi <= max_recreation_budget:
                heapq.heappush(heap, (delta, base + phi, target, vertex))

    push_edges(ROOT)
    while heap and len(attached) <= graph.num_versions:
        delta, new_recreation, vertex, source = heapq.heappop(heap)
        if vertex in attached:
            continue
        # The source's recreation may have been fixed when this entry was
        # pushed; it never changes after attachment, so the entry is valid.
        attached.add(vertex)
        parent[vertex] = source
        recreation[vertex] = new_recreation
        push_edges(vertex)

    missing = set(graph.vertices()) - set(parent)
    if missing:
        # The storage-greedy growth can strand vertices whose only
        # feasible route needs an ancestor to take a lower-recreation
        # (more expensive) edge. Graft those vertices' shortest paths:
        # re-parenting a node onto its SPT parent only ever lowers
        # recreation costs, so it cannot break attached vertices.
        _graft_shortest_paths(
            graph, parent, missing, max_recreation_budget
        )
    return StoragePlan(parent)


def _graft_shortest_paths(
    graph: StorageGraph,
    parent: dict[int, int],
    missing: set[int],
    budget: float,
) -> None:
    from repro.storage.solvers.spt import shortest_path_tree

    spt = shortest_path_tree(graph)
    distances = spt.recreation_costs(graph)
    infeasible = [v for v in missing if distances[v] > budget]
    if infeasible:
        raise ValueError(
            f"recreation budget {budget} is infeasible for versions "
            f"{sorted(infeasible)[:5]}"
        )
    for vertex in sorted(missing, key=distances.__getitem__):
        # Re-parent the whole shortest path root -> vertex onto SPT
        # parents (top-down). Each node's recreation becomes its SPT
        # distance — the minimum possible — so no constraint can break.
        path = [vertex]
        current = vertex
        while spt.parent[current] != ROOT:
            current = spt.parent[current]
            path.append(current)
        for node in reversed(path):
            parent[node] = spt.parent[node]


def mp_min_max_recreation(
    graph: StorageGraph,
    storage_budget: float,
    iterations: int = 30,
) -> StoragePlan:
    """Problem 4: minimize max R_i subject to C ≤ β, via binary search
    over θ with MP as the feasibility oracle."""
    distances = shortest_path_distances(graph)
    low = max(distances.values())  # no plan can beat the SP distance
    high = sum(
        graph.recreation_weight(ROOT, v) for v in graph.vertices()
        if (ROOT, v) in graph.edges
    )
    high = max(high, low)

    best: StoragePlan | None = None
    # θ = low is always feasible for MP (the SPT respects it); check the
    # storage first.
    plan = mp_min_storage(graph, low)
    if plan.total_storage_cost(graph) <= storage_budget:
        return plan
    for _ in range(iterations):
        mid = (low + high) / 2
        try:
            plan = mp_min_storage(graph, mid)
        except ValueError:
            low = mid
            continue
        if plan.total_storage_cost(graph) <= storage_budget:
            best = plan
            high = mid
        else:
            low = mid
    if best is None:
        # Budget unreachable: fall back to the min-storage tree.
        from repro.storage.solvers.mst import minimum_spanning_storage

        best = minimum_spanning_storage(graph)
    return best
