"""LAST — balancing the MST against the shortest-path tree.

Khuller, Raghavachari and Young's LAST algorithm, applicable in the
undirected Φ = Δ scenario (Table 7.1, Problems 4 and 6): walk the MST in
DFS order keeping a running root distance; whenever a vertex's distance
exceeds α times its shortest-path distance, graft its shortest path into
the tree. The result satisfies

    R_v ≤ α · d_SP(v)            for every version v,
    C   ≤ (1 + 2/(α-1)) · C_MST.
"""

from __future__ import annotations

from repro.storage.graph import ROOT, StorageGraph, StoragePlan
from repro.storage.solvers.mst import minimum_spanning_storage
from repro.storage.solvers.spt import shortest_path_tree


def last_tree(graph: StorageGraph, alpha: float = 2.0) -> StoragePlan:
    """Build the LAST tree for balance parameter α > 1."""
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    if not graph.symmetric:
        raise ValueError("LAST applies to the undirected (Φ = Δ) scenario")

    mst = minimum_spanning_storage(graph)
    spt = shortest_path_tree(graph)
    sp_distance = spt.recreation_costs(graph)
    sp_parent = dict(spt.parent)

    # Child lists of the MST for the DFS.
    children: dict[int, list[int]] = {ROOT: []}
    for vertex in mst.parent:
        children.setdefault(vertex, [])
    for vertex, parent in mst.parent.items():
        children.setdefault(parent, []).append(vertex)

    distance: dict[int, float] = {ROOT: 0.0}
    parent: dict[int, int] = dict(mst.parent)

    def relax(u: int, v: int) -> None:
        weight = graph.recreation_weight(*_edge_key(graph, u, v))
        if distance.get(u, float("inf")) + weight < distance.get(
            v, float("inf")
        ):
            distance[v] = distance[u] + weight
            if v != ROOT:
                parent[v] = u

    def graft_shortest_path(v: int) -> None:
        """Relax edges along v's shortest path from the root."""
        path = [v]
        current = v
        while current != ROOT:
            current = sp_parent.get(current, ROOT)
            path.append(current)
        for u, w in zip(path[::-1], path[::-1][1:]):
            relax(u, w)

    # Iterative DFS over the MST.
    stack: list[tuple[int, int | None]] = [(ROOT, None)]
    visited: set[int] = set()
    while stack:
        vertex, via = stack.pop()
        if vertex in visited:
            continue
        visited.add(vertex)
        if via is not None:
            relax(via, vertex)
        if vertex != ROOT and distance.get(vertex, float("inf")) > (
            alpha * sp_distance[vertex]
        ):
            graft_shortest_path(vertex)
        for child in sorted(children.get(vertex, ()), reverse=True):
            stack.append((child, vertex))

    return StoragePlan(parent)


def _edge_key(graph: StorageGraph, u: int, v: int) -> tuple[int, int]:
    """Resolve the stored direction of a symmetric edge."""
    if (u, v) in graph.edges:
        return (u, v)
    if (v, u) in graph.edges:
        return (v, u)
    raise KeyError(f"no edge between {u} and {v}")
