"""Problem 2 — minimize every recreation cost: Dijkstra from the root.

The shortest-path tree over Φ weights simultaneously minimizes R_i for
every version (each version is recreated along its cheapest path), at the
price of the largest reasonable storage.
"""

from __future__ import annotations

import heapq

from repro.storage.graph import ROOT, StorageGraph, StoragePlan


def shortest_path_tree(graph: StorageGraph) -> StoragePlan:
    adjacency: dict[int, list[tuple[int, float]]] = {
        v: [] for v in range(0, graph.num_versions + 1)
    }
    for (source, target), (_delta, phi) in graph.edges.items():
        adjacency[source].append((target, phi))
        if graph.symmetric and source != ROOT:
            adjacency[target].append((source, phi))

    distance: dict[int, float] = {ROOT: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, ROOT, ROOT)]
    settled: set[int] = set()
    while heap:
        dist, vertex, via = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex != ROOT:
            parent[vertex] = via
        for neighbor, phi in adjacency[vertex]:
            if neighbor in settled or neighbor == ROOT:
                continue
            candidate = dist + phi
            if candidate < distance.get(neighbor, float("inf")):
                distance[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor, vertex))

    missing = set(graph.vertices()) - set(parent)
    if missing:
        raise ValueError(
            f"no path from root to versions {sorted(missing)[:5]}"
        )
    return StoragePlan(parent)


def shortest_path_distances(graph: StorageGraph) -> dict[int, float]:
    """d_SP(v) for every version (used by LAST and as lower bounds)."""
    plan = shortest_path_tree(graph)
    return plan.recreation_costs(graph)
