"""The ``orpheus`` command-line interface.

Git-style dataset version control over CSV files, mirroring the command
set of Section 3.3::

    orpheus init -d interaction -f data.csv -s schema.csv
    orpheus checkout -d interaction -v 1 -f working.csv
    orpheus commit -d interaction -f working.csv -m "cleaned nulls"
    orpheus log -d interaction
    orpheus diff -d interaction -a 1 -b 2
    orpheus ls
    orpheus drop -d interaction
    orpheus optimize -d interaction --gamma 2.0
    orpheus stats --json

State persists in ``.orpheus/state.pkl`` under the working directory, so
the in-memory engine behaves like a local repository between
invocations. Persistence is crash-safe and concurrency-safe
(:mod:`repro.resilience`): the state file is checksummed with rotating
backups, every invocation runs under an advisory repository lock
(exclusive for writers, shared for readers), mutating commands bracket
their work with write-ahead intent records, and torn operations from a
killed process are auto-recovered on the next invocation (or explicitly
via ``orpheus recover``).

Every command records telemetry (spans, counters, latency histograms);
the per-invocation snapshot accumulates in ``.orpheus/telemetry.json``
and ``orpheus stats`` renders the history. Pass ``--timings`` to any
command to print its span tree.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

from repro import telemetry
from repro.core.commands import Orpheus
from repro.core.csvio import read_csv, read_schema_file
from repro.observe.doctor import run_doctor
from repro.observe.explain import run_with_actuals
from repro.observe.journal import (
    MUTATING_COMMANDS,
    Journal,
    make_record,
    new_trace_id,
    verify_journal,
)
from repro.resilience import failpoints
from repro.resilience.intents import IntentLog, has_pending_intents
from repro.resilience.lock import RepositoryLock
from repro.resilience.recovery import run_recovery
from repro.resilience.statestore import StateStore
from repro.telemetry.snapshot import Snapshot

STATE_DIR = ".orpheus"
STATE_FILE = "state.pkl"
TELEMETRY_FILE = "telemetry.json"

#: Commands that rewrite ``state.pkl`` (superset of the journaled
#: MUTATING_COMMANDS: user management writes state but is not part of
#: the dataset history). These take the exclusive repository lock;
#: everything else reads under a shared lock.
STATE_WRITING_COMMANDS = MUTATING_COMMANDS | {"create_user", "config"}


def _telemetry_path(root: str | None = None) -> Path:
    return Path(root or ".") / STATE_DIR / TELEMETRY_FILE


def load_state(root: str | None = None) -> Orpheus:
    """Load the repository state via the transactional store.

    Corrupt generations fall back to backups with a warning on stderr;
    a missing file yields a fresh :class:`Orpheus`.
    """
    obj, _info = StateStore(root).load()
    return obj if obj is not None else Orpheus()


def save_state(orpheus: Orpheus, root: str | None = None) -> None:
    """Durably replace the state file (checksummed container, temp +
    fsync + rename + dir fsync, rotating ``.bak`` generations)."""
    StateStore(root).save(orpheus)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via a temp file in the same directory + ``os.replace`` so a
    crash mid-write can never leave a truncated file behind."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_telemetry(root: str | None = None) -> Snapshot:
    """The accumulated cross-invocation snapshot (empty when absent)."""
    path = _telemetry_path(root)
    if path.exists():
        try:
            return Snapshot.from_json(path.read_text())
        except (ValueError, KeyError):
            return Snapshot()  # corrupt history: start over
    return Snapshot()


def save_telemetry(snapshot: Snapshot, root: str | None = None) -> None:
    _atomic_write(
        _telemetry_path(root), snapshot.to_json(indent=None).encode()
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="orpheus",
        description="Dataset version control (OrpheusDB reproduction)",
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print this invocation's span tree to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="register a CSV as a new CVD")
    init.add_argument("-d", "--dataset", required=True)
    init.add_argument("-f", "--file", required=True)
    init.add_argument("-s", "--schema", required=True)
    init.add_argument("--model", default="split_by_rlist")

    checkout = sub.add_parser("checkout", help="materialize version(s) to CSV")
    checkout.add_argument("-d", "--dataset", required=True)
    checkout.add_argument(
        "-v", "--versions", required=True, nargs="+", type=int
    )
    checkout.add_argument("-f", "--file", required=True)
    checkout.add_argument("-s", "--schema", default=None)
    _add_explain(checkout)

    commit = sub.add_parser("commit", help="commit a checked-out CSV")
    commit.add_argument("-d", "--dataset", required=True)
    commit.add_argument("-f", "--file", required=True)
    commit.add_argument("-s", "--schema", default=None)
    commit.add_argument("-m", "--message", default="")
    _add_explain(commit)

    log = sub.add_parser("log", help="show the version graph")
    log.add_argument("-d", "--dataset", default=None)
    log.add_argument(
        "--ops",
        action="store_true",
        help="show the operation journal instead of the version graph",
    )
    log.add_argument(
        "--verify",
        action="store_true",
        help="with --ops: replay the journal against the version graph",
    )

    diff = sub.add_parser("diff", help="records in one version but not another")
    diff.add_argument("-d", "--dataset", required=True)
    diff.add_argument("-a", type=int, required=True)
    diff.add_argument("-b", type=int, required=True)
    _add_explain(diff)

    sub.add_parser("ls", help="list CVDs")

    drop = sub.add_parser("drop", help="drop a CVD")
    drop.add_argument("-d", "--dataset", required=True)

    optimize = sub.add_parser("optimize", help="run the partition optimizer")
    optimize.add_argument("-d", "--dataset", required=True)
    optimize.add_argument("--gamma", type=float, default=2.0)
    optimize.add_argument("--mu", type=float, default=1.5)

    user = sub.add_parser("create_user", help="register a user")
    user.add_argument("name")
    user.add_argument("--email", default="")

    config = sub.add_parser("config", help="log in as a user")
    config.add_argument("name")

    sub.add_parser("whoami", help="print the current user")

    doctor = sub.add_parser(
        "doctor", help="run storage-health probes against this repository"
    )
    doctor.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    recover = sub.add_parser(
        "recover",
        help="detect and repair operations torn by a crash",
    )
    recover.add_argument(
        "--dry-run",
        action="store_true",
        help="report what recovery would do without changing anything",
    )

    profile = sub.add_parser(
        "profile",
        help="run any orpheus command with resource profiling and "
        "print its span-tree profile",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="number of hot spans in the self-time table (default 15)",
    )
    profile.add_argument(
        "--collapsed",
        action="store_true",
        help="emit folded stacks (flamegraph.pl / speedscope format) "
        "instead of the tree",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the profiled tree and hot-span table as JSON",
    )
    profile.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the orpheus command to profile, e.g. "
        "`orpheus profile checkout -d data -v 3 -f out.csv`",
    )

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark suite (same flags as "
        "`python -m benchmarks`)",
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--filter", default=None, metavar="SUBSTR")
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--list", action="store_true")
    bench.add_argument("--json", action="store_true")
    bench.add_argument("--no-write", action="store_true")
    bench.add_argument("--check", action="store_true")
    bench.add_argument("--warn-only", action="store_true")
    bench.add_argument("--update-baseline", action="store_true")
    bench.add_argument("--baseline", default=None)

    stats = sub.add_parser(
        "stats", help="show accumulated telemetry for this repository"
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text exposition format",
    )
    stats.add_argument(
        "--reset", action="store_true", help="clear the recorded telemetry"
    )
    return parser


def _add_explain(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--explain",
        nargs="?",
        const="plan",
        choices=("plan", "analyze"),
        default=None,
        help="print the plan tree; 'analyze' also executes and attaches "
        "actual rows and per-node timings",
    )
    subparser.add_argument(
        "--json",
        action="store_true",
        help="with --explain: emit the plan tree as JSON",
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "stats":
        # Readers share the lock; --reset rewrites the accumulator and
        # must serialize against invocations folding their snapshots in.
        with RepositoryLock(
            args.root, shared=not args.reset, command="stats"
        ):
            return _run_stats(args)

    # Each invocation records its own telemetry from a clean registry,
    # then folds the snapshot into .orpheus/telemetry.json so metrics
    # accumulate across processes — failures included, tagged under
    # `commands.failed` with the span's error status keeping the latency
    # histograms clean. The enabled flag is restored so embedding
    # programs that keep telemetry off stay unaffected.
    was_enabled = telemetry.is_enabled()
    telemetry.reset()
    telemetry.enable()
    trace_id = new_trace_id()
    # `--explain` without execution neither mutates state nor journals.
    plan_only = getattr(args, "explain", None) == "plan"
    mutating = args.command in MUTATING_COMMANDS and not plan_only
    writes = (
        args.command in STATE_WRITING_COMMANDS and not plan_only
    ) or args.command == "recover"
    record = make_record(trace_id, args.command) if mutating else None
    code = 0
    try:
        try:
            if args.command != "recover":
                _auto_recover(args.root)
            with RepositoryLock(
                args.root, shared=not writes, command=args.command
            ):
                code = _locked_invocation(args, record, trace_id, mutating)
        except Exception as error:  # CLI boundary: print, don't traceback
            sys.stderr.write(f"error: {error}\n")
            code = 1
    finally:
        if not was_enabled:
            telemetry.disable()
    return code


def _auto_recover(root: str | None) -> None:
    """Repair torn operations left by a crashed process before running
    the requested command.

    The pending check is lock-free (a begin record from a *live*
    in-flight process looks pending too), so the recovery pass
    re-derives the pending set under the exclusive lock — once the
    other process finishes, there is nothing to do.
    """
    if not has_pending_intents(root):
        return
    with RepositoryLock(root, shared=False, command="auto-recover"):
        report = run_recovery(root, dry_run=False)
    if report.actions:
        sys.stderr.write(
            f"warning: recovered {len(report.actions)} interrupted "
            f"action(s) from a previous crash; see `orpheus log --ops` "
            f"or run `orpheus recover --dry-run` for details\n"
        )
    for problem in report.problems:
        sys.stderr.write(f"warning: recovery incomplete: {problem}\n")


def _locked_invocation(
    args: argparse.Namespace, record, trace_id: str, mutating: bool
) -> int:
    """One command executed under the repository lock: intent begin,
    dispatch, journal, intent done, telemetry fold — in that order, so
    a crash at any point is classifiable by recovery."""
    intents = IntentLog(args.root)
    if mutating:
        intents.begin(
            trace_id,
            args.command,
            dataset=getattr(args, "dataset", None),
            file=getattr(args, "file", None),
            versions=getattr(args, "versions", None),
        )
    code = 0
    try:
        with telemetry.span(f"cli.{args.command}") as root:
            if root is not None:
                root.set_attr("trace_id", trace_id)
            code = _dispatch(args, record)
    except Exception as error:  # CLI boundary: print, don't traceback
        sys.stderr.write(f"error: {error}\n")
        kind = type(error).__name__
        telemetry.count("commands.failed")
        telemetry.count(f"commands.failed.{kind}")
        if record is not None:
            record.status = "error"
            record.error_type = kind
            record.error_message = str(error)
        code = 1
    tree = telemetry.last_span_tree()
    if record is not None:
        if tree is not None:
            record.duration_s = tree.duration_s
        Journal(args.root).append(record)
    if mutating:
        intents.done(trace_id, status=record.status if record else "ok")
    failpoints.fire("telemetry.before_save")
    save_telemetry(
        load_telemetry(args.root).merged(telemetry.snapshot()),
        args.root,
    )
    if args.timings and tree is not None:
        sys.stderr.write(tree.render() + "\n")
    return code


def _render_plan(plan, args) -> str:
    return (plan.to_json() if args.json else plan.render()) + "\n"


def _dispatch(args: argparse.Namespace, record=None) -> int:
    """Execute one parsed command; raises on failure (the boundary in
    :func:`main` turns exceptions into exit code 1, telemetry, and the
    journal record). ``record`` is the journal entry to fill in for
    mutating commands (None for read-only or plan-only invocations)."""
    out = sys.stdout
    if args.command == "recover":
        # Recovery manages its own files and must run even when the
        # state is too corrupt for load_state.
        report = run_recovery(args.root, dry_run=args.dry_run)
        out.write(report.render_text())
        return 0 if report.clean else 1
    orpheus = load_state(args.root)
    if record is not None:
        record.user = orpheus.access.current_user or ""
        record.dataset = getattr(args, "dataset", None)

    if args.command == "init":
        vid = orpheus.init_from_csv(
            args.dataset, args.file, args.schema, model=args.model
        )
        if record is not None:
            record.output_version = vid
            record.rows = orpheus.cvd(args.dataset).versions.get(
                vid
            ).record_count
        out.write(f"initialized CVD {args.dataset!r} at version {vid}\n")
    elif args.command == "checkout":
        if record is not None:
            record.input_versions = list(args.versions)
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_checkout(args.versions)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.checkout_csv(
            args.dataset, args.versions, args.file, args.schema
        )
        result = run_with_actuals(plan, do) if plan is not None else do()
        if record is not None:
            record.rows = len(result.rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(
            f"checked out version(s) {args.versions} of "
            f"{args.dataset!r} into {args.file} "
            f"({len(result.rows)} records)\n"
        )
    elif args.command == "commit":
        cvd = orpheus.cvd(args.dataset)
        schema = (
            read_schema_file(args.schema) if args.schema else cvd.schema
        )
        rows = read_csv(args.file, schema)
        info = orpheus.staging._staged.get(args.file)
        parents = info.parents if info is not None else ()
        plan = None
        if args.explain:
            plan = cvd.explain_commit(len(rows), parents)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        try:
            telemetry.count(
                "command.commit.bytes_staged", os.path.getsize(args.file)
            )
        except OSError:
            pass

        def do_commit():
            vid = cvd.commit(
                rows,
                parents=parents,
                message=args.message,
                author=orpheus.access.current_user or "",
                columns=schema.column_names,
                column_types={c.name: c.dtype for c in schema.columns},
            )
            orpheus.staging._staged.pop(args.file, None)
            return vid

        vid = (
            run_with_actuals(plan, do_commit)
            if plan is not None
            else do_commit()
        )
        if record is not None:
            record.input_versions = list(parents)
            record.output_version = vid
            record.rows = len(rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"committed version {vid} to {args.dataset!r}\n")
    elif args.command == "log":
        if args.ops:
            journal = Journal(args.root)
            records = journal.read()
            out.write(journal.render_text(records))
            if args.verify:
                divergences = verify_journal(orpheus, records)
                if divergences:
                    for line in divergences:
                        out.write(f"DIVERGED: {line}\n")
                    return 1
                out.write("journal and version graph agree\n")
            return 0
        if args.dataset is None:
            raise ValueError("log requires -d/--dataset (or --ops)")
        cvd = orpheus.cvd(args.dataset)
        for vid in cvd.versions.vids():
            metadata = cvd.versions.get(vid)
            parents = ",".join(map(str, metadata.parents)) or "-"
            out.write(
                f"v{vid}  parents=[{parents}]  "
                f"records={metadata.record_count}  "
                f"author={metadata.author or '-'}  "
                f"{metadata.message}\n"
            )
    elif args.command == "diff":
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_diff(args.a, args.b)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.diff(args.dataset, args.a, args.b)
        only_a, only_b = run_with_actuals(plan, do) if plan is not None else do()
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"records only in v{args.a}: {len(only_a)}\n")
        for row in only_a[:20]:
            out.write(f"  + {row}\n")
        out.write(f"records only in v{args.b}: {len(only_b)}\n")
        for row in only_b[:20]:
            out.write(f"  - {row}\n")
    elif args.command == "ls":
        for name in orpheus.ls():
            cvd = orpheus.cvd(name)
            out.write(
                f"{name}  versions={cvd.num_versions}  "
                f"records={cvd.num_records}\n"
            )
    elif args.command == "drop":
        orpheus.drop(args.dataset)
        out.write(f"dropped {args.dataset!r}\n")
    elif args.command == "optimize":
        partitioning = orpheus.optimize(
            args.dataset,
            storage_threshold_factor=args.gamma,
            tolerance=args.mu,
        )
        out.write(
            f"repartitioned {args.dataset!r} into "
            f"{partitioning.num_partitions} partitions\n"
        )
    elif args.command == "doctor":
        report = run_doctor(orpheus, args.root)
        out.write(report.to_json() + "\n" if args.json else report.render_text())
        return report.exit_code
    elif args.command == "create_user":
        orpheus.create_user(args.name, args.email)
        out.write(f"created user {args.name!r}\n")
    elif args.command == "config":
        orpheus.config(args.name)
        out.write(f"logged in as {args.name!r}\n")
    elif args.command == "whoami":
        out.write(orpheus.whoami() + "\n")

    # Readers hold only the shared lock and must not rewrite state.
    if args.command in STATE_WRITING_COMMANDS:
        save_state(orpheus, args.root)
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """``orpheus profile <command...>``: run the command with resource
    profiling enabled and render its span tree (self/total time, CPU,
    peak memory)."""
    from repro.observe.profile import (
        collapsed_stacks,
        profile_to_json,
        render_report,
    )

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        sys.stderr.write("error: profile needs a command to run\n")
        return 2
    if cmd[0] in ("profile", "bench"):
        sys.stderr.write(f"error: cannot profile {cmd[0]!r}\n")
        return 2
    inner = (["--root", args.root] if args.root else []) + cmd
    was_profiling = telemetry.is_profiling()
    telemetry.enable_profiling()
    try:
        code = main(inner)
    finally:
        if not was_profiling:
            telemetry.disable_profiling()
    tree = telemetry.last_span_tree()
    if tree is None:
        sys.stderr.write(
            "profile: the command recorded no span tree (nothing to show)\n"
        )
        return code if code != 0 else 1
    if args.collapsed:
        sys.stdout.write(collapsed_stacks(tree))
    elif args.json:
        sys.stdout.write(profile_to_json(tree, args.top) + "\n")
    else:
        sys.stdout.write(render_report(tree, args.top))
    return code


def _run_bench(args: argparse.Namespace) -> int:
    """``orpheus bench ...``: forward to the unified benchmark runner
    (``python -m benchmarks``), which must be importable — i.e. run
    from a checkout of the repository."""
    try:
        from benchmarks.runner import main as bench_main
    except ImportError:
        sys.stderr.write(
            "error: the benchmark suite is not importable; run from the "
            "repository root (or `python -m benchmarks` with the repo "
            "on sys.path)\n"
        )
        return 2
    bench_args: list[str] = []
    for flag in (
        "quick", "list", "json", "no_write", "check", "warn_only",
        "update_baseline",
    ):
        if getattr(args, flag):
            bench_args.append("--" + flag.replace("_", "-"))
    if args.filter is not None:
        bench_args += ["--filter", args.filter]
    if args.repeats is not None:
        bench_args += ["--repeats", str(args.repeats)]
    if args.baseline is not None:
        bench_args += ["--baseline", args.baseline]
    return bench_main(bench_args)


def _run_stats(args: argparse.Namespace) -> int:
    """``orpheus stats``: render the accumulated telemetry history."""
    if args.reset:
        # Leave an empty-but-valid snapshot behind rather than deleting:
        # scrapers and `stats --json` consumers keep a parseable file.
        save_telemetry(Snapshot(), args.root)
        sys.stdout.write("telemetry reset\n")
        return 0
    snapshot = load_telemetry(args.root)
    if args.json:
        sys.stdout.write(snapshot.to_json() + "\n")
    elif args.prometheus:
        sys.stdout.write(snapshot.render_prometheus())
    else:
        sys.stdout.write(snapshot.render_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
