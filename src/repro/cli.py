"""The ``orpheus`` command-line interface.

Git-style dataset version control over CSV files, mirroring the command
set of Section 3.3::

    orpheus init -d interaction -f data.csv -s schema.csv
    orpheus checkout -d interaction -v 1 -f working.csv
    orpheus commit -d interaction -f working.csv -m "cleaned nulls"
    orpheus log -d interaction
    orpheus diff -d interaction -a 1 -b 2
    orpheus ls
    orpheus drop -d interaction
    orpheus optimize -d interaction --gamma 2.0

State persists in ``.orpheus/state.pkl`` under the working directory, so
the in-memory engine behaves like a local repository between
invocations.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

from repro.core.commands import Orpheus
from repro.core.csvio import read_csv, read_schema_file, write_csv, write_schema_file

STATE_DIR = ".orpheus"
STATE_FILE = "state.pkl"


def _state_path(root: str | None = None) -> Path:
    return Path(root or ".") / STATE_DIR / STATE_FILE


def load_state(root: str | None = None) -> Orpheus:
    path = _state_path(root)
    if path.exists():
        with open(path, "rb") as handle:
            return pickle.load(handle)
    return Orpheus()


def save_state(orpheus: Orpheus, root: str | None = None) -> None:
    path = _state_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(orpheus, handle)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="orpheus",
        description="Dataset version control (OrpheusDB reproduction)",
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: cwd)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="register a CSV as a new CVD")
    init.add_argument("-d", "--dataset", required=True)
    init.add_argument("-f", "--file", required=True)
    init.add_argument("-s", "--schema", required=True)
    init.add_argument("--model", default="split_by_rlist")

    checkout = sub.add_parser("checkout", help="materialize version(s) to CSV")
    checkout.add_argument("-d", "--dataset", required=True)
    checkout.add_argument(
        "-v", "--versions", required=True, nargs="+", type=int
    )
    checkout.add_argument("-f", "--file", required=True)
    checkout.add_argument("-s", "--schema", default=None)

    commit = sub.add_parser("commit", help="commit a checked-out CSV")
    commit.add_argument("-d", "--dataset", required=True)
    commit.add_argument("-f", "--file", required=True)
    commit.add_argument("-s", "--schema", default=None)
    commit.add_argument("-m", "--message", default="")

    log = sub.add_parser("log", help="show the version graph")
    log.add_argument("-d", "--dataset", required=True)

    diff = sub.add_parser("diff", help="records in one version but not another")
    diff.add_argument("-d", "--dataset", required=True)
    diff.add_argument("-a", type=int, required=True)
    diff.add_argument("-b", type=int, required=True)

    sub.add_parser("ls", help="list CVDs")

    drop = sub.add_parser("drop", help="drop a CVD")
    drop.add_argument("-d", "--dataset", required=True)

    optimize = sub.add_parser("optimize", help="run the partition optimizer")
    optimize.add_argument("-d", "--dataset", required=True)
    optimize.add_argument("--gamma", type=float, default=2.0)
    optimize.add_argument("--mu", type=float, default=1.5)

    user = sub.add_parser("create_user", help="register a user")
    user.add_argument("name")
    user.add_argument("--email", default="")

    config = sub.add_parser("config", help="log in as a user")
    config.add_argument("name")

    sub.add_parser("whoami", help="print the current user")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    orpheus = load_state(args.root)
    out = sys.stdout

    try:
        if args.command == "init":
            vid = orpheus.init_from_csv(
                args.dataset, args.file, args.schema, model=args.model
            )
            out.write(f"initialized CVD {args.dataset!r} at version {vid}\n")
        elif args.command == "checkout":
            cvd = orpheus.cvd(args.dataset)
            result = cvd.checkout(args.versions)
            write_csv(args.file, result.columns, result.rows)
            if args.schema:
                write_schema_file(args.schema, cvd.schema)
            orpheus.staging._staged[args.file] = _staged_csv(
                args.file, args.dataset, result.parents, orpheus
            )
            out.write(
                f"checked out version(s) {args.versions} of "
                f"{args.dataset!r} into {args.file} "
                f"({len(result.rows)} records)\n"
            )
        elif args.command == "commit":
            cvd = orpheus.cvd(args.dataset)
            schema = (
                read_schema_file(args.schema) if args.schema else cvd.schema
            )
            rows = read_csv(args.file, schema)
            info = orpheus.staging._staged.get(args.file)
            parents = info.parents if info is not None else ()
            vid = cvd.commit(
                rows,
                parents=parents,
                message=args.message,
                author=orpheus.access.current_user or "",
                columns=schema.column_names,
                column_types={c.name: c.dtype for c in schema.columns},
            )
            orpheus.staging._staged.pop(args.file, None)
            out.write(f"committed version {vid} to {args.dataset!r}\n")
        elif args.command == "log":
            cvd = orpheus.cvd(args.dataset)
            for vid in cvd.versions.vids():
                metadata = cvd.versions.get(vid)
                parents = ",".join(map(str, metadata.parents)) or "-"
                out.write(
                    f"v{vid}  parents=[{parents}]  "
                    f"records={metadata.record_count}  "
                    f"author={metadata.author or '-'}  "
                    f"{metadata.message}\n"
                )
        elif args.command == "diff":
            only_a, only_b = orpheus.diff(args.dataset, args.a, args.b)
            out.write(f"records only in v{args.a}: {len(only_a)}\n")
            for row in only_a[:20]:
                out.write(f"  + {row}\n")
            out.write(f"records only in v{args.b}: {len(only_b)}\n")
            for row in only_b[:20]:
                out.write(f"  - {row}\n")
        elif args.command == "ls":
            for name in orpheus.ls():
                cvd = orpheus.cvd(name)
                out.write(
                    f"{name}  versions={cvd.num_versions}  "
                    f"records={cvd.num_records}\n"
                )
        elif args.command == "drop":
            orpheus.drop(args.dataset)
            out.write(f"dropped {args.dataset!r}\n")
        elif args.command == "optimize":
            partitioning = orpheus.optimize(
                args.dataset,
                storage_threshold_factor=args.gamma,
                tolerance=args.mu,
            )
            out.write(
                f"repartitioned {args.dataset!r} into "
                f"{partitioning.num_partitions} partitions\n"
            )
        elif args.command == "create_user":
            orpheus.create_user(args.name, args.email)
            out.write(f"created user {args.name!r}\n")
        elif args.command == "config":
            orpheus.config(args.name)
            out.write(f"logged in as {args.name!r}\n")
        elif args.command == "whoami":
            out.write(orpheus.whoami() + "\n")
    except Exception as error:  # CLI boundary: print, don't traceback
        sys.stderr.write(f"error: {error}\n")
        return 1

    save_state(orpheus, args.root)
    return 0


def _staged_csv(path: str, dataset: str, parents, orpheus: Orpheus):
    from repro.core.staging import StagedTable

    return StagedTable(
        table_name=path,
        cvd_name=dataset,
        parents=parents,
        owner=orpheus.access.current_user or "",
    )


if __name__ == "__main__":
    raise SystemExit(main())
