"""The ``orpheus`` command-line interface.

Git-style dataset version control over CSV files, mirroring the command
set of Section 3.3::

    orpheus init -d interaction -f data.csv -s schema.csv
    orpheus checkout -d interaction -v 1 -f working.csv
    orpheus commit -d interaction -f working.csv -m "cleaned nulls"
    orpheus log -d interaction
    orpheus diff -d interaction -a 1 -b 2
    orpheus ls
    orpheus drop -d interaction
    orpheus optimize -d interaction --gamma 2.0
    orpheus stats --json

State persists in ``.orpheus/state.pkl`` under the working directory, so
the in-memory engine behaves like a local repository between
invocations. Every command records telemetry (spans, counters,
latency histograms); the per-invocation snapshot accumulates in
``.orpheus/telemetry.json`` and ``orpheus stats`` renders the history.
Pass ``--timings`` to any command to print its span tree.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import tempfile
from pathlib import Path

from repro import telemetry
from repro.core.commands import Orpheus
from repro.core.csvio import read_csv, read_schema_file
from repro.observe.doctor import run_doctor
from repro.observe.explain import run_with_actuals
from repro.observe.journal import (
    MUTATING_COMMANDS,
    Journal,
    make_record,
    new_trace_id,
    verify_journal,
)
from repro.telemetry.snapshot import Snapshot

STATE_DIR = ".orpheus"
STATE_FILE = "state.pkl"
TELEMETRY_FILE = "telemetry.json"


def _state_path(root: str | None = None) -> Path:
    return Path(root or ".") / STATE_DIR / STATE_FILE


def _telemetry_path(root: str | None = None) -> Path:
    return Path(root or ".") / STATE_DIR / TELEMETRY_FILE


def load_state(root: str | None = None) -> Orpheus:
    path = _state_path(root)
    if path.exists():
        with open(path, "rb") as handle:
            return pickle.load(handle)
    return Orpheus()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via a temp file in the same directory + ``os.replace`` so a
    crash mid-write can never leave a truncated file behind."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_state(orpheus: Orpheus, root: str | None = None) -> None:
    _atomic_write(_state_path(root), pickle.dumps(orpheus))


def load_telemetry(root: str | None = None) -> Snapshot:
    """The accumulated cross-invocation snapshot (empty when absent)."""
    path = _telemetry_path(root)
    if path.exists():
        try:
            return Snapshot.from_json(path.read_text())
        except (ValueError, KeyError):
            return Snapshot()  # corrupt history: start over
    return Snapshot()


def save_telemetry(snapshot: Snapshot, root: str | None = None) -> None:
    _atomic_write(
        _telemetry_path(root), snapshot.to_json(indent=None).encode()
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="orpheus",
        description="Dataset version control (OrpheusDB reproduction)",
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print this invocation's span tree to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="register a CSV as a new CVD")
    init.add_argument("-d", "--dataset", required=True)
    init.add_argument("-f", "--file", required=True)
    init.add_argument("-s", "--schema", required=True)
    init.add_argument("--model", default="split_by_rlist")

    checkout = sub.add_parser("checkout", help="materialize version(s) to CSV")
    checkout.add_argument("-d", "--dataset", required=True)
    checkout.add_argument(
        "-v", "--versions", required=True, nargs="+", type=int
    )
    checkout.add_argument("-f", "--file", required=True)
    checkout.add_argument("-s", "--schema", default=None)
    _add_explain(checkout)

    commit = sub.add_parser("commit", help="commit a checked-out CSV")
    commit.add_argument("-d", "--dataset", required=True)
    commit.add_argument("-f", "--file", required=True)
    commit.add_argument("-s", "--schema", default=None)
    commit.add_argument("-m", "--message", default="")
    _add_explain(commit)

    log = sub.add_parser("log", help="show the version graph")
    log.add_argument("-d", "--dataset", default=None)
    log.add_argument(
        "--ops",
        action="store_true",
        help="show the operation journal instead of the version graph",
    )
    log.add_argument(
        "--verify",
        action="store_true",
        help="with --ops: replay the journal against the version graph",
    )

    diff = sub.add_parser("diff", help="records in one version but not another")
    diff.add_argument("-d", "--dataset", required=True)
    diff.add_argument("-a", type=int, required=True)
    diff.add_argument("-b", type=int, required=True)
    _add_explain(diff)

    sub.add_parser("ls", help="list CVDs")

    drop = sub.add_parser("drop", help="drop a CVD")
    drop.add_argument("-d", "--dataset", required=True)

    optimize = sub.add_parser("optimize", help="run the partition optimizer")
    optimize.add_argument("-d", "--dataset", required=True)
    optimize.add_argument("--gamma", type=float, default=2.0)
    optimize.add_argument("--mu", type=float, default=1.5)

    user = sub.add_parser("create_user", help="register a user")
    user.add_argument("name")
    user.add_argument("--email", default="")

    config = sub.add_parser("config", help="log in as a user")
    config.add_argument("name")

    sub.add_parser("whoami", help="print the current user")

    doctor = sub.add_parser(
        "doctor", help="run storage-health probes against this repository"
    )
    doctor.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    stats = sub.add_parser(
        "stats", help="show accumulated telemetry for this repository"
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text exposition format",
    )
    stats.add_argument(
        "--reset", action="store_true", help="clear the recorded telemetry"
    )
    return parser


def _add_explain(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--explain",
        nargs="?",
        const="plan",
        choices=("plan", "analyze"),
        default=None,
        help="print the plan tree; 'analyze' also executes and attaches "
        "actual rows and per-node timings",
    )
    subparser.add_argument(
        "--json",
        action="store_true",
        help="with --explain: emit the plan tree as JSON",
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "stats":
        return _run_stats(args)

    # Each invocation records its own telemetry from a clean registry,
    # then folds the snapshot into .orpheus/telemetry.json so metrics
    # accumulate across processes — failures included, tagged under
    # `commands.failed` with the span's error status keeping the latency
    # histograms clean. The enabled flag is restored so embedding
    # programs that keep telemetry off stay unaffected.
    was_enabled = telemetry.is_enabled()
    telemetry.reset()
    telemetry.enable()
    trace_id = new_trace_id()
    # `--explain` without execution neither mutates state nor journals.
    plan_only = getattr(args, "explain", None) == "plan"
    record = None
    if args.command in MUTATING_COMMANDS and not plan_only:
        record = make_record(trace_id, args.command)
    code = 0
    try:
        try:
            with telemetry.span(f"cli.{args.command}") as root:
                if root is not None:
                    root.set_attr("trace_id", trace_id)
                code = _dispatch(args, record)
        except Exception as error:  # CLI boundary: print, don't traceback
            sys.stderr.write(f"error: {error}\n")
            kind = type(error).__name__
            telemetry.count("commands.failed")
            telemetry.count(f"commands.failed.{kind}")
            if record is not None:
                record.status = "error"
                record.error_type = kind
                record.error_message = str(error)
            code = 1
        tree = telemetry.last_span_tree()
        if record is not None:
            if tree is not None:
                record.duration_s = tree.duration_s
            Journal(args.root).append(record)
        save_telemetry(
            load_telemetry(args.root).merged(telemetry.snapshot()),
            args.root,
        )
        if args.timings and tree is not None:
            sys.stderr.write(tree.render() + "\n")
    finally:
        if not was_enabled:
            telemetry.disable()
    return code


def _render_plan(plan, args) -> str:
    return (plan.to_json() if args.json else plan.render()) + "\n"


def _dispatch(args: argparse.Namespace, record=None) -> int:
    """Execute one parsed command; raises on failure (the boundary in
    :func:`main` turns exceptions into exit code 1, telemetry, and the
    journal record). ``record`` is the journal entry to fill in for
    mutating commands (None for read-only or plan-only invocations)."""
    orpheus = load_state(args.root)
    out = sys.stdout
    if record is not None:
        record.user = orpheus.access.current_user or ""
        record.dataset = getattr(args, "dataset", None)

    if args.command == "init":
        vid = orpheus.init_from_csv(
            args.dataset, args.file, args.schema, model=args.model
        )
        if record is not None:
            record.output_version = vid
            record.rows = orpheus.cvd(args.dataset).versions.get(
                vid
            ).record_count
        out.write(f"initialized CVD {args.dataset!r} at version {vid}\n")
    elif args.command == "checkout":
        if record is not None:
            record.input_versions = list(args.versions)
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_checkout(args.versions)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.checkout_csv(
            args.dataset, args.versions, args.file, args.schema
        )
        result = run_with_actuals(plan, do) if plan is not None else do()
        if record is not None:
            record.rows = len(result.rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(
            f"checked out version(s) {args.versions} of "
            f"{args.dataset!r} into {args.file} "
            f"({len(result.rows)} records)\n"
        )
    elif args.command == "commit":
        cvd = orpheus.cvd(args.dataset)
        schema = (
            read_schema_file(args.schema) if args.schema else cvd.schema
        )
        rows = read_csv(args.file, schema)
        info = orpheus.staging._staged.get(args.file)
        parents = info.parents if info is not None else ()
        plan = None
        if args.explain:
            plan = cvd.explain_commit(len(rows), parents)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        try:
            telemetry.count(
                "command.commit.bytes_staged", os.path.getsize(args.file)
            )
        except OSError:
            pass

        def do_commit():
            vid = cvd.commit(
                rows,
                parents=parents,
                message=args.message,
                author=orpheus.access.current_user or "",
                columns=schema.column_names,
                column_types={c.name: c.dtype for c in schema.columns},
            )
            orpheus.staging._staged.pop(args.file, None)
            return vid

        vid = (
            run_with_actuals(plan, do_commit)
            if plan is not None
            else do_commit()
        )
        if record is not None:
            record.input_versions = list(parents)
            record.output_version = vid
            record.rows = len(rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"committed version {vid} to {args.dataset!r}\n")
    elif args.command == "log":
        if args.ops:
            journal = Journal(args.root)
            records = journal.read()
            out.write(journal.render_text(records))
            if args.verify:
                divergences = verify_journal(orpheus, records)
                if divergences:
                    for line in divergences:
                        out.write(f"DIVERGED: {line}\n")
                    return 1
                out.write("journal and version graph agree\n")
            return 0
        if args.dataset is None:
            raise ValueError("log requires -d/--dataset (or --ops)")
        cvd = orpheus.cvd(args.dataset)
        for vid in cvd.versions.vids():
            metadata = cvd.versions.get(vid)
            parents = ",".join(map(str, metadata.parents)) or "-"
            out.write(
                f"v{vid}  parents=[{parents}]  "
                f"records={metadata.record_count}  "
                f"author={metadata.author or '-'}  "
                f"{metadata.message}\n"
            )
    elif args.command == "diff":
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_diff(args.a, args.b)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.diff(args.dataset, args.a, args.b)
        only_a, only_b = run_with_actuals(plan, do) if plan is not None else do()
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"records only in v{args.a}: {len(only_a)}\n")
        for row in only_a[:20]:
            out.write(f"  + {row}\n")
        out.write(f"records only in v{args.b}: {len(only_b)}\n")
        for row in only_b[:20]:
            out.write(f"  - {row}\n")
    elif args.command == "ls":
        for name in orpheus.ls():
            cvd = orpheus.cvd(name)
            out.write(
                f"{name}  versions={cvd.num_versions}  "
                f"records={cvd.num_records}\n"
            )
    elif args.command == "drop":
        orpheus.drop(args.dataset)
        out.write(f"dropped {args.dataset!r}\n")
    elif args.command == "optimize":
        partitioning = orpheus.optimize(
            args.dataset,
            storage_threshold_factor=args.gamma,
            tolerance=args.mu,
        )
        out.write(
            f"repartitioned {args.dataset!r} into "
            f"{partitioning.num_partitions} partitions\n"
        )
    elif args.command == "doctor":
        report = run_doctor(orpheus, args.root)
        out.write(report.to_json() + "\n" if args.json else report.render_text())
        return report.exit_code
    elif args.command == "create_user":
        orpheus.create_user(args.name, args.email)
        out.write(f"created user {args.name!r}\n")
    elif args.command == "config":
        orpheus.config(args.name)
        out.write(f"logged in as {args.name!r}\n")
    elif args.command == "whoami":
        out.write(orpheus.whoami() + "\n")

    save_state(orpheus, args.root)
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """``orpheus stats``: render the accumulated telemetry history."""
    if args.reset:
        # Leave an empty-but-valid snapshot behind rather than deleting:
        # scrapers and `stats --json` consumers keep a parseable file.
        save_telemetry(Snapshot(), args.root)
        sys.stdout.write("telemetry reset\n")
        return 0
    snapshot = load_telemetry(args.root)
    if args.json:
        sys.stdout.write(snapshot.to_json() + "\n")
    elif args.prometheus:
        sys.stdout.write(snapshot.render_prometheus())
    else:
        sys.stdout.write(snapshot.render_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
