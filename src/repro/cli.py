"""The ``orpheus`` command-line interface.

Git-style dataset version control over CSV files, mirroring the command
set of Section 3.3::

    orpheus init -d interaction -f data.csv -s schema.csv
    orpheus checkout -d interaction -v 1 -f working.csv
    orpheus commit -d interaction -f working.csv -m "cleaned nulls"
    orpheus log -d interaction
    orpheus diff -d interaction -a 1 -b 2
    orpheus ls
    orpheus drop -d interaction
    orpheus optimize -d interaction --gamma 2.0
    orpheus stats --json

State persists in ``.orpheus/state.pkl`` under the working directory, so
the in-memory engine behaves like a local repository between
invocations. Persistence is crash-safe and concurrency-safe
(:mod:`repro.resilience`): the state file is checksummed with rotating
backups, every invocation runs under an advisory repository lock
(exclusive for writers, shared for readers), mutating commands bracket
their work with write-ahead intent records, and torn operations from a
killed process are auto-recovered on the next invocation (or explicitly
via ``orpheus recover``).

Every command records telemetry (spans, counters, latency histograms);
the per-invocation snapshot accumulates in ``.orpheus/telemetry.json``
and ``orpheus stats`` renders the history. Pass ``--timings`` to any
command to print its span tree.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

from repro import telemetry
from repro.core.commands import Orpheus
from repro.core.csvio import read_csv, read_schema_file
from repro.observe.doctor import run_doctor
from repro.observe.explain import run_with_actuals
from repro.observe.journal import (
    JOURNALED_COMMANDS,
    MUTATING_COMMANDS,
    Journal,
    make_record,
    new_trace_id,
    verify_journal,
)
from repro.resilience import failpoints
from repro.resilience.intents import IntentLog, has_pending_intents
from repro.resilience.lock import RepositoryLock
from repro.resilience.recovery import run_recovery
from repro.resilience.statestore import StateStore
from repro.telemetry.snapshot import Snapshot

STATE_DIR = ".orpheus"
STATE_FILE = "state.pkl"
TELEMETRY_FILE = "telemetry.json"

#: Commands that rewrite ``state.pkl`` (superset of the journaled
#: MUTATING_COMMANDS: user management writes state but is not part of
#: the dataset history). These take the exclusive repository lock;
#: everything else reads under a shared lock.
STATE_WRITING_COMMANDS = MUTATING_COMMANDS | {"create_user", "config"}


def _telemetry_path(root: str | None = None) -> Path:
    return Path(root or ".") / STATE_DIR / TELEMETRY_FILE


def load_state(root: str | None = None) -> Orpheus:
    """Load the repository state via the transactional store.

    Corrupt generations fall back to backups with a warning on stderr;
    a missing file yields a fresh :class:`Orpheus`.
    """
    obj, _info = StateStore(root).load()
    return obj if obj is not None else Orpheus()


def save_state(orpheus: Orpheus, root: str | None = None) -> None:
    """Durably replace the state file (checksummed container, temp +
    fsync + rename + dir fsync, rotating ``.bak`` generations)."""
    StateStore(root).save(orpheus)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write via a temp file in the same directory + ``os.replace`` so a
    crash mid-write can never leave a truncated file behind."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_telemetry(root: str | None = None) -> Snapshot:
    """The accumulated cross-invocation snapshot (empty when absent)."""
    path = _telemetry_path(root)
    if path.exists():
        try:
            return Snapshot.from_json(path.read_text())
        except (ValueError, KeyError):
            return Snapshot()  # corrupt history: start over
    return Snapshot()


def save_telemetry(snapshot: Snapshot, root: str | None = None) -> None:
    _atomic_write(
        _telemetry_path(root), snapshot.to_json(indent=None).encode()
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="orpheus",
        description="Dataset version control (OrpheusDB reproduction)",
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print this invocation's span tree to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="register a CSV as a new CVD")
    init.add_argument("-d", "--dataset", required=True)
    init.add_argument("-f", "--file", required=True)
    init.add_argument("-s", "--schema", required=True)
    init.add_argument("--model", default="split_by_rlist")

    checkout = sub.add_parser("checkout", help="materialize version(s) to CSV")
    checkout.add_argument("-d", "--dataset", required=True)
    checkout.add_argument(
        "-v", "--versions", required=True, nargs="+", type=int
    )
    checkout.add_argument("-f", "--file", required=True)
    checkout.add_argument("-s", "--schema", default=None)
    _add_explain(checkout)

    commit = sub.add_parser("commit", help="commit a checked-out CSV")
    commit.add_argument("-d", "--dataset", required=True)
    commit.add_argument("-f", "--file", required=True)
    commit.add_argument("-s", "--schema", default=None)
    commit.add_argument("-m", "--message", default="")
    _add_explain(commit)

    log = sub.add_parser("log", help="show the version graph")
    log.add_argument("-d", "--dataset", default=None)
    log.add_argument(
        "--ops",
        action="store_true",
        help="show the operation journal instead of the version graph",
    )
    log.add_argument(
        "--verify",
        action="store_true",
        help="with --ops: replay the journal against the version graph",
    )
    log.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    diff = sub.add_parser("diff", help="records in one version but not another")
    diff.add_argument("-d", "--dataset", required=True)
    diff.add_argument("-a", type=int, required=True)
    diff.add_argument("-b", type=int, required=True)
    _add_explain(diff)

    ls = sub.add_parser("ls", help="list CVDs")
    ls.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    runq = sub.add_parser(
        "run", help="execute a version-aware SQL SELECT"
    )
    runq.add_argument("sql", help="the query, e.g. \"SELECT * FROM d ...\"")
    runq.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    runq.add_argument(
        "--limit",
        type=int,
        default=None,
        help="print at most this many rows (full result still computed)",
    )

    drop = sub.add_parser("drop", help="drop a CVD")
    drop.add_argument("-d", "--dataset", required=True)

    optimize = sub.add_parser("optimize", help="run the partition optimizer")
    optimize.add_argument("-d", "--dataset", required=True)
    optimize.add_argument("--gamma", type=float, default=2.0)
    optimize.add_argument("--mu", type=float, default=1.5)

    user = sub.add_parser("create_user", help="register a user")
    user.add_argument("name")
    user.add_argument("--email", default="")

    config = sub.add_parser("config", help="log in as a user")
    config.add_argument("name")

    sub.add_parser("whoami", help="print the current user")

    doctor = sub.add_parser(
        "doctor", help="run storage-health probes against this repository"
    )
    doctor.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    recover = sub.add_parser(
        "recover",
        help="detect and repair operations torn by a crash",
    )
    recover.add_argument(
        "--dry-run",
        action="store_true",
        help="report what recovery would do without changing anything",
    )

    migrate = sub.add_parser(
        "migrate-state",
        help="convert the repository between the pickle and paged "
        "(out-of-core) state layouts in place",
    )
    migrate.add_argument(
        "--to",
        choices=("paged", "pickle"),
        default="paged",
        help="target layout (default: paged)",
    )
    migrate.add_argument(
        "--dry-run",
        action="store_true",
        help="report the planned conversion without changing anything",
    )

    profile = sub.add_parser(
        "profile",
        help="run any orpheus command with resource profiling and "
        "print its span-tree profile",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="number of hot spans in the self-time table (default 15)",
    )
    profile.add_argument(
        "--collapsed",
        action="store_true",
        help="emit folded stacks (flamegraph.pl / speedscope format) "
        "instead of the tree",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the profiled tree and hot-span table as JSON",
    )
    profile.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the orpheus command to profile, e.g. "
        "`orpheus profile checkout -d data -v 3 -f out.csv`",
    )

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark suite (same flags as "
        "`python -m benchmarks`)",
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument(
        "--tier",
        default=None,
        metavar="TAG",
        help="run the benches carrying this tier tag instead of the "
        "quick tier (e.g. service-scale)",
    )
    bench.add_argument("--filter", default=None, metavar="SUBSTR")
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--list", action="store_true")
    bench.add_argument("--json", action="store_true")
    bench.add_argument("--no-write", action="store_true")
    bench.add_argument("--check", action="store_true")
    bench.add_argument("--warn-only", action="store_true")
    bench.add_argument("--update-baseline", action="store_true")
    bench.add_argument("--baseline", default=None)

    serve = sub.add_parser(
        "serve",
        help="run the version-service daemon (orpheusd) over this "
        "repository",
    )
    serve.add_argument(
        "--socket",
        default=None,
        help="Unix socket path (default: .orpheus/service.sock)",
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="additionally listen on TCP (port 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="read worker threads"
    )
    serve.add_argument(
        "--cache-mb",
        type=float,
        default=64.0,
        help="materialized-version cache budget in MiB",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="writer queue depth before BUSY load-shedding",
    )
    serve.add_argument(
        "--read-queue-depth",
        type=int,
        default=64,
        help="read queue depth before BUSY load-shedding",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="close sessions silent for this many seconds",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus /metrics (and /stats, /healthz) on this "
        "HTTP port; 0 picks a free port, recorded in service.json",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log requests slower than this to "
        ".orpheus/journal/slow.jsonl (default: $ORPHEUS_SLOW_MS or 500)",
    )
    serve.add_argument(
        "--flight-sample",
        type=float,
        default=None,
        metavar="FRAC",
        help="fraction of requests the flight recorder keeps, 0..1 "
        "(default: $ORPHEUS_FLIGHT_SAMPLE or 1.0; 0 disables)",
    )
    serve.add_argument(
        "--flight-segment-mb",
        type=float,
        default=None,
        metavar="MB",
        help="rotate flight-recorder segments at this size (default 4)",
    )
    serve.add_argument(
        "--flight-segments",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N flight segments on disk (default 8)",
    )
    serve.add_argument(
        "--status",
        action="store_true",
        help="query a running daemon instead of starting one",
    )
    serve.add_argument(
        "--stop",
        action="store_true",
        help="ask a running daemon to drain and exit",
    )
    serve.add_argument(
        "--json", action="store_true", help="with --status: JSON output"
    )

    remote = sub.add_parser(
        "remote",
        help="run a command against the daemon instead of the local "
        "state file",
    )
    remote.add_argument(
        "--user",
        default=os.environ.get("ORPHEUS_USER", ""),
        help="session identity (default: $ORPHEUS_USER or anonymous)",
    )
    remote.add_argument(
        "--socket", default=None, help="daemon socket (default: discover)"
    )
    remote.add_argument(
        "--json",
        action="store_true",
        help="print the raw response data as JSON",
    )
    remote.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the command to forward, e.g. "
        "`orpheus remote checkout -d data -v 3 -f out.csv`",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard for a running daemon (polls its stats op)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (no screen clearing)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="dump the raw stats payload instead of the dashboard",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # bounded loop, for tests/scripts
    )

    replay = sub.add_parser(
        "replay",
        help="re-issue a recorded flight against the running daemon "
        "and compare latency/shed/cache behaviour",
    )
    replay.add_argument(
        "flight_dir",
        nargs="?",
        default=None,
        metavar="FLIGHT_DIR",
        help="flight-recorder directory "
        "(default: .orpheus/journal/flight)",
    )
    replay.add_argument(
        "--speedup",
        type=float,
        default=1.0,
        metavar="X",
        help="compress recorded inter-arrival times by this factor "
        "(default 1 = real time)",
    )
    replay.add_argument(
        "--user",
        default=os.environ.get("ORPHEUS_USER", ""),
        help="session identity for the replay connections",
    )
    replay.add_argument(
        "--socket", default=None, help="daemon socket (default: discover)"
    )
    replay.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison report as JSON",
    )
    replay.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when replayed p95 drifts past the budget "
        "or op counts fail to reproduce the recording",
    )
    replay.add_argument(
        "--budget-pct",
        type=float,
        default=None,
        metavar="PCT",
        help="with --check: relative p95 drift budget (default 50)",
    )
    replay.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --check: absolute p95 drift floor (default 5)",
    )

    heat = sub.add_parser(
        "heat",
        help="storage access observatory: hot/cold partitions and "
        "versions, I/O amplification, and the partition advisor",
    )
    heat.add_argument(
        "-d", "--dataset", default=None, help="restrict to one dataset"
    )
    heat.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows per hot/cold table (default 10)",
    )
    heat.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    heat.add_argument(
        "--from-flight",
        action="store_true",
        help="rebuild the heat model offline from the flight recorder "
        "and the ops journal instead of reading heat.json",
    )

    stats = sub.add_parser(
        "stats", help="show accumulated telemetry for this repository"
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text exposition format",
    )
    stats.add_argument(
        "--reset", action="store_true", help="clear the recorded telemetry"
    )
    return parser


def _add_explain(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--explain",
        nargs="?",
        const="plan",
        choices=("plan", "analyze"),
        default=None,
        help="print the plan tree; 'analyze' also executes and attaches "
        "actual rows and per-node timings",
    )
    subparser.add_argument(
        "--json",
        action="store_true",
        help="with --explain: emit the plan tree as JSON",
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "remote":
        return _run_remote(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "top":
        from repro.observe.top import run_top

        return run_top(
            root=args.root,
            interval=args.interval,
            iterations=args.iterations,
            once=args.once,
            as_json=args.json,
        )
    if args.command == "stats":
        # Readers share the lock; --reset rewrites the accumulator and
        # must serialize against invocations folding their snapshots in.
        with RepositoryLock(
            args.root, shared=not args.reset, command="stats"
        ):
            return _run_stats(args)
    if args.command == "heat":
        # Pure reader: renders the persisted heat model (or mines one
        # offline) without folding telemetry of its own.
        with RepositoryLock(args.root, shared=True, command="heat"):
            return _run_heat(args)

    # Each invocation records its own telemetry from a clean registry,
    # then folds the snapshot into .orpheus/telemetry.json so metrics
    # accumulate across processes — failures included, tagged under
    # `commands.failed` with the span's error status keeping the latency
    # histograms clean. The enabled flag is restored so embedding
    # programs that keep telemetry off stay unaffected.
    was_enabled = telemetry.is_enabled()
    telemetry.reset()
    telemetry.enable()
    trace_id = new_trace_id()
    # `--explain` without execution neither mutates state nor journals.
    plan_only = getattr(args, "explain", None) == "plan"
    mutating = args.command in MUTATING_COMMANDS and not plan_only
    journaled = args.command in JOURNALED_COMMANDS and not plan_only
    writes = (
        (args.command in STATE_WRITING_COMMANDS and not plan_only)
        or args.command == "recover"
        or args.command == "migrate-state"
    )
    record = make_record(trace_id, args.command) if journaled else None
    code = 0
    try:
        try:
            if args.command != "recover":
                _auto_recover(args.root)
            with RepositoryLock(
                args.root, shared=not writes, command=args.command
            ):
                code = _locked_invocation(args, record, trace_id, mutating)
        except Exception as error:  # CLI boundary: print, don't traceback
            sys.stderr.write(f"error: {error}\n")
            code = 1
    finally:
        if not was_enabled:
            telemetry.disable()
    return code


def _auto_recover(root: str | None) -> None:
    """Repair torn operations left by a crashed process before running
    the requested command.

    The pending check is lock-free (a begin record from a *live*
    in-flight process looks pending too), so the recovery pass
    re-derives the pending set under the exclusive lock — once the
    other process finishes, there is nothing to do.
    """
    if not has_pending_intents(root):
        return
    with RepositoryLock(root, shared=False, command="auto-recover"):
        report = run_recovery(root, dry_run=False)
    if report.actions:
        sys.stderr.write(
            f"warning: recovered {len(report.actions)} interrupted "
            f"action(s) from a previous crash; see `orpheus log --ops` "
            f"or run `orpheus recover --dry-run` for details\n"
        )
    for problem in report.problems:
        sys.stderr.write(f"warning: recovery incomplete: {problem}\n")


def _locked_invocation(
    args: argparse.Namespace, record, trace_id: str, mutating: bool
) -> int:
    """One command executed under the repository lock: intent begin,
    dispatch, journal, intent done, telemetry fold — in that order, so
    a crash at any point is classifiable by recovery."""
    intents = IntentLog(args.root)
    if mutating:
        intents.begin(
            trace_id,
            args.command,
            dataset=getattr(args, "dataset", None),
            file=getattr(args, "file", None),
            versions=getattr(args, "versions", None),
        )
    code = 0
    try:
        with telemetry.span(f"cli.{args.command}") as root:
            if root is not None:
                root.set_attr("trace_id", trace_id)
            code = _dispatch(args, record)
    except Exception as error:  # CLI boundary: print, don't traceback
        sys.stderr.write(f"error: {error}\n")
        kind = type(error).__name__
        telemetry.count("commands.failed")
        telemetry.count(f"commands.failed.{kind}")
        if record is not None:
            record.status = "error"
            record.error_type = kind
            record.error_message = str(error)
        code = 1
    tree = telemetry.last_span_tree()
    if record is not None:
        if tree is not None:
            record.duration_s = tree.duration_s
        Journal(args.root).append(record)
    if mutating:
        intents.done(trace_id, status=record.status if record else "ok")
    _fold_heat_cli(args, record)
    failpoints.fire("telemetry.before_save")
    save_telemetry(
        load_telemetry(args.root).merged(telemetry.snapshot()),
        args.root,
    )
    if args.timings and tree is not None:
        sys.stderr.write(tree.render() + "\n")
    return code


def _fold_heat_cli(args: argparse.Namespace, record) -> None:
    """Fold one successful journaled dataset access into the persisted
    heat model (``.orpheus/telemetry/heat.json``), using this
    invocation's ``storage.io.*`` counters as the scan footprint. Runs
    under the invocation's repository lock; never fatal."""
    if record is None or record.status != "ok" or not record.dataset:
        return
    try:
        from repro.observe.heat import HeatAccountant, build_event

        registry = telemetry.get_registry()
        # The "requested version": what the command produced (commit/
        # init) or what it asked for (checkout/diff) — same rule as the
        # daemon's stamping, so live and mined events agree.
        if record.output_version is not None:
            versions = [record.output_version]
        else:
            versions = list(record.input_versions or ())
        event = build_event(
            getattr(args, "_orpheus", None),
            ts=record.ts,
            command=record.command,
            dataset=record.dataset,
            versions=versions,
            rows_returned=record.rows or 0,
            rows_scanned=registry.counter_value("storage.io.seq_rows")
            + registry.counter_value("storage.io.random_rows"),
            bytes_scanned=registry.counter_value("storage.io.bytes_read"),
            rows_written=registry.counter_value("storage.io.rows_written"),
            bytes_written=registry.counter_value(
                "storage.io.bytes_written"
            ),
        )
        heat = HeatAccountant.load(args.root)
        heat.record(event)
        heat.save(args.root)
    except Exception as error:
        sys.stderr.write(f"warning: heat accounting skipped: {error}\n")


def _render_plan(plan, args) -> str:
    return (plan.to_json() if args.json else plan.render()) + "\n"


def _dispatch(args: argparse.Namespace, record=None) -> int:
    """Execute one parsed command; raises on failure (the boundary in
    :func:`main` turns exceptions into exit code 1, telemetry, and the
    journal record). ``record`` is the journal entry to fill in for
    mutating commands (None for read-only or plan-only invocations)."""
    out = sys.stdout
    if args.command == "recover":
        # Recovery manages its own files and must run even when the
        # state is too corrupt for load_state.
        report = run_recovery(args.root, dry_run=args.dry_run)
        out.write(report.render_text())
        return 0 if report.clean else 1
    if args.command == "migrate-state":
        # Handles its own load/save cycle (the save must use the target
        # layout, not whatever save_state would sniff).
        import json as _json

        from repro.pagestore.store import migrate_state

        result = migrate_state(args.root, to=args.to, dry_run=args.dry_run)
        out.write(_json.dumps(result, indent=2, sort_keys=True) + "\n")
        return 0
    orpheus = load_state(args.root)
    #: The heat fold in _locked_invocation resolves models/partitions
    #: against the same state this command ran on.
    args._orpheus = orpheus
    if record is not None:
        record.user = orpheus.access.current_user or ""
        record.dataset = getattr(args, "dataset", None)

    if args.command == "init":
        vid = orpheus.init_from_csv(
            args.dataset, args.file, args.schema, model=args.model
        )
        if record is not None:
            record.output_version = vid
            record.rows = orpheus.cvd(args.dataset).versions.get(
                vid
            ).record_count
        out.write(f"initialized CVD {args.dataset!r} at version {vid}\n")
    elif args.command == "checkout":
        if record is not None:
            record.input_versions = list(args.versions)
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_checkout(args.versions)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.checkout_csv(
            args.dataset, args.versions, args.file, args.schema
        )
        result = run_with_actuals(plan, do) if plan is not None else do()
        if record is not None:
            record.rows = len(result.rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(
            f"checked out version(s) {args.versions} of "
            f"{args.dataset!r} into {args.file} "
            f"({len(result.rows)} records)\n"
        )
    elif args.command == "commit":
        cvd = orpheus.cvd(args.dataset)
        schema = (
            read_schema_file(args.schema) if args.schema else cvd.schema
        )
        rows = read_csv(args.file, schema)
        info = orpheus.staging._staged.get(args.file)
        parents = info.parents if info is not None else ()
        plan = None
        if args.explain:
            plan = cvd.explain_commit(len(rows), parents)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        try:
            telemetry.count(
                "command.commit.bytes_staged", os.path.getsize(args.file)
            )
        except OSError:
            pass

        def do_commit():
            vid = cvd.commit(
                rows,
                parents=parents,
                message=args.message,
                author=orpheus.access.current_user or "",
                columns=schema.column_names,
                column_types={c.name: c.dtype for c in schema.columns},
            )
            orpheus.staging._staged.pop(args.file, None)
            return vid

        vid = (
            run_with_actuals(plan, do_commit)
            if plan is not None
            else do_commit()
        )
        if record is not None:
            record.input_versions = list(parents)
            record.output_version = vid
            record.rows = len(rows)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"committed version {vid} to {args.dataset!r}\n")
    elif args.command == "log":
        if args.ops:
            journal = Journal(args.root)
            records = journal.read()
            if args.json:
                import json as _json

                out.write(_json.dumps(records, default=str) + "\n")
            else:
                out.write(journal.render_text(records))
            if args.verify:
                divergences = verify_journal(orpheus, records)
                if divergences:
                    for line in divergences:
                        out.write(f"DIVERGED: {line}\n")
                    return 1
                out.write("journal and version graph agree\n")
            return 0
        if args.dataset is None:
            raise ValueError("log requires -d/--dataset (or --ops)")
        if args.json:
            import json as _json

            out.write(
                _json.dumps(orpheus.log_info(args.dataset), default=str)
                + "\n"
            )
            return 0
        cvd = orpheus.cvd(args.dataset)
        for vid in cvd.versions.vids():
            metadata = cvd.versions.get(vid)
            parents = ",".join(map(str, metadata.parents)) or "-"
            out.write(
                f"v{vid}  parents=[{parents}]  "
                f"records={metadata.record_count}  "
                f"author={metadata.author or '-'}  "
                f"{metadata.message}\n"
            )
    elif args.command == "diff":
        if record is not None:
            record.input_versions = [args.a, args.b]
        plan = None
        if args.explain:
            plan = orpheus.cvd(args.dataset).explain_diff(args.a, args.b)
        if args.explain == "plan":
            out.write(_render_plan(plan, args))
            return 0
        do = lambda: orpheus.diff(args.dataset, args.a, args.b)
        only_a, only_b = run_with_actuals(plan, do) if plan is not None else do()
        if record is not None:
            record.rows = len(only_a) + len(only_b)
        if plan is not None:
            out.write(_render_plan(plan, args))
        out.write(f"records only in v{args.a}: {len(only_a)}\n")
        for row in only_a[:20]:
            out.write(f"  + {row}\n")
        out.write(f"records only in v{args.b}: {len(only_b)}\n")
        for row in only_b[:20]:
            out.write(f"  - {row}\n")
    elif args.command == "run":
        result = orpheus.run(args.sql)
        if record is not None:
            record.rows = len(result.rows)
        rows = result.rows
        if args.limit is not None:
            rows = rows[: args.limit]
        if args.json:
            import json as _json

            out.write(
                _json.dumps(
                    {
                        "columns": list(result.columns),
                        "rows": [list(row) for row in rows],
                        "total_rows": len(result.rows),
                    },
                    default=str,
                )
                + "\n"
            )
        else:
            out.write("  ".join(result.columns) + "\n")
            for row in rows:
                out.write("  ".join(str(value) for value in row) + "\n")
            if args.limit is not None and len(result.rows) > args.limit:
                out.write(
                    f"... ({len(result.rows) - args.limit} more rows)\n"
                )
    elif args.command == "ls":
        if args.json:
            import json as _json

            out.write(_json.dumps(orpheus.ls_info(), default=str) + "\n")
        else:
            for name in orpheus.ls():
                cvd = orpheus.cvd(name)
                out.write(
                    f"{name}  versions={cvd.num_versions}  "
                    f"records={cvd.num_records}\n"
                )
    elif args.command == "drop":
        orpheus.drop(args.dataset)
        out.write(f"dropped {args.dataset!r}\n")
    elif args.command == "optimize":
        partitioning = orpheus.optimize(
            args.dataset,
            storage_threshold_factor=args.gamma,
            tolerance=args.mu,
        )
        out.write(
            f"repartitioned {args.dataset!r} into "
            f"{partitioning.num_partitions} partitions\n"
        )
    elif args.command == "doctor":
        report = run_doctor(orpheus, args.root)
        out.write(report.to_json() + "\n" if args.json else report.render_text())
        return report.exit_code
    elif args.command == "create_user":
        orpheus.create_user(args.name, args.email)
        out.write(f"created user {args.name!r}\n")
    elif args.command == "config":
        orpheus.config(args.name)
        out.write(f"logged in as {args.name!r}\n")
    elif args.command == "whoami":
        out.write(orpheus.whoami() + "\n")

    # Readers hold only the shared lock and must not rewrite state.
    if args.command in STATE_WRITING_COMMANDS:
        save_state(orpheus, args.root)
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """``orpheus profile <command...>``: run the command with resource
    profiling enabled and render its span tree (self/total time, CPU,
    peak memory)."""
    from repro.observe.profile import (
        collapsed_stacks,
        profile_to_json,
        render_report,
    )

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        sys.stderr.write("error: profile needs a command to run\n")
        return 2
    if cmd[0] in ("profile", "bench"):
        sys.stderr.write(f"error: cannot profile {cmd[0]!r}\n")
        return 2
    inner = (["--root", args.root] if args.root else []) + cmd
    was_profiling = telemetry.is_profiling()
    telemetry.enable_profiling()
    try:
        code = main(inner)
    finally:
        if not was_profiling:
            telemetry.disable_profiling()
    tree = telemetry.last_span_tree()
    if tree is None:
        sys.stderr.write(
            "profile: the command recorded no span tree (nothing to show)\n"
        )
        return code if code != 0 else 1
    if args.collapsed:
        sys.stdout.write(collapsed_stacks(tree))
    elif args.json:
        sys.stdout.write(profile_to_json(tree, args.top) + "\n")
    else:
        sys.stdout.write(render_report(tree, args.top))
    return code


def _run_bench(args: argparse.Namespace) -> int:
    """``orpheus bench ...``: forward to the unified benchmark runner
    (``python -m benchmarks``), which must be importable — i.e. run
    from a checkout of the repository."""
    try:
        from benchmarks.runner import main as bench_main
    except ImportError:
        sys.stderr.write(
            "error: the benchmark suite is not importable; run from the "
            "repository root (or `python -m benchmarks` with the repo "
            "on sys.path)\n"
        )
        return 2
    bench_args: list[str] = []
    for flag in (
        "quick", "list", "json", "no_write", "check", "warn_only",
        "update_baseline",
    ):
        if getattr(args, flag):
            bench_args.append("--" + flag.replace("_", "-"))
    if args.tier is not None:
        bench_args += ["--tier", args.tier]
    if args.filter is not None:
        bench_args += ["--filter", args.filter]
    if args.repeats is not None:
        bench_args += ["--repeats", str(args.repeats)]
    if args.baseline is not None:
        bench_args += ["--baseline", args.baseline]
    return bench_main(bench_args)


def _run_replay(args: argparse.Namespace) -> int:
    """``orpheus replay``: re-issue a recorded flight against the live
    daemon and print (or gate on) the recorded-vs-replayed report."""
    from repro.service.client import daemon_running
    from repro.service.recorder import flight_dir_path
    from repro.service.replay import (
        DEFAULT_BUDGET_MS,
        DEFAULT_BUDGET_PCT,
        check_report,
        render_report_text,
        run_replay,
        write_report_json,
    )

    flight_dir = args.flight_dir or str(flight_dir_path(args.root))
    if not os.path.isdir(flight_dir):
        sys.stderr.write(
            f"error: no flight directory at {flight_dir} — start the "
            "daemon with flight recording on (`orpheus serve`) and run "
            "a workload first\n"
        )
        return 1
    if args.socket is None and not daemon_running(args.root):
        sys.stderr.write(
            "error: orpheusd is not running here; start it with "
            "`orpheus serve` before replaying\n"
        )
        return 1
    try:
        report = run_replay(
            flight_dir,
            root=args.root,
            socket_path=args.socket,
            user=args.user,
            speedup=args.speedup,
        )
    except Exception as error:
        sys.stderr.write(f"error: {error}\n")
        return 1
    if args.json:
        sys.stdout.write(write_report_json(report) + "\n")
    else:
        sys.stdout.write(render_report_text(report))
    if args.check:
        violations = check_report(
            report,
            budget_pct=(
                args.budget_pct
                if args.budget_pct is not None
                else DEFAULT_BUDGET_PCT
            ),
            budget_ms=(
                args.budget_ms
                if args.budget_ms is not None
                else DEFAULT_BUDGET_MS
            ),
        )
        for violation in violations:
            sys.stderr.write(f"replay check: {violation}\n")
        if violations:
            return 3
        sys.stderr.write("replay check: ok\n")
    return 0


def _parse_tcp(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host:
        raise ValueError(f"--tcp wants HOST:PORT, got {spec!r}")
    return host, int(port)


def _run_serve(args: argparse.Namespace) -> int:
    """``orpheus serve``: run (or query/stop) the version-service
    daemon. ``--status`` and ``--stop`` talk to a running daemon over
    its socket and never touch the repository lock the daemon holds."""
    import json as _json
    import signal

    from repro.service.client import (
        ServiceClient,
        ServiceError,
        ServiceUnavailableError,
        daemon_running,
        read_status_file,
    )
    from repro.service.daemon import ServiceConfig, ServiceDaemon

    if args.status or args.stop:
        if not daemon_running(args.root):
            sys.stderr.write("orpheusd is not running here\n")
            return 1
        try:
            with ServiceClient(
                socket_path=args.socket, root=args.root
            ) as client:
                if args.stop:
                    client.shutdown()
                    sys.stdout.write("orpheusd draining\n")
                    return 0
                status = client.status()
        except (ServiceError, ServiceUnavailableError) as error:
            sys.stderr.write(f"error: {error}\n")
            return 1
        if args.json:
            sys.stdout.write(_json.dumps(status, indent=2, sort_keys=True) + "\n")
        else:
            cache = status.get("cache", {})
            requests = status.get("requests", {})
            scheduler = status.get("scheduler", {})
            sys.stdout.write(
                f"orpheusd pid={status.get('pid')} "
                f"uptime={status.get('uptime_s')}s "
                f"datasets={status.get('datasets')}\n"
                f"  socket: {status.get('socket')}\n"
                f"  requests: {requests.get('total', 0)} total, "
                f"{requests.get('busy', 0)} shed busy\n"
                f"  scheduler: {scheduler.get('executed_reads', 0)} reads, "
                f"{scheduler.get('executed_writes', 0)} writes, "
                f"write queue {scheduler.get('write_queue_depth', 0)}/"
                f"{scheduler.get('write_queue_capacity', 0)}\n"
                f"  cache: {cache.get('entries', 0)} entries, "
                f"{cache.get('bytes', 0)} bytes, "
                f"hit rate {cache.get('hit_rate', 0.0):.0%} "
                f"({cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses, "
                f"{cache.get('evictions', 0)} evicted)\n"
                f"  sessions: "
                f"{status.get('sessions', {}).get('active', 0)} active\n"
            )
            degrade = status.get("degrade", {})
            if degrade.get("degraded"):
                sys.stdout.write(
                    f"  DEGRADED (read-only): "
                    f"{degrade.get('cause') or 'unknown'} — writes are "
                    f"refused until a state save succeeds\n"
                )
            quarantine = status.get("quarantine", {})
            if quarantine.get("quarantined"):
                sys.stdout.write(
                    f"  quarantine: {quarantine.get('quarantined')} "
                    f"poisoned digest(s), "
                    f"{quarantine.get('refused_total', 0)} refusal(s) "
                    f"(clear with `orpheus remote -- flush-quarantine`)\n"
                )
            failures = {
                key: requests.get(key, 0)
                for key in (
                    "worker_errors",
                    "deadline_exceeded",
                    "deadline_shed",
                    "degraded_refused",
                )
            }
            if any(failures.values()):
                sys.stdout.write(
                    f"  failures: {failures['worker_errors']} worker "
                    f"error(s), {failures['deadline_exceeded']} deadline "
                    f"refusal(s), {failures['deadline_shed']} deadline "
                    f"shed(s), {failures['degraded_refused']} degraded "
                    f"refusal(s)\n"
                )
            slow = status.get("slow", {})
            if slow.get("count"):
                sys.stdout.write(
                    f"  slow: {slow.get('count')} request(s) over "
                    f"{slow.get('threshold_ms')}ms logged "
                    f"(see `orpheus top`)\n"
                )
            flight = status.get("flight", {})
            if flight:
                if flight.get("enabled"):
                    sys.stdout.write(
                        f"  flight: recording at sample "
                        f"{flight.get('sample', 0.0):g}, "
                        f"{flight.get('segments', 0)} segment(s), "
                        f"{flight.get('bytes', 0)} bytes "
                        f"(replay with `orpheus replay`)\n"
                    )
                else:
                    sys.stdout.write("  flight: recording disabled\n")
            if status.get("metrics"):
                sys.stdout.write(
                    f"  metrics: http://{status['metrics']}/metrics\n"
                )
        return 0

    if daemon_running(args.root):
        status = read_status_file(args.root) or {}
        sys.stderr.write(
            f"error: orpheusd already running (pid {status.get('pid')}); "
            f"use `orpheus serve --status` or `orpheus remote`\n"
        )
        return 1
    config = ServiceConfig(
        root=args.root,
        socket_path=args.socket,
        tcp=_parse_tcp(args.tcp) if args.tcp else None,
        workers=args.workers,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        read_queue_depth=args.read_queue_depth,
        write_queue_depth=args.queue_depth,
        idle_timeout=args.idle_timeout,
        metrics_port=args.metrics_port,
        slow_ms=args.slow_ms,
        flight_sample=args.flight_sample,
        flight_segment_bytes=(
            int(args.flight_segment_mb * 1024 * 1024)
            if args.flight_segment_mb is not None
            else ServiceConfig.flight_segment_bytes
        ),
        flight_max_segments=(
            args.flight_segments
            if args.flight_segments is not None
            else ServiceConfig.flight_max_segments
        ),
    )
    daemon = ServiceDaemon(config)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_shutdown())
    daemon.start()
    listen = config.resolved_socket()
    if config.tcp is not None:
        listen += f" and tcp://{config.tcp[0]}:{config.tcp[1]}"
    if daemon._metrics_server is not None:
        listen += f", metrics on http://{daemon._metrics_server.address}"
    sys.stderr.write(f"orpheusd listening on {listen}\n")
    daemon.serve_forever()
    sys.stderr.write("orpheusd stopped\n")
    return 0


def _build_remote_parser() -> argparse.ArgumentParser:
    """The commands ``orpheus remote`` can forward. Mirrors the local
    grammar so muscle memory transfers: ``orpheus remote commit -d ...``."""
    parser = argparse.ArgumentParser(
        prog="orpheus remote", add_help=True
    )
    sub = parser.add_subparsers(dest="rcmd", required=True)

    init = sub.add_parser("init")
    init.add_argument("-d", "--dataset", required=True)
    init.add_argument("-f", "--file", required=True)
    init.add_argument("-s", "--schema", required=True)
    init.add_argument("--model", default="split_by_rlist")

    checkout = sub.add_parser("checkout")
    checkout.add_argument("-d", "--dataset", required=True)
    checkout.add_argument("-v", "--versions", required=True, nargs="+", type=int)
    checkout.add_argument("-f", "--file", default=None)
    checkout.add_argument("-s", "--schema", default=None)

    commit = sub.add_parser("commit")
    commit.add_argument("-d", "--dataset", required=True)
    commit.add_argument("-f", "--file", required=True)
    commit.add_argument("-s", "--schema", default=None)
    commit.add_argument("-m", "--message", default="")
    commit.add_argument("--parents", nargs="*", type=int, default=None)

    log = sub.add_parser("log")
    log.add_argument("-d", "--dataset", default=None)
    log.add_argument("--ops", action="store_true")

    diff = sub.add_parser("diff")
    diff.add_argument("-d", "--dataset", required=True)
    diff.add_argument("-a", type=int, required=True)
    diff.add_argument("-b", type=int, required=True)

    sub.add_parser("ls")

    runq = sub.add_parser("run")
    runq.add_argument("sql")

    drop = sub.add_parser("drop")
    drop.add_argument("-d", "--dataset", required=True)

    optimize = sub.add_parser("optimize")
    optimize.add_argument("-d", "--dataset", required=True)
    optimize.add_argument("--gamma", type=float, default=2.0)
    optimize.add_argument("--mu", type=float, default=1.5)

    user = sub.add_parser("create_user")
    user.add_argument("name")
    user.add_argument("--email", default="")

    sub.add_parser("whoami")
    sub.add_parser("doctor")
    sub.add_parser("status")
    rstats = sub.add_parser("stats")
    rstats.add_argument(
        "--recent",
        type=int,
        default=0,
        help="include the N newest server-side span trees",
    )
    sub.add_parser("ping")
    sub.add_parser("flush-cache")
    sub.add_parser("flush-quarantine")
    sub.add_parser("shutdown")
    return parser


def _run_remote(args: argparse.Namespace) -> int:
    """``orpheus remote <cmd ...>``: forward one command to the daemon.

    Output mirrors the local CLI so scripts can switch between direct
    and served execution by inserting ``remote``; ``--json`` prints the
    raw response data instead.
    """
    import json as _json

    from repro.service.client import (
        ServiceBusyError,
        ServiceClient,
        ServiceError,
    )

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        sys.stderr.write("error: remote needs a command to forward\n")
        return 2
    remote_args = _build_remote_parser().parse_args(cmd)
    out = sys.stdout
    try:
        with ServiceClient(
            socket_path=args.socket, root=args.root, user=args.user
        ) as client:
            data = _remote_dispatch(client, remote_args)
    except ServiceBusyError as error:
        sys.stderr.write(f"busy: {error} (retry with backoff)\n")
        return 3
    except ServiceError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1
    if args.json:
        out.write(_json.dumps(data, default=str, sort_keys=True) + "\n")
        return 0
    _render_remote(out, remote_args, data)
    return 0


def _remote_dispatch(client, r: argparse.Namespace) -> dict:
    if r.rcmd == "init":
        return client.init(r.dataset, r.file, r.schema, model=r.model)
    if r.rcmd == "checkout":
        return client.checkout(
            r.dataset, r.versions, file=r.file, schema=r.schema,
            inline=r.file is None,
        )
    if r.rcmd == "commit":
        return client.commit(
            r.dataset, r.file, message=r.message, schema=r.schema,
            parents=r.parents,
        )
    if r.rcmd == "log":
        return client.log(dataset=r.dataset, ops=r.ops)
    if r.rcmd == "diff":
        return client.diff(r.dataset, r.a, r.b)
    if r.rcmd == "ls":
        return {"datasets": client.ls()}
    if r.rcmd == "run":
        return client.run(r.sql)
    if r.rcmd == "drop":
        return client.drop(r.dataset)
    if r.rcmd == "optimize":
        return client.optimize(r.dataset, gamma=r.gamma, mu=r.mu)
    if r.rcmd == "create_user":
        return client.create_user(r.name, r.email)
    if r.rcmd == "whoami":
        return client.whoami()
    if r.rcmd == "doctor":
        return client.doctor()
    if r.rcmd == "status":
        return client.status()
    if r.rcmd == "stats":
        return client.stats(recent=r.recent)
    if r.rcmd == "ping":
        return {"pong": client.ping()}
    if r.rcmd == "flush-cache":
        return {"dropped": client.flush_cache()}
    if r.rcmd == "flush-quarantine":
        return {"dropped": client.flush_quarantine()}
    if r.rcmd == "shutdown":
        client.shutdown()
        return {"stopping": True}
    raise AssertionError(r.rcmd)


def _render_remote(out, r: argparse.Namespace, data: dict) -> None:
    """Human output for remote responses, mirroring the local CLI."""
    import json as _json

    if r.rcmd == "init":
        out.write(
            f"initialized CVD {data['dataset']!r} at version "
            f"{data['version']}\n"
        )
    elif r.rcmd == "checkout":
        where = f"into {data['file']} " if data.get("file") else ""
        hot = " [cached]" if data.get("cached") else ""
        out.write(
            f"checked out version(s) {r.versions} of {r.dataset!r} "
            f"{where}({data['rows']} records){hot}\n"
        )
        if data.get("data") is not None:
            out.write("  ".join(data["columns"]) + "\n")
            for row in data["data"]:
                out.write("  ".join(str(v) for v in row) + "\n")
    elif r.rcmd == "commit":
        out.write(f"committed version {data['version']} to {r.dataset!r}\n")
    elif r.rcmd == "log":
        if r.ops:
            out.write(Journal().render_text(data.get("records", [])))
        else:
            for v in data.get("versions", []):
                parents = ",".join(map(str, v["parents"])) or "-"
                out.write(
                    f"v{v['vid']}  parents=[{parents}]  "
                    f"records={v['records']}  "
                    f"author={v['author'] or '-'}  {v['message']}\n"
                )
    elif r.rcmd == "diff":
        out.write(f"records only in v{r.a}: {data['only_a_count']}\n")
        for row in data["only_a"]:
            out.write(f"  + {tuple(row)}\n")
        out.write(f"records only in v{r.b}: {data['only_b_count']}\n")
        for row in data["only_b"]:
            out.write(f"  - {tuple(row)}\n")
    elif r.rcmd == "ls":
        for info in data["datasets"]:
            out.write(
                f"{info['dataset']}  versions={info['versions']}  "
                f"records={info['records']}\n"
            )
    elif r.rcmd == "run":
        out.write("  ".join(data["columns"]) + "\n")
        for row in data["data"]:
            out.write("  ".join(str(v) for v in row) + "\n")
    elif r.rcmd == "drop":
        out.write(f"dropped {r.dataset!r}\n")
    elif r.rcmd == "optimize":
        out.write(
            f"repartitioned {r.dataset!r} into "
            f"{data['partitions']} partitions\n"
        )
    elif r.rcmd == "create_user":
        out.write(f"created user {data['user']!r}\n")
    elif r.rcmd == "whoami":
        out.write((data.get("user") or "anonymous") + "\n")
    elif r.rcmd in ("doctor", "status", "stats"):
        out.write(_json.dumps(data, indent=2, sort_keys=True, default=str) + "\n")
    elif r.rcmd == "ping":
        out.write("pong\n" if data.get("pong") else "no reply\n")
    elif r.rcmd == "flush-cache":
        out.write(f"dropped {data['dropped']} cached checkouts\n")
    elif r.rcmd == "flush-quarantine":
        out.write(
            f"cleared {data['dropped']} quarantined request digest(s)\n"
        )
    elif r.rcmd == "shutdown":
        out.write("orpheusd draining\n")


def _run_stats(args: argparse.Namespace) -> int:
    """``orpheus stats``: render the accumulated telemetry history."""
    if args.reset:
        # Leave an empty-but-valid snapshot behind rather than deleting:
        # scrapers and `stats --json` consumers keep a parseable file.
        save_telemetry(Snapshot(), args.root)
        sys.stdout.write("telemetry reset\n")
        return 0
    snapshot = load_telemetry(args.root)
    if args.json:
        sys.stdout.write(snapshot.to_json() + "\n")
    elif args.prometheus:
        sys.stdout.write(snapshot.render_prometheus())
    else:
        sys.stdout.write(snapshot.render_text())
    return 0


def _run_heat(args: argparse.Namespace) -> int:
    """``orpheus heat``: the storage access observatory report.

    Hot/cold rankings come from the persisted EWMA model (or, with
    ``--from-flight``, from re-mining the flight recorder + ops
    journal); amplification and the advisor join that heat with the
    live page cost model.
    """
    import json as _json

    from repro.observe.amplification import (
        amplification_report,
        bound_comparison,
    )
    from repro.observe.heat import HeatAccountant, advise, mine

    try:
        orpheus = load_state(args.root)
    except FileNotFoundError:
        sys.stderr.write("error: not an orpheus repository\n")
        return 2
    if args.from_flight:
        heat = mine(args.root, orpheus)
    else:
        heat = HeatAccountant.load(args.root)
    now = telemetry.now()
    top = max(1, args.top)

    def _table(table: dict, reverse: bool) -> list[dict]:
        rows = []
        for key, entry, decayed in heat.ranked(table, now, reverse=reverse):
            if args.dataset and not (
                key == args.dataset or key.startswith(args.dataset + ":")
            ):
                continue
            rows.append(
                {
                    "key": key,
                    "heat": round(decayed, 4),
                    "touches": entry["touches"],
                    "rows_scanned": entry["rows_scanned"],
                    "bytes_scanned": entry["bytes_scanned"],
                }
            )
            if len(rows) >= top:
                break
        return rows

    cold = heat.cold_fraction(orpheus, now)
    report = {
        "schema_version": 1,
        "source": "flight" if args.from_flight else "live",
        "half_life_s": heat.half_life_s,
        "events_total": heat.events_total,
        "hot_datasets": _table(heat.datasets, reverse=True),
        "hot_partitions": _table(heat.partitions, reverse=True),
        "hot_versions": _table(heat.versions, reverse=True),
        "cold_partitions": _table(heat.partitions, reverse=False),
        "cold_fraction": None if cold is None else round(cold, 4),
        "amplification": amplification_report(heat),
        "bound": bound_comparison(orpheus, heat),
        "advisor": advise(orpheus, heat, now),
    }
    if args.json:
        sys.stdout.write(
            _json.dumps(report, indent=2, sort_keys=True, default=str) + "\n"
        )
        return 0
    out = sys.stdout
    out.write(
        f"heat model: {report['events_total']} events, "
        f"half-life {report['half_life_s']:g}s, "
        f"source={report['source']}\n"
    )
    if cold is not None:
        out.write(f"cold fraction: {cold:.1%} of versions\n")
    for title, rows in (
        ("hot datasets", report["hot_datasets"]),
        ("hot partitions", report["hot_partitions"]),
        ("hot versions", report["hot_versions"]),
        ("cold partitions", report["cold_partitions"]),
    ):
        if not rows:
            continue
        out.write(f"\n{title}:\n")
        for row in rows:
            out.write(
                f"  {row['key']:<24} heat={row['heat']:<10g} "
                f"touches={row['touches']:<6} "
                f"rows_scanned={row['rows_scanned']}\n"
            )
    if report["amplification"]:
        out.write("\namplification (per model, per command):\n")
        for model, commands in report["amplification"].items():
            for command, factors in commands.items():
                ramp = factors["read_amplification"]
                wamp = factors["write_amplification"]
                out.write(
                    f"  {model:<20} {command:<10} "
                    f"read={'-' if ramp is None else ramp} "
                    f"write={'-' if wamp is None else wamp} "
                    f"({factors['events']} events)\n"
                )
    if report["bound"]:
        out.write("\ncheckout-cost bound:\n")
        for row in report["bound"]:
            bound = row.get("bound_rows_per_checkout")
            status = row.get("within_bound")
            out.write(
                f"  {row['dataset']:<24} model={row['model']} "
                f"observed={row['observed_rows_per_checkout']} "
                f"bound={'-' if bound is None else bound} "
                f"within={'-' if status is None else status}\n"
            )
    if report["advisor"]:
        out.write("\nadvisor:\n")
        for rec in report["advisor"]:
            out.write(
                f"  #{rec['rank']} {rec['kind']:<12} {rec['dataset']:<24} "
                f"delta={rec['estimated_checkout_cost_delta']:g} "
                f"{rec['reason']}\n"
            )
    if not heat.events_total:
        out.write(
            "no access events recorded yet -- run some commands (or "
            "`orpheus heat --from-flight` against a recorded workload)\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
