"""The injectable clock behind every timestamp in the system.

Version metadata used to call ``time.time()`` directly, which made
commit timestamps untestable and vulnerable to wall-clock steps (NTP
corrections can move ``time.time()`` backwards, breaking commit-order
invariants). All timestamp producers now go through this module:

* :func:`now` — wall-clock seconds, guaranteed non-decreasing within
  the process even if the underlying clock steps backwards;
* :func:`monotonic` — monotonic seconds for measuring durations;
* :func:`set_clock` — swap in a :class:`FrozenClock` (or any
  :class:`Clock`) so tests can freeze or script time.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Time source interface: wall time plus a monotonic reference."""

    def time(self) -> float:
        raise NotImplementedError

    def monotonic(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The real clocks (the default)."""

    def time(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()


class FrozenClock(Clock):
    """A scriptable clock for tests: time moves only via :meth:`advance`.

    ``monotonic`` shares the same frozen timeline, so measured durations
    are exactly the advances performed while measuring.
    """

    def __init__(self, start: float = 1_000_000.0) -> None:
        self._now = float(start)

    def time(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("FrozenClock cannot move backwards")
        self._now += seconds

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (may step backwards; :func:`now`
        still reports non-decreasing values)."""
        self._now = float(timestamp)


_lock = threading.Lock()
_clock: Clock = SystemClock()
_last_now = float("-inf")


def get_clock() -> Clock:
    return _clock


def set_clock(clock: Clock | None) -> None:
    """Install ``clock`` as the process clock (None restores the system
    clock). Resets the non-decreasing guard so a test's frozen epoch may
    be earlier than the previous wall time."""
    global _clock, _last_now
    with _lock:
        _clock = clock if clock is not None else SystemClock()
        _last_now = float("-inf")


def now() -> float:
    """Wall-clock seconds, never less than a previously returned value."""
    global _last_now
    with _lock:
        value = _clock.time()
        if value < _last_now:
            value = _last_now
        _last_now = value
        return value


def monotonic() -> float:
    """Monotonic seconds for duration measurements."""
    return _clock.monotonic()
