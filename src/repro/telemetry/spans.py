"""Nestable timing spans carried via :mod:`contextvars`.

Usage::

    with telemetry.span("command.checkout", dataset=name):
        ...

When telemetry is disabled, :func:`span` returns a shared no-op context
manager — no allocation, no contextvar touch. When enabled, each span:

* times itself with the injectable monotonic clock;
* attaches to the enclosing span (building the per-invocation tree the
  CLI prints under ``--timings``);
* aggregates its duration into the registry's per-name span stats;
* closes correctly on exceptions (status ``error``, contextvar reset);
* emits one JSON line through :mod:`repro.telemetry.log` if the
  structured-logging bridge is enabled.

``contextvars`` (rather than a plain global stack) keeps nesting correct
across threads and async tasks for free.
"""

from __future__ import annotations

import time
import tracemalloc
from contextvars import ContextVar

from repro.telemetry import clock
from repro.telemetry.profiling import gc_collections
from repro.telemetry.registry import get_registry

_current: ContextVar["SpanNode | None"] = ContextVar(
    "repro_telemetry_span", default=None
)


class SpanNode:
    """One completed (or in-flight) span in an invocation's tree."""

    __slots__ = (
        "name", "attrs", "started_at", "duration_s", "status", "error",
        "children", "profile", "_t0", "_prof",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.started_at = clock.now()
        self.duration_s: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list[SpanNode] = []
        #: Resource profile dict (cpu_ns, mem_peak_bytes,
        #: mem_alloc_bytes, gc_collections) when profiling is enabled.
        self.profile: dict | None = None
        self._t0 = clock.monotonic()
        self._prof: dict | None = None

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span (e.g. the new vid)."""
        self.attrs[key] = value

    def to_dict(self) -> dict:
        node = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.error:
            node["error"] = self.error
        if self.profile is not None:
            node["profile"] = dict(self.profile)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        """The ``--timings`` tree line for this node and its subtree."""
        duration = (
            f"{self.duration_s:.6f}s" if self.duration_s is not None else "?"
        )
        attrs = (
            " " + " ".join(f"{k}={v}" for k, v in self.attrs.items())
            if self.attrs
            else ""
        )
        flag = "" if self.status == "ok" else f" [{self.status}]"
        prof = ""
        if self.profile is not None:
            prof = (
                f"  cpu={self.profile['cpu_ns'] / 1e9:.6f}s"
                f" peak_mem={self.profile['mem_peak_bytes']}B"
            )
        lines = [f"{'  ' * indent}{self.name}  {duration}{prof}{flag}{attrs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("name", "attrs", "node", "token")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.node: SpanNode | None = None
        self.token = None

    def __enter__(self) -> SpanNode:
        node = self.node = SpanNode(self.name, self.attrs)
        if get_registry().profiling:
            _profile_enter(node, _current.get())
        self.token = _current.set(node)
        return node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self.node
        _current.reset(self.token)
        node.duration_s = clock.monotonic() - node._t0
        if node._prof is not None:
            _profile_exit(node, _current.get())
        if exc_type is not None:
            node.status = "error"
            node.error = f"{exc_type.__name__}: {exc}"
        registry = get_registry()
        parent = _current.get()
        if parent is not None:
            parent.children.append(node)
        else:
            registry.record_root(node)
        registry.record_span(node.name, node.duration_s, exc_type is not None)
        from repro.telemetry import log

        log.emit(node, parent.name if parent is not None else None)
        return False


def _profile_enter(node: SpanNode, parent: "SpanNode | None") -> None:
    """Start resource accounting for ``node``.

    ``tracemalloc`` has a single process-wide peak counter, so before a
    child resets it the observed peak is folded into the parent's
    running maximum — every ancestor's final peak is then the max of
    what it saw directly and every descendant's absolute peak.
    """
    if not tracemalloc.is_tracing():  # profiling raced a stop; skip
        return
    current, peak = tracemalloc.get_traced_memory()
    if parent is not None and parent._prof is not None:
        if peak > parent._prof["peak_abs"]:
            parent._prof["peak_abs"] = peak
    tracemalloc.reset_peak()
    node._prof = {
        "cpu0": time.process_time_ns(),
        "mem0": current,
        "peak_abs": current,
        "gc0": gc_collections(),
    }


def _profile_exit(node: SpanNode, parent: "SpanNode | None") -> None:
    prof = node._prof
    node._prof = None
    cpu_ns = time.process_time_ns() - prof["cpu0"]
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
    else:
        current = peak = prof["mem0"]
    peak_abs = max(peak, prof["peak_abs"])
    if parent is not None and parent._prof is not None:
        # The running tracemalloc peak (which already covers this whole
        # subtree) keeps counting for the parent; just propagate ours.
        if peak_abs > parent._prof["peak_abs"]:
            parent._prof["peak_abs"] = peak_abs
    node.profile = {
        "cpu_ns": cpu_ns,
        "mem_peak_bytes": max(0, peak_abs - prof["mem0"]),
        "mem_alloc_bytes": current - prof["mem0"],
        "gc_collections": gc_collections() - prof["gc0"],
    }


def span(name: str, **attrs):
    """Open a timing span; a no-op when telemetry is disabled."""
    if not get_registry().enabled:
        return _NULL_SPAN
    return _SpanContext(name, attrs)


def current_span() -> SpanNode | None:
    """The innermost open span, if any (None when disabled/outside)."""
    return _current.get()


def last_span_tree() -> SpanNode | None:
    """The most recently completed root span (for ``--timings``)."""
    return get_registry().last_root
