"""Nestable timing spans carried via :mod:`contextvars`.

Usage::

    with telemetry.span("command.checkout", dataset=name):
        ...

When telemetry is disabled, :func:`span` returns a shared no-op context
manager — no allocation, no contextvar touch. When enabled, each span:

* times itself with the injectable monotonic clock;
* attaches to the enclosing span (building the per-invocation tree the
  CLI prints under ``--timings``);
* aggregates its duration into the registry's per-name span stats;
* closes correctly on exceptions (status ``error``, contextvar reset);
* emits one JSON line through :mod:`repro.telemetry.log` if the
  structured-logging bridge is enabled.

``contextvars`` (rather than a plain global stack) keeps nesting correct
across threads and async tasks for free.
"""

from __future__ import annotations

from contextvars import ContextVar

from repro.telemetry import clock
from repro.telemetry.registry import get_registry

_current: ContextVar["SpanNode | None"] = ContextVar(
    "repro_telemetry_span", default=None
)


class SpanNode:
    """One completed (or in-flight) span in an invocation's tree."""

    __slots__ = (
        "name", "attrs", "started_at", "duration_s", "status", "error",
        "children", "_t0",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.started_at = clock.now()
        self.duration_s: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.children: list[SpanNode] = []
        self._t0 = clock.monotonic()

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span (e.g. the new vid)."""
        self.attrs[key] = value

    def to_dict(self) -> dict:
        node = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.error:
            node["error"] = self.error
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        """The ``--timings`` tree line for this node and its subtree."""
        duration = (
            f"{self.duration_s:.6f}s" if self.duration_s is not None else "?"
        )
        attrs = (
            " " + " ".join(f"{k}={v}" for k, v in self.attrs.items())
            if self.attrs
            else ""
        )
        flag = "" if self.status == "ok" else f" [{self.status}]"
        lines = [f"{'  ' * indent}{self.name}  {duration}{flag}{attrs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("name", "attrs", "node", "token")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.node: SpanNode | None = None
        self.token = None

    def __enter__(self) -> SpanNode:
        self.node = SpanNode(self.name, self.attrs)
        self.token = _current.set(self.node)
        return self.node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self.node
        _current.reset(self.token)
        node.duration_s = clock.monotonic() - node._t0
        if exc_type is not None:
            node.status = "error"
            node.error = f"{exc_type.__name__}: {exc}"
        registry = get_registry()
        parent = _current.get()
        if parent is not None:
            parent.children.append(node)
        else:
            registry.record_root(node)
        registry.record_span(node.name, node.duration_s, exc_type is not None)
        from repro.telemetry import log

        log.emit(node, parent.name if parent is not None else None)
        return False


def span(name: str, **attrs):
    """Open a timing span; a no-op when telemetry is disabled."""
    if not get_registry().enabled:
        return _NULL_SPAN
    return _SpanContext(name, attrs)


def current_span() -> SpanNode | None:
    """The innermost open span, if any (None when disabled/outside)."""
    return _current.get()


def last_span_tree() -> SpanNode | None:
    """The most recently completed root span (for ``--timings``)."""
    return get_registry().last_root
