"""The process-global metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Cheap when disabled.** Every mutator checks one boolean before
   doing anything else; instrumentation left in hot paths (checkout
   joins, commit inner loops) costs a single attribute load + branch
   per call when telemetry is off.
2. **Thread-safe when enabled.** All mutations take the registry lock.
   The version-control layer itself is single-threaded today, but the
   ROADMAP's scaling direction (sharding, async) must not require
   re-plumbing the metrics layer.
3. **Mergeable.** Snapshots of two registries (e.g. two CLI
   invocations) combine losslessly for counters and approximately for
   histogram percentiles (bounded reservoirs, deterministic
   decimation — no randomness, so tests are reproducible).
"""

from __future__ import annotations

import threading

#: Reservoir size per histogram; beyond this, observations are
#: decimated deterministically (keep-every-other, doubling stride).
RESERVOIR_CAP = 2048


class Histogram:
    """Streaming distribution summary with a bounded value reservoir."""

    __slots__ = (
        "name", "count", "total", "min", "max", "values", "stride", "_skip"
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: list[float] = []
        self.stride = 1
        self._skip = 0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._skip += 1
        if self._skip >= self.stride:
            self._skip = 0
            self.values.append(value)
            if len(self.values) >= RESERVOIR_CAP:
                self.values = self.values[::2]
                self.stride *= 2

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile over the reservoir (None when empty)."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict:
        """Serializable form; ``values`` keeps the reservoir for merges."""
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "values": list(self.values),
            "stride": self.stride,
        }


class SpanStats:
    """Aggregate view of one span name: call count, errors, durations.

    Failed spans are counted (``count``, ``errors``) and timed into the
    separate ``failed_seconds`` histogram, so the ``seconds`` latency
    distribution only ever describes successful operations — an aborted
    checkout's near-zero duration must not drag p50 down.
    """

    __slots__ = ("name", "count", "errors", "seconds", "failed_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.errors = 0
        self.seconds = Histogram(name)
        self.failed_seconds = Histogram(name + ".failed")

    def record(self, seconds: float, error: bool) -> None:
        self.count += 1
        if error:
            self.errors += 1
            self.failed_seconds.add(seconds)
        else:
            self.seconds.add(seconds)


class Registry:
    """A metrics registry; the process-global one lives in this module."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Opt-in resource profiling (see repro.telemetry.profiling).
        #: Checked by spans only after the enabled check, so the
        #: disabled fast path never pays for it.
        self.profiling = False
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStats] = {}
        #: The most recently completed *root* span tree (a SpanNode),
        #: kept for `orpheus --timings`; not part of merged snapshots.
        self.last_root = None

    # -- mutators (each bails on the first line when disabled) ----------
    def inc(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.add(value)

    def record_span(self, name: str, seconds: float, error: bool) -> None:
        if not self.enabled:
            return
        with self._lock:
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats(name)
            stats.record(seconds, error)

    def record_root(self, node) -> None:
        if not self.enabled:
            return
        self.last_root = node

    # -- readers --------------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def snapshot(self):
        """Freeze the registry into a :class:`~repro.telemetry.snapshot.Snapshot`."""
        from repro.telemetry.snapshot import Snapshot

        with self._lock:
            return Snapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: h.summary() for name, h in self._histograms.items()
                },
                spans={
                    name: _span_summary(s) for name, s in self._spans.items()
                },
            )

    def reset(self) -> None:
        """Drop all recorded metrics (the enabled flag is unaffected)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self.last_root = None


def _span_summary(stats: SpanStats) -> dict:
    summary = {
        "count": stats.count,
        "errors": stats.errors,
        "seconds": stats.seconds.summary(),
    }
    # Only failing invocations earn the extra histogram; old snapshots
    # (and the common all-green case) stay compact.
    if stats.failed_seconds.count:
        summary["failed_seconds"] = stats.failed_seconds.summary()
    return summary


_global = Registry()


def get_registry() -> Registry:
    return _global
