"""repro.telemetry — first-class metrics for the version-control hot paths.

The dissertation's claims are quantitative (checkout/commit latency per
data model, LyreSplit speedups, storage/recreation trade-offs); this
package is the measurement layer that lets the reproduction validate
those claims from inside the system rather than with external timers.

Public surface (all process-global, guarded by one enabled flag):

* :func:`enable` / :func:`disable` / :func:`is_enabled` / :func:`reset`
* :func:`count` / :func:`gauge` / :func:`observe` — counters, gauges,
  histograms (p50/p95/max summaries)
* :func:`span` — nestable timing spans via ``contextvars``
* :func:`snapshot` — freeze everything into a JSON/Prometheus-renderable
  :class:`~repro.telemetry.snapshot.Snapshot`
* :func:`now` / :func:`monotonic` / :func:`set_clock` — the injectable
  clock every timestamp in the system goes through
* :mod:`repro.telemetry.log` — the one-JSON-line-per-span bridge

Everything is a no-op costing one branch when telemetry is disabled
(the default), so instrumentation stays in the inner loops permanently.
"""

from __future__ import annotations

from repro.telemetry.clock import (
    Clock,
    FrozenClock,
    SystemClock,
    get_clock,
    monotonic,
    now,
    set_clock,
)
from repro.telemetry.profiling import (
    PROFILE_ENV,
    arm_from_env,
    disable_profiling,
    enable_profiling,
    is_profiling,
)
from repro.telemetry.registry import Histogram, Registry, get_registry
from repro.telemetry.snapshot import Snapshot
from repro.telemetry.spans import (
    SpanNode,
    current_span,
    last_span_tree,
    span,
)
from repro.telemetry import log

__all__ = [
    "Clock",
    "FrozenClock",
    "Histogram",
    "PROFILE_ENV",
    "Registry",
    "Snapshot",
    "SpanNode",
    "SystemClock",
    "arm_from_env",
    "count",
    "current_span",
    "disable",
    "disable_profiling",
    "enable",
    "enable_profiling",
    "gauge",
    "get_clock",
    "get_registry",
    "is_enabled",
    "is_profiling",
    "last_span_tree",
    "log",
    "monotonic",
    "now",
    "observe",
    "reset",
    "set_clock",
    "snapshot",
    "span",
]

# ORPHEUS_PROFILE=1 arms resource profiling for the whole process the
# moment telemetry is imported (spans still only profile while the
# registry itself is enabled).
arm_from_env()


def enable() -> None:
    """Turn metric collection on for the whole process."""
    get_registry().enabled = True


def disable() -> None:
    get_registry().enabled = False


def is_enabled() -> bool:
    return get_registry().enabled


def reset() -> None:
    """Drop all recorded metrics (the enabled flag is unaffected)."""
    get_registry().reset()


def count(name: str, amount: float = 1) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    get_registry().inc(name, amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    get_registry().set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    get_registry().observe(name, value)


def snapshot() -> Snapshot:
    """Freeze the current registry contents."""
    return get_registry().snapshot()
