"""Point-in-time views of the metrics registry, in three wire formats.

A :class:`Snapshot` is a plain-data object (JSON round-trippable) so the
CLI can accumulate one per invocation in ``.orpheus/telemetry.json`` and
``orpheus stats`` can render the merged history. Renderers:

* :meth:`Snapshot.to_json` — machine-readable (``orpheus stats --json``);
* :meth:`Snapshot.render_text` — the human ``orpheus stats`` output;
* :meth:`Snapshot.render_prometheus` — Prometheus text exposition
  format, for scraping a long-running embedding process.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.telemetry.registry import RESERVOIR_CAP


@dataclass
class Snapshot:
    """Frozen registry contents.

    Attributes:
        counters: name -> monotonically accumulated value.
        gauges: name -> last set value.
        histograms: name -> summary dict (count/total/min/max/p50/p95
            plus the bounded ``values`` reservoir used for merging).
        spans: name -> {count, errors, seconds: histogram summary}.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    spans: dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Snapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                k: dict(v) for k, v in data.get("histograms", {}).items()
            },
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        return cls.from_dict(json.loads(text))

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.spans)

    # ------------------------------------------------------------------
    # Merging (counters add; gauges last-wins; histograms combine)
    # ------------------------------------------------------------------
    def merged(self, other: "Snapshot") -> "Snapshot":
        """This snapshot combined with a later one."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            histograms[name] = (
                _merge_histogram(histograms[name], summary)
                if name in histograms
                else dict(summary)
            )
        spans = dict(self.spans)
        for name, stats in other.spans.items():
            if name in spans:
                merged_span = {
                    "count": spans[name]["count"] + stats["count"],
                    "errors": spans[name]["errors"] + stats["errors"],
                    "seconds": _merge_histogram(
                        spans[name]["seconds"], stats["seconds"]
                    ),
                }
                failed_a = spans[name].get("failed_seconds")
                failed_b = stats.get("failed_seconds")
                if failed_a and failed_b:
                    merged_span["failed_seconds"] = _merge_histogram(
                        failed_a, failed_b
                    )
                elif failed_a or failed_b:
                    merged_span["failed_seconds"] = dict(failed_a or failed_b)
                spans[name] = merged_span
            else:
                spans[name] = dict(stats)
        return Snapshot(
            counters=counters, gauges=gauges, histograms=histograms, spans=spans
        )

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines: list[str] = []
        if self.spans:
            lines.append(
                "spans (count / errors / total s / p50 s / p95 s / p99 s / max s)"
            )
            for name in sorted(self.spans):
                s = self.spans[name]
                h = s["seconds"]
                lines.append(
                    f"  {name:<40} {s['count']:>7} {s['errors']:>4}"
                    f" {_fmt(h['total'])} {_fmt(h.get('p50'))}"
                    f" {_fmt(h.get('p95'))} {_fmt(h.get('p99'))}"
                    f" {_fmt(h.get('max'))}"
                )
        if self.counters:
            lines.append("counters")
            for name in sorted(self.counters):
                lines.append(f"  {name:<52} {_fmt_num(self.counters[name])}")
        if self.gauges:
            lines.append("gauges")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<52} {_fmt_num(self.gauges[name])}")
        if self.histograms:
            lines.append("histograms (count / total / p50 / p95 / p99 / max)")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name:<40} {h['count']:>7} {_fmt(h['total'])}"
                    f" {_fmt(h.get('p50'))} {_fmt(h.get('p95'))}"
                    f" {_fmt(h.get('p99'))} {_fmt(h.get('max'))}"
                )
        if not lines:
            return "no telemetry recorded\n"
        return "\n".join(lines) + "\n"

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (metric names sanitized)."""
        lines: list[str] = []
        for name in sorted(self.counters):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(self.counters[name])}")
        for name in sorted(self.gauges):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(self.gauges[name])}")
        for name in sorted(self.histograms):
            lines.extend(_prom_summary(_prom_name(name), self.histograms[name]))
        for name in sorted(self.spans):
            stats = self.spans[name]
            metric = _prom_name(f"span.{name}.seconds")
            lines.extend(_prom_summary(metric, stats["seconds"]))
            failed = stats.get("failed_seconds")
            if failed:
                lines.extend(
                    _prom_summary(
                        _prom_name(f"span.{name}.failed_seconds"), failed
                    )
                )
            error_metric = _prom_name(f"span.{name}.errors")
            lines.append(f"# TYPE {error_metric} counter")
            lines.append(f"{error_metric} {stats['errors']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _merge_histogram(first: dict, second: dict) -> dict:
    count = first["count"] + second["count"]
    total = first["total"] + second["total"]
    mins = [v for v in (first["min"], second["min"]) if v is not None]
    maxs = [v for v in (first["max"], second["max"]) if v is not None]
    values = list(first.get("values", ())) + list(second.get("values", ()))
    stride = max(first.get("stride", 1), second.get("stride", 1))
    while len(values) > RESERVOIR_CAP:
        values = values[::2]
        stride *= 2
    ordered = sorted(values)

    def percentile(fraction: float) -> float | None:
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "count": count,
        "total": total,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "p50": percentile(0.50),
        "p95": percentile(0.95),
        "p99": percentile(0.99),
        "values": values,
        "stride": stride,
    }


def _prom_name(name: str) -> str:
    """A legal exposition-format metric name.

    The charset is ``[a-zA-Z_:][a-zA-Z0-9_:]*``; dotted telemetry names
    and anything else outside it collapse to underscores. The ``repro_``
    prefix guarantees a legal first character even for names that start
    with a digit.
    """
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_label_name(name: str) -> str:
    """A legal label name: ``[a-zA-Z_][a-zA-Z0-9_]*``."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_value(value: object) -> str:
    """Escape a label value per the exposition format (backslash first)."""
    text = str(value)
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _prom_summary(metric: str, histogram: dict) -> list[str]:
    lines = [f"# TYPE {metric} summary"]
    label = _prom_label_name("quantile")
    for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
        value = histogram.get(key)
        if value is not None:
            lines.append(
                f'{metric}{{{label}="{_prom_label_value(quantile)}"}} {value}'
            )
    lines.append(f"{metric}_sum {histogram['total']}")
    lines.append(f"{metric}_count {histogram['count']}")
    return lines


def _fmt(value: float | None) -> str:
    if value is None:
        return "      -"
    return f"{value:>9.4g}"


def _fmt_num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:.6g}" if isinstance(value, float) else str(value)
