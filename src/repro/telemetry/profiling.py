"""Opt-in resource profiling for telemetry spans.

When profiling is enabled (``telemetry.enable_profiling()`` or the
``ORPHEUS_PROFILE=1`` environment variable), every span additionally
records:

* ``cpu_ns`` — process CPU time spent inside the span
  (:func:`time.process_time_ns` delta, user+system, all threads);
* ``mem_peak_bytes`` — peak traced allocation above the span's entry
  baseline (:mod:`tracemalloc`), correct across nested spans: a child's
  peak is folded back into every ancestor;
* ``mem_alloc_bytes`` — net traced bytes still allocated at span exit
  (negative when the span released more than it allocated);
* ``gc_collections`` — garbage-collector collection passes that ran
  during the span.

The profiling flag lives next to the registry's ``enabled`` flag and is
only consulted *after* the enabled check, so the disabled fast path is
untouched and the enabled-but-unprofiled path pays one attribute load
per span. ``tracemalloc`` is started lazily on
:func:`enable_profiling` and stopped again on :func:`disable_profiling`
only if we started it (an embedding program's own tracing session is
left alone).
"""

from __future__ import annotations

import gc
import os
import tracemalloc

from repro.telemetry.registry import get_registry

#: Environment variable that arms profiling at import time.
PROFILE_ENV = "ORPHEUS_PROFILE"

#: True when *we* started tracemalloc (so disable_profiling stops it).
_started_tracing = False


def enable_profiling() -> None:
    """Attach CPU/memory/GC accounting to every subsequent span.

    Implies nothing about the enabled flag: profiling only takes effect
    while telemetry itself is enabled. Starts :mod:`tracemalloc` if no
    one else has.
    """
    global _started_tracing
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracing = True
    get_registry().profiling = True


def disable_profiling() -> None:
    """Stop attaching resource profiles to spans (and stop tracemalloc
    if :func:`enable_profiling` was the one to start it)."""
    global _started_tracing
    get_registry().profiling = False
    if _started_tracing and tracemalloc.is_tracing():
        tracemalloc.stop()
        _started_tracing = False


def is_profiling() -> bool:
    return get_registry().profiling


def arm_from_env(environ=os.environ) -> bool:
    """Enable profiling when ``ORPHEUS_PROFILE`` is set to a truthy
    value (anything except '', '0', 'false', 'no'). Returns whether
    profiling was armed. Called once at package import."""
    value = environ.get(PROFILE_ENV, "").strip().lower()
    if value in ("", "0", "false", "no"):
        return False
    enable_profiling()
    return True


def gc_collections() -> int:
    """Total collection passes across all generations so far."""
    return sum(stat["collections"] for stat in gc.get_stats())
