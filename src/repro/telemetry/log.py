"""Structured-logging bridge: one JSON line per completed span.

Off by default. :func:`enable` attaches the bridge; every span that
completes afterwards is serialized to a single JSON object and emitted
through the ``repro.telemetry`` logger (or a caller-supplied stream),
ready for ingestion by anything that eats JSON lines::

    {"event": "span", "name": "command.commit", "duration_s": 0.0042,
     "status": "ok", "parent": "cli.commit", "attrs": {"dataset": "x"}}
"""

from __future__ import annotations

import json
import logging

logger = logging.getLogger("repro.telemetry")

_enabled = False
_handler: logging.Handler | None = None


def enable(stream=None) -> None:
    """Turn the bridge on; ``stream`` adds a raw-message handler to the
    ``repro.telemetry`` logger (useful when logging isn't configured)."""
    global _enabled, _handler
    _enabled = True
    if stream is not None:
        _handler = logging.StreamHandler(stream)
        _handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(_handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False


def disable() -> None:
    global _enabled, _handler
    _enabled = False
    if _handler is not None:
        logger.removeHandler(_handler)
        _handler = None


def is_enabled() -> bool:
    return _enabled


def emit(node, parent_name: str | None) -> None:
    """Called by the span machinery on every span completion."""
    if not _enabled:
        return
    payload = {
        "event": "span",
        "name": node.name,
        "started_at": node.started_at,
        "duration_s": node.duration_s,
        "status": node.status,
    }
    if parent_name is not None:
        payload["parent"] = parent_name
    if node.attrs:
        payload["attrs"] = node.attrs
    if node.error:
        payload["error"] = node.error
    logger.info(json.dumps(payload, default=str, sort_keys=True))
